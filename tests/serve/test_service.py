"""End-to-end tests of the ``repro serve`` HTTP front-end.

The server runs on a real ephemeral socket inside a background event loop
and the tests speak actual HTTP through the ``repro submit`` client helper,
so the request parsing, error mapping and executor hand-off are all
exercised -- not mocked away.
"""

import asyncio
import threading

import pytest

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.evaluation.parallel import (
    ParallelRunner,
    WorkUnit,
    shutdown_shared_runners,
)
from repro.serve.results import ResultStore, trace_content_digest
from repro.serve.service import (
    EvaluationService,
    save_upload_body,
    submit_request,
)
from repro.workloads.generator import generate_benchmark_trace

#: The request every cache-behaviour test reuses.
REQUEST = {
    "scheme": "wlcrc-16",
    "trace": {"profile": "gcc", "length": 150, "seed": 9},
    "config": {"chunk_size": 64},
}


@pytest.fixture()
def server(tmp_path):
    """A live service on an ephemeral port; yields ``(service, base_url)``."""
    store = ResultStore(tmp_path / "store")
    service = EvaluationService(
        store, n_jobs=1, backend="process", trace_dir=tmp_path / "corpus", queue_size=8
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=30)
    try:
        yield service, f"http://127.0.0.1:{service.port}"
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
        shutdown_shared_runners()


class TestEndpoints:
    def test_healthz(self, server):
        _, url = server
        status, payload = submit_request(url, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schemes"] > 0
        assert payload["backend"] == "process"

    def test_evaluate_caches_and_matches_fresh_computation(self, server):
        _, url = server
        status, first = submit_request(url, "/evaluate", payload=REQUEST)
        assert status == 200 and first["cached"] is False
        status, second = submit_request(url, "/evaluate", payload=REQUEST)
        assert status == 200 and second["cached"] is True
        assert second["metrics"] == first["metrics"]
        assert second["key"] == first["key"]
        # Bit-identical to an in-process evaluation of the same request.
        trace = generate_benchmark_trace("gcc", 150, seed=9)
        unit = WorkUnit(
            "x", make_scheme("wlcrc-16"), trace, EvaluationConfig(chunk_size=64)
        )
        fresh = ParallelRunner(n_jobs=1).map([unit])[0]
        assert first["metrics"]["data_energy_pj"] == fresh.data_energy_pj
        assert first["metrics"]["requests"] == fresh.requests
        assert first["trace_digest"] == trace_content_digest(trace)

    def test_upload_then_evaluate_by_digest(self, server):
        _, url = server
        trace = generate_benchmark_trace("libq", 120, seed=4)
        status, upload = submit_request(url, "/traces", body=save_upload_body(trace))
        assert status == 200
        assert upload["digest"] == trace_content_digest(trace)
        assert upload["n_lines"] == len(trace)
        request = {
            "scheme": "flipmin",
            "trace": {"digest": upload["digest"]},
            "config": {"chunk_size": 64},
        }
        status, payload = submit_request(url, "/evaluate", payload=request)
        assert status == 200
        assert payload["trace_digest"] == upload["digest"]

    def test_metrics_counters(self, server):
        service, url = server
        submit_request(url, "/evaluate", payload=REQUEST)
        submit_request(url, "/evaluate", payload=REQUEST)
        status, metrics = submit_request(url, "/metrics")
        assert status == 200
        assert metrics["store"] == {
            "hits": 1,
            "misses": 1,
            "corrupted": 0,
            "entries": 1,
        }
        assert metrics["evaluations"] == 1
        assert metrics["queue"]["capacity"] == service.queue_size
        assert metrics["queue"]["rejected"] == 0
        assert metrics["inflight"] == 0
        assert metrics["requests_expired"] == 0
        assert metrics["drain"] == {
            "workers": service.drain_workers,
            "alive": service.drain_workers,
            "busy": 0,
            "restarts": 0,
        }


class TestErrorMapping:
    @pytest.mark.parametrize(
        "request_payload, status, code",
        [
            ({"scheme": "no-such-scheme", "trace": {"profile": "gcc"}}, 404, "unknown_scheme"),
            ({"trace": {"profile": "gcc"}}, 400, "bad_request"),
            ({"scheme": "wlcrc-16"}, 400, "bad_request"),
            ({"scheme": "wlcrc-16", "trace": {"digest": "f" * 64}}, 404, "unknown_trace"),
            ({"scheme": "wlcrc-16", "trace": {"corpus": "nope"}}, 404, "unknown_trace"),
            ({"scheme": "wlcrc-16", "trace": {"profile": "no-such-profile"}}, 404, "unknown_trace"),
            (
                {"scheme": "wlcrc-16", "trace": {"profile": "gcc"}, "config": {"n_jobs": 4}},
                400,
                "bad_request",
            ),
        ],
    )
    def test_evaluate_errors(self, server, request_payload, status, code):
        _, url = server
        got_status, payload = submit_request(url, "/evaluate", payload=request_payload)
        assert (got_status, payload["error"]) == (status, code)

    def test_bad_json_body(self, server):
        _, url = server
        status, payload = submit_request(url, "/evaluate", body=b"not json {")
        assert (status, payload["error"]) == (400, "bad_json")

    def test_empty_upload(self, server):
        _, url = server
        status, payload = submit_request(url, "/traces", body=b"")
        assert (status, payload["error"]) == (400, "bad_request")

    def test_garbage_upload(self, server):
        _, url = server
        status, payload = submit_request(url, "/traces", body=b"\x00garbage")
        assert (status, payload["error"]) == (400, "bad_trace")

    def test_unknown_route_and_wrong_method(self, server):
        _, url = server
        status, payload = submit_request(url, "/nope")
        assert (status, payload["error"]) == (404, "not_found")
        status, payload = submit_request(url, "/evaluate")  # GET
        assert (status, payload["error"]) == (405, "method_not_allowed")
