"""Tests of the content-addressed result store.

The key-canonicalisation tests pin the inclusion/exclusion contract from the
``repro.serve.results`` docstring: orchestration knobs (``n_jobs``, backend,
batching, cache budgets) must NOT change the key -- entries written under one
parallelisation serve every other -- while every output-affecting input
(trace contents, scheme, energy model, disturbance rates, chunk size,
sampling mode) MUST.  The store-hit tests assert *bit*-identity between a
fresh computation and a store hit, across worker counts and pool backends.
"""

import json

import pytest

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.core.disturbance import DisturbanceModel
from repro.core.energy import EnergyModel
from repro.core.metrics import WriteMetrics
from repro.evaluation.parallel import ParallelRunner, WorkUnit, shared_runner
from repro.serve.results import (
    ResultStore,
    ResultStoreError,
    metrics_from_payload,
    metrics_to_payload,
    result_cache_key,
    trace_content_digest,
)
from repro.workloads.generator import generate_benchmark_trace

CONFIG = EvaluationConfig(chunk_size=64)


def _key(trace, **overrides):
    encoder = overrides.pop("encoder", make_scheme("wlcrc-16"))
    config = overrides.pop("config", CONFIG)
    return result_cache_key(encoder, trace, config, **overrides)


class TestKeyCanonicalisation:
    def test_orchestration_knobs_do_not_change_the_key(self, gcc_trace):
        """Backend / batching / tiling knobs are absent from the key."""
        base = _key(gcc_trace)
        for overrides in (
            {"array_backend": "numpy"},
            {"superbatch_size": 8},
            {"fused_tile_lines": 128},
            {"fused_tile_lines": None},
            {"trace_length": 999},
        ):
            variant = EvaluationConfig(chunk_size=CONFIG.chunk_size, **overrides)
            assert _key(gcc_trace, config=variant).digest == base.digest, overrides

    def test_seed_ignored_on_the_deterministic_path(self, gcc_trace):
        """The expected-value path never draws RNG: seed must not key."""
        a = _key(gcc_trace, config=EvaluationConfig(chunk_size=64, seed=1))
        b = _key(gcc_trace, config=EvaluationConfig(chunk_size=64, seed=2))
        assert a.digest == b.digest
        assert "seed" not in a.payload

    def test_seed_and_unit_index_key_when_sampling(self, gcc_trace):
        mc = EvaluationConfig(chunk_size=64, sample_disturbance=True, seed=1)
        mc2 = EvaluationConfig(chunk_size=64, sample_disturbance=True, seed=2)
        assert _key(gcc_trace, config=mc).digest != _key(gcc_trace, config=mc2).digest
        assert (
            _key(gcc_trace, config=mc, unit_index=0).digest
            != _key(gcc_trace, config=mc, unit_index=1).digest
        )

    def test_output_affecting_fields_change_the_key(self, gcc_trace, libq_trace):
        base = _key(gcc_trace)
        assert _key(libq_trace).digest != base.digest
        assert _key(gcc_trace, encoder=make_scheme("flipmin")).digest != base.digest
        assert (
            _key(gcc_trace, config=EvaluationConfig(chunk_size=128)).digest
            != base.digest
        )
        assert (
            _key(
                gcc_trace, config=EvaluationConfig(chunk_size=64, sample_disturbance=True)
            ).digest
            != base.digest
        )
        model = DisturbanceModel(rates=(1e-9, 1e-7, 1e-9, 1e-10))
        assert _key(gcc_trace, disturbance_model=model).digest != base.digest

    def test_energy_model_keys_beyond_the_scheme_name(self, gcc_trace):
        """figure-14 sweeps one scheme name under many energy models."""
        hot = make_scheme("wlcrc-16")
        cold = make_scheme("wlcrc-16")
        cold.energy_model = EnergyModel(
            reset_energy_pj=hot.energy_model.reset_energy_pj * 2,
            set_energy_pj=hot.energy_model.set_energy_pj,
        )
        assert hot.name == cold.name
        assert _key(gcc_trace, encoder=hot).digest != _key(gcc_trace, encoder=cold).digest

    def test_trace_digest_ignores_labelling(self):
        a = generate_benchmark_trace("gcc", length=100, seed=3)
        b = generate_benchmark_trace("gcc", length=100, seed=3)
        b.name = "renamed"
        assert trace_content_digest(a) == trace_content_digest(b)
        c = generate_benchmark_trace("gcc", length=100, seed=4)
        assert trace_content_digest(a) != trace_content_digest(c)

    def test_digest_memoised_per_instance_not_per_slice(self, gcc_trace):
        whole = trace_content_digest(gcc_trace)
        assert trace_content_digest(gcc_trace[:50]) != whole
        assert trace_content_digest(gcc_trace) == whole


class TestMetricsRoundTrip:
    def test_exact_float_round_trip_through_json(self):
        metrics = WriteMetrics(
            requests=7,
            data_energy_pj=1.1e5 / 3.0,
            aux_energy_pj=0.1 + 0.2,
            updated_data_cells=12345.6789,
            updated_aux_cells=1e-17,
            disturbance_errors=3.0000000000000004,
            compressed_lines=5,
            encoded_lines=7,
        )
        payload = json.loads(json.dumps(metrics_to_payload(metrics)))
        assert metrics_from_payload(payload) == metrics

    def test_missing_field_raises(self):
        with pytest.raises(ResultStoreError):
            metrics_from_payload({"requests": 1})


class TestStoreGetPutGc:
    def _evaluate(self, trace, n_jobs=1, backend="process"):
        unit = WorkUnit("u", make_scheme("wlcrc-16"), trace, CONFIG)
        return ParallelRunner(n_jobs=n_jobs, backend=backend).map([unit])[0]

    def test_miss_put_hit_round_trip(self, tmp_path, gcc_trace):
        store = ResultStore(tmp_path / "store")
        key = _key(gcc_trace)
        assert store.get(key) is None
        fresh = self._evaluate(gcc_trace)
        store.put(key, fresh)
        assert store.get(key) == fresh
        assert store.stats() == {"hits": 1, "misses": 1, "corrupted": 0}
        assert len(store) == 1

    def test_corrupt_record_is_quarantined(self, tmp_path, gcc_trace):
        store = ResultStore(tmp_path / "store")
        key = _key(gcc_trace)
        store.put(key, self._evaluate(gcc_trace))
        path = store._record_path(key.digest)
        path.write_text("not json")
        assert store.get(key) is None
        # The damaged record is moved aside (not silently re-missed forever):
        # it is gone from results/, preserved under corrupt/, out of the
        # index, and counted.
        assert not path.exists()
        quarantined = store.corrupt_dir() / path.name
        assert quarantined.read_text() == "not json"
        assert key.digest not in store._read_index()
        assert store.stats()["corrupted"] == 1
        assert len(store) == 0
        # A re-put repopulates the entry and it serves hits again.
        fresh = self._evaluate(gcc_trace)
        store.put(key, fresh)
        assert store.get(key) == fresh

    def test_collision_degrades_to_plain_miss(self, tmp_path, gcc_trace):
        # A tampered key payload (digest collision stand-in) must miss
        # without being quarantined: the record is valid, just not ours.
        store = ResultStore(tmp_path / "store")
        key = _key(gcc_trace)
        path = store._record_path(key.digest)
        store.results_dir().mkdir(parents=True, exist_ok=True)
        record = {
            "version": 1,
            "key": {**key.payload, "chunk_size": 999},
            "metrics": metrics_to_payload(self._evaluate(gcc_trace)),
        }
        path.write_text(json.dumps(record))
        assert store.get(key) is None
        assert path.exists()
        assert store.stats()["corrupted"] == 0

    def test_gc_evicts_least_recently_used(self, tmp_path, gcc_trace, libq_trace):
        store = ResultStore(tmp_path / "store")
        old_key = _key(gcc_trace)
        new_key = _key(libq_trace)
        store.put(old_key, self._evaluate(gcc_trace))
        store.put(new_key, self._evaluate(libq_trace))
        # Touch the older entry so it becomes the more recent one.
        assert store.get(old_key) is not None
        one_record = store._record_path(old_key.digest).stat().st_size
        report = store.gc(max_bytes=one_record)
        assert report["removed"] == [new_key.digest]
        assert store.get(old_key) is not None
        assert store.get(new_key) is None
        assert new_key.digest not in store._read_index()

    def test_gc_dry_run_removes_nothing(self, tmp_path, gcc_trace):
        store = ResultStore(tmp_path / "store")
        key = _key(gcc_trace)
        store.put(key, self._evaluate(gcc_trace))
        report = store.gc(max_bytes=0, dry_run=True)
        assert report["removed"] == [key.digest] and report["dry_run"]
        assert store.get(key) is not None

    def test_gc_needs_a_budget(self, tmp_path):
        with pytest.raises(ResultStoreError):
            ResultStore(tmp_path / "store").gc()

    def test_put_respects_constructor_budget(self, tmp_path, gcc_trace, libq_trace):
        store = ResultStore(tmp_path / "store", max_bytes=1)
        store.put(_key(gcc_trace), self._evaluate(gcc_trace))
        store.put(_key(libq_trace), self._evaluate(libq_trace))
        assert len(store) == 0


class TestStoreHitBitIdentity:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_hit_equals_fresh_across_pools(self, tmp_path, gcc_trace, backend, n_jobs):
        """A store hit is bit-identical to fresh computation on any pool."""
        trace = gcc_trace[:128]
        units = [
            WorkUnit(name, make_scheme(name), trace, CONFIG)
            for name in ("wlcrc-16", "flipmin", "din")
        ]
        fresh = ParallelRunner(n_jobs=1).map(list(units))
        store = ResultStore(tmp_path / "store")
        writer = ParallelRunner(n_jobs=n_jobs, backend=backend)
        writer.results_store = store
        assert writer.map(list(units)) == fresh
        assert store.misses == len(units) and store.hits == 0
        reader = ParallelRunner(n_jobs=n_jobs, backend=backend)
        reader.results_store = store
        assert reader.map(list(units)) == fresh
        assert store.hits == len(units)

    def test_partial_hits_keep_sampled_rng_indices(self, tmp_path, gcc_trace):
        """Misses must evaluate under their original unit index, so sampled
        disturbance draws the same streams whether or not siblings hit."""
        mc = EvaluationConfig(chunk_size=64, sample_disturbance=True, seed=5)
        units = [
            WorkUnit(name, make_scheme(name), gcc_trace, mc)
            for name in ("wlcrc-16", "flipmin", "din")
        ]
        fresh = ParallelRunner(n_jobs=1).map(list(units))
        store = ResultStore(tmp_path / "store")
        # Pre-seed only the middle unit; the third must still evaluate as
        # index 2, not as the first miss in a compacted list.
        store.put(store.unit_key(units[1], 1), fresh[1])
        runner = ParallelRunner(n_jobs=1)
        runner.results_store = store
        assert runner.map(list(units)) == fresh

    def test_shared_runner_rebinds_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = shared_runner(1, "process", results_store=store)
        assert runner.results_store is store
        assert shared_runner(1, "process").results_store is None
