"""The headline memoisation property of ``repro bench run --results-dir``.

A repeat of the same shard under the same config must (a) perform zero
``encode_batch`` calls -- asserted through the obs ``lines_encoded`` counter
the encoders increment -- and (b) regenerate a byte-identical
``BENCH_manifest.json``.  The first run records only store misses, the
second only hits.
"""

import json

import pytest

from repro.bench.runner import discover, run_shard
from repro.evaluation import experiments


@pytest.fixture()
def fig08_registry():
    registry = discover()
    return {"fig08_write_energy": registry["fig08_write_energy"]}


def _run(registry, results_dir, store):
    report = run_shard(
        shard=(1, 1),
        results_dir=results_dir,
        registry=registry,
        profile=True,
        results_store=store,
    )
    assert not report.failures, report.failures[0].error
    record = json.loads((results_dir / "BENCH_shard_1of1.json").read_text())
    metrics = record["profile"]["metrics"]
    encoded = {k: v for k, v in metrics.items() if k.startswith("lines_encoded")}
    store_ops = {k: v for k, v in metrics.items() if k.startswith("result_store")}
    manifest = (results_dir / "BENCH_manifest.json").read_bytes()
    return encoded, store_ops, manifest


def test_repeat_run_hits_the_store_and_reproduces_the_manifest(
    tmp_path, monkeypatch, fig08_registry
):
    monkeypatch.setenv("REPRO_BENCH_TRACE_LEN", "120")
    monkeypatch.setenv("REPRO_BENCH_RANDOM_LINES", "400")
    store = tmp_path / "results-store"
    experiments.clear_cache()
    try:
        encoded1, ops1, manifest1 = _run(fig08_registry, tmp_path / "run1", store)
        # The in-process experiment cache would mask the store entirely;
        # clearing it is what a fresh CI shard process looks like.
        experiments.clear_cache()
        encoded2, ops2, manifest2 = _run(fig08_registry, tmp_path / "run2", store)
    finally:
        experiments.clear_cache()
    assert encoded1 and all(v > 0 for v in encoded1.values())
    assert set(ops1) == {"result_store{result=miss}"}
    assert encoded2 == {}  # zero encode_batch calls on the repeat
    assert set(ops2) == {"result_store{result=hit}"}
    assert ops2["result_store{result=hit}"] == ops1["result_store{result=miss}"]
    assert manifest1 == manifest2
