"""Exporter round-trips: span log, Chrome trace, merge, profile summary."""

import json

from repro.obs import (
    merge_jsonl_to_chrome,
    observation,
    profile_summary,
    read_chrome_trace,
    read_jsonl,
    span,
    write_chrome_trace,
    write_jsonl,
    write_session,
)
from repro.obs.core import MetricsRegistry, SpanRecord


def _sample_spans(pid=100):
    return [
        SpanRecord("root", 1_000, 9_000, pid, 1, f"{pid}.1", None, {"trace_id": "t"}),
        SpanRecord("child", 2_000, 3_000, pid, 1, f"{pid}.2", f"{pid}.1", {"k": "v"}),
    ]


def _sample_metrics():
    registry = MetricsRegistry()
    registry.count("lines", 7, scheme="fpc")
    registry.observe("occupancy", 2.0)
    return registry.snapshot()


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        write_jsonl(path, _sample_spans(), _sample_metrics(), trace_id="t", label="run")
        spans, metrics, meta = read_jsonl(path)
        assert spans == _sample_spans()
        assert metrics == _sample_metrics()
        assert meta["trace_id"] == "t"
        assert meta["label"] == "run"
        assert meta["schema"] == 1

    def test_concatenated_logs_merge(self, tmp_path):
        a = tmp_path / "a.trace.jsonl"
        b = tmp_path / "b.trace.jsonl"
        write_jsonl(a, _sample_spans(100), _sample_metrics(), trace_id="t", label="s1")
        write_jsonl(b, _sample_spans(200), _sample_metrics(), trace_id="t", label="s2")
        combined = tmp_path / "cat.trace.jsonl"
        combined.write_text(a.read_text() + b.read_text())
        spans, metrics, meta = read_jsonl(combined)
        assert len(spans) == 4
        assert metrics["lines{scheme=fpc}"]["value"] == 14
        assert meta["label"] == "s1"  # first meta wins


class TestChromeTrace:
    def test_structure_is_perfetto_loadable(self, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, _sample_spans(), _sample_metrics())
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        # ts is relative to the earliest span, in microseconds
        by_name = {e["name"]: e for e in complete}
        assert by_name["root"]["ts"] == 0.0
        assert by_name["child"]["ts"] == 1.0
        assert by_name["child"]["dur"] == 3.0
        assert by_name["child"]["args"]["parent"] == "100.1"
        meta_events = [e for e in events if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta_events] == ["worker-100"]
        assert document["otherData"]["metrics"] == _sample_metrics()

    def test_read_back_preserves_tree_and_durations(self, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, _sample_spans(), _sample_metrics())
        spans, metrics = read_chrome_trace(path)
        by_name = {r.name: r for r in spans}
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["child"].dur_ns == 3_000
        assert metrics == _sample_metrics()

    def test_empty_span_list(self, tmp_path):
        path = tmp_path / "empty.trace.json"
        write_chrome_trace(path, [], {})
        spans, metrics = read_chrome_trace(path)
        assert spans == [] and metrics == {}


class TestMerge:
    def test_merges_shard_logs_into_one_trace(self, tmp_path):
        a = tmp_path / "s1.trace.jsonl"
        b = tmp_path / "s2.trace.jsonl"
        write_jsonl(a, _sample_spans(100), _sample_metrics(), trace_id="t1", label="shard-1")
        write_jsonl(b, _sample_spans(200), _sample_metrics(), trace_id="t2", label="shard-2")
        out = tmp_path / "profile.trace.json"
        merge_jsonl_to_chrome([a, b], out)
        document = json.loads(out.read_text())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 4
        labels = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels == {100: "shard-1", 200: "shard-2"}
        assert document["otherData"]["metrics"]["lines{scheme=fpc}"]["value"] == 14


class TestWriteSession:
    def test_suffix_selects_format(self, tmp_path):
        with observation("fmt") as session:
            with span("inner"):
                pass
        log = write_session(session, tmp_path / "out.trace.jsonl")
        spans, _, meta = read_jsonl(log)
        assert meta["label"] == "fmt"
        assert {r.name for r in spans} == {"fmt", "inner"}
        chrome = write_session(session, tmp_path / "out.trace.json")
        document = json.loads(chrome.read_text())
        assert {e["name"] for e in document["traceEvents"] if e["ph"] == "X"} == {
            "fmt",
            "inner",
        }


class TestProfileSummary:
    def test_aggregates_and_sorts_by_total(self):
        spans = [
            SpanRecord("fast", 0, 1_000_000, 1, 1, "1.1", None),
            SpanRecord("slow", 0, 5_000_000, 1, 1, "1.2", None),
            SpanRecord("slow", 0, 3_000_000, 1, 1, "1.3", None),
        ]
        summary = profile_summary(spans, _sample_metrics())
        assert list(summary["spans"]) == ["slow", "fast"]
        slow = summary["spans"]["slow"]
        assert slow["count"] == 2
        assert slow["total_ms"] == 8.0
        assert slow["mean_ms"] == 4.0
        assert slow["max_ms"] == 5.0
        assert summary["metrics"]["lines{scheme=fpc}"] == 7
        occupancy = summary["metrics"]["occupancy"]
        assert occupancy["count"] == 1 and occupancy["mean"] == 2.0

    def test_empty_inputs(self):
        assert profile_summary([], {}) == {"spans": {}, "metrics": {}}
