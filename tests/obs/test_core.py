"""Unit tests of the obs core: sessions, spans, metrics, task collection."""

import os
import threading

import pytest

from repro.obs import (
    ObsPayload,
    TaskContext,
    absorb,
    active_session,
    collect,
    count,
    is_active,
    observation,
    observe,
    span,
    task_context,
    timer,
)
from repro.obs.core import MetricsRegistry, ObsSession, SpanRecord, _NULL


class TestDisabledPath:
    """Everything must be an exact no-op when no session is active."""

    def test_no_session_by_default(self):
        assert not is_active()
        assert active_session() is None

    def test_primitives_are_noops(self):
        assert span("x", a=1) is _NULL
        assert timer("x") is _NULL
        count("lines", 5)
        observe("occupancy", 3)
        assert task_context() is None

    def test_null_context_is_reusable(self):
        with span("a") as a, span("b") as b:
            assert a is b
            assert a.set(answer=42) is a

    def test_collect_without_context_is_inert(self):
        with collect(None) as collector:
            count("lines", 5)
        assert collector.payload() is None
        assert not is_active()

    def test_absorb_without_session_is_noop(self):
        absorb(ObsPayload(spans=[], metrics={"c": {"type": "counter", "value": 1}}))


class TestMetricsRegistry:
    def test_key_rendering_sorts_labels(self):
        assert MetricsRegistry.key("m", {}) == "m"
        assert MetricsRegistry.key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.count("lines", 3, scheme="fpc")
        registry.count("lines", 2, scheme="fpc")
        registry.count("lines", 7, scheme="bdi")
        snapshot = registry.snapshot()
        assert snapshot["lines{scheme=fpc}"] == {"type": "counter", "value": 5}
        assert snapshot["lines{scheme=bdi}"]["value"] == 7

    def test_histogram_tracks_count_total_min_max(self):
        registry = MetricsRegistry()
        for value in (4.0, 1.0, 9.0):
            registry.observe("occupancy", value)
        entry = registry.snapshot()["occupancy"]
        assert entry == {
            "type": "histogram",
            "count": 3,
            "total": 14.0,
            "min": 1.0,
            "max": 9.0,
        }

    def test_merge_is_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("c")
        a.observe("h", 2.0)
        b.count("c", 4)
        b.observe("h", 8.0)
        b.observe("only_b", 1.0)
        a.merge(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["c"]["value"] == 5
        assert snapshot["h"] == {
            "type": "histogram",
            "count": 2,
            "total": 10.0,
            "min": 2.0,
            "max": 8.0,
        }
        assert snapshot["only_b"]["count"] == 1

    def test_gauge_keeps_max(self):
        registry = MetricsRegistry()
        registry.gauge("peak_rss_bytes", 100.0)
        registry.gauge("peak_rss_bytes", 50.0)
        registry.gauge("peak_rss_bytes", 250.0)
        assert registry.snapshot()["peak_rss_bytes"] == {
            "type": "gauge",
            "value": 250.0,
        }

    def test_gauge_merge_is_max_across_processes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("peak_rss_bytes", 300.0)
        b.gauge("peak_rss_bytes", 900.0)
        b.gauge("only_b", 1.0)
        a.merge(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["peak_rss_bytes"] == {"type": "gauge", "value": 900.0}
        assert snapshot["only_b"]["value"] == 1.0

    def test_merge_into_empty_copies(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.count("c", 2)
        a.merge(b.snapshot())
        b.count("c", 100)  # must not alias into a
        assert a.snapshot()["c"]["value"] == 2


class TestSpanRecord:
    def test_dict_round_trip(self):
        record = SpanRecord(
            name="encode",
            start_ns=10,
            dur_ns=5,
            pid=123,
            tid=9,
            span_id="123.4",
            parent_id="123.1",
            attrs={"scheme": "fpc"},
        )
        assert SpanRecord.from_dict(record.as_dict()) == record


class TestObservation:
    def test_session_lifecycle_records_root_span(self):
        with observation("my-run") as session:
            assert is_active()
            assert active_session() is session
            assert session.pid == os.getpid()
        assert not is_active()
        roots = [r for r in session.spans if r.parent_id is None]
        assert [r.name for r in roots] == ["my-run"]
        assert roots[0].span_id == session.root_id

    def test_spans_nest_per_thread(self):
        with observation() as session:
            with span("outer") as outer:
                with span("inner", depth=2):
                    pass
        by_name = {r.name: r for r in session.spans}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id == session.root_id
        assert by_name["inner"].attrs == {"depth": 2}

    def test_span_set_updates_attrs(self):
        with observation() as session:
            with span("s", a=1) as handle:
                handle.set(b=2)
        record = next(r for r in session.spans if r.name == "s")
        assert record.attrs == {"a": 1, "b": 2}

    def test_counters_and_timers_record(self):
        with observation() as session:
            count("lines", 8, scheme="fpc")
            with timer("kernel_ms", backend="numpy", kernel="pack"):
                pass
        snapshot = session.metrics.snapshot()
        assert snapshot["lines{scheme=fpc}"]["value"] == 8
        assert snapshot["kernel_ms{backend=numpy,kernel=pack}"]["count"] == 1

    def test_nested_observation_reuses_session(self):
        with observation("outer") as outer:
            with observation("inner") as inner:
                assert inner is outer
            assert is_active()  # inner exit must not tear the session down
        assert not is_active()

    def test_exception_still_deactivates(self):
        with pytest.raises(RuntimeError):
            with observation():
                raise RuntimeError("boom")
        assert not is_active()

    def test_thread_spans_parent_to_root_not_other_thread(self):
        with observation() as session:
            with span("main-side"):
                worker = threading.Thread(target=lambda: span("t").__enter__().__exit__(None, None, None))
                worker.start()
                worker.join()
        record = next(r for r in session.spans if r.name == "t")
        assert record.parent_id == session.root_id


class TestCollect:
    def test_same_process_records_into_active_session(self):
        with observation() as session:
            ctx = task_context()
            assert ctx == TaskContext(trace_id=session.trace_id, parent_id=session.root_id)
            with collect(ctx) as collector:
                with span("task-span"):
                    pass
                count("done")
            assert collector.payload() is None
        record = next(r for r in session.spans if r.name == "task-span")
        assert record.parent_id == session.root_id
        assert session.metrics.snapshot()["done"]["value"] == 1

    def test_same_process_stitches_under_dispatch_span(self):
        with observation() as session:
            with span("dispatch") as dispatch:
                ctx = TaskContext(trace_id=session.trace_id, parent_id=dispatch.span_id)
            # simulate a worker thread with an empty stack
            holder = {}

            def worker():
                with collect(ctx):
                    with span("child") as child:
                        holder["child"] = child.span_id

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        record = next(r for r in session.spans if r.name == "child")
        assert record.parent_id == dispatch.span_id

    def test_foreign_process_buffers_into_payload(self):
        # No active session here: mimics a spawn/fork worker after the
        # fork-guard nulled the inherited session.
        ctx = TaskContext(trace_id="t-1", parent_id="1.1")
        with collect(ctx) as collector:
            with span("worker-span"):
                pass
            count("lines", 3)
        payload = collector.payload()
        assert payload is not None
        assert not is_active()
        (entry,) = payload.spans
        assert entry["name"] == "worker-span"
        assert entry["parent"] == "1.1"  # stitched under the dispatch site
        assert payload.metrics["lines"]["value"] == 3

    def test_forked_copy_of_session_is_not_recorded_into(self):
        with observation() as session:
            stale = ObsSession(label="pretend-parent", trace_id=session.trace_id)
            stale.pid = session.pid - 1  # looks like it came from another process
            import repro.obs.core as core

            core._SESSION = stale
            try:
                ctx = TaskContext(trace_id=session.trace_id, parent_id="9.9")
                with collect(ctx) as collector:
                    count("lines", 2)
                payload = collector.payload()
            finally:
                core._SESSION = session
        assert payload is not None  # buffered, not written into the stale copy
        assert payload.metrics["lines"]["value"] == 2
        assert stale.metrics.snapshot() == {}

    def test_absorb_merges_spans_and_metrics(self):
        payload = ObsPayload(
            spans=[
                {
                    "name": "w",
                    "start_ns": 1,
                    "dur_ns": 2,
                    "pid": 999,
                    "tid": 1,
                    "id": "999.1",
                    "parent": "1.1",
                    "attrs": {},
                }
            ],
            metrics={"lines": {"type": "counter", "value": 4}},
        )
        with observation() as session:
            count("lines", 1)
            absorb(payload)
            absorb(None)  # same-process tasks ship None
        assert any(r.pid == 999 for r in session.spans)
        assert session.metrics.snapshot()["lines"]["value"] == 5


class TestPeakMemory:
    def test_gauge_primitive_requires_session(self):
        from repro.obs import gauge

        gauge("peak_rss_bytes", 123.0)  # no session: must be a silent no-op
        with observation("gauges") as session:
            gauge("peak_rss_bytes", 10.0, role="worker")
            gauge("peak_rss_bytes", 40.0, role="worker")
        entry = session.metrics.snapshot()["peak_rss_bytes{role=worker}"]
        assert entry == {"type": "gauge", "value": 40.0}

    def test_peak_rss_bytes_reports_plausible_value(self):
        from repro.obs import peak_rss_bytes

        peak = peak_rss_bytes()
        if peak is None:
            pytest.skip("no VmHWM or resource.getrusage on this platform")
        # A live CPython process has peaked above 1 MiB and below 1 TiB.
        assert 1 << 20 < peak < 1 << 40
