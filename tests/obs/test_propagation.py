"""Cross-process/thread span propagation and metric aggregation.

The matrix mirrors the engine's own bit-identity contract: every
``(n_jobs, backend)`` combination must produce (a) one stitched span tree
with no orphan parents, (b) identical aggregated metrics, and (c) results
bit-identical to an uninstrumented run -- observability rides alongside the
seeded RNG streams, never inside them.
"""

import os

import pytest

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.evaluation.runner import evaluate_schemes
from repro.obs import observation
from repro.workloads.generator import generate_benchmark_trace

#: 256 lines at chunk_size=32 -> 8 shards per unit, so 4-worker pools
#: genuinely fan out.
CONFIG = EvaluationConfig(chunk_size=32)

#: serial inline path, multi-process pool, GIL-released thread pool.
MATRIX = [
    pytest.param(1, "process", id="serial"),
    pytest.param(4, "process", id="process-4"),
    pytest.param(1, "thread", id="thread-1"),
    pytest.param(4, "thread", id="thread-4"),
]


def _run_observed(trace, n_jobs, backend):
    encoder = make_scheme("din")
    with observation(f"test-{backend}-{n_jobs}") as session:
        results = evaluate_schemes(
            [encoder], trace, CONFIG, n_jobs=n_jobs, backend=backend
        )
    return results, session


@pytest.fixture(scope="module")
def trace():
    return generate_benchmark_trace("gcc", length=256, seed=7)


@pytest.fixture(scope="module")
def reference(trace):
    """Uninstrumented serial run: the bit-identity baseline."""
    return evaluate_schemes([make_scheme("din")], trace, CONFIG, n_jobs=1)


class TestPropagationMatrix:
    @pytest.mark.parametrize("n_jobs, backend", MATRIX)
    def test_span_tree_stitches_with_no_orphans(self, trace, n_jobs, backend):
        _, session = _run_observed(trace, n_jobs, backend)
        ids = {record.span_id for record in session.spans}
        roots = [r for r in session.spans if r.parent_id is None]
        assert len(roots) == 1, "one observation -> one root"
        orphans = [
            r for r in session.spans if r.parent_id is not None and r.parent_id not in ids
        ]
        assert orphans == []

    @pytest.mark.parametrize("n_jobs, backend", MATRIX)
    def test_worker_spans_cover_every_shard(self, trace, n_jobs, backend):
        _, session = _run_observed(trace, n_jobs, backend)
        shard_spans = [r for r in session.spans if r.name == "evaluate_shard"]
        assert len(shard_spans) == 8  # 256 lines / chunk_size 32
        chunks = sorted(r.attrs["chunk"] for r in shard_spans)
        assert chunks == list(range(8))
        map_span = next(r for r in session.spans if r.name == "parallel_map")
        assert all(r.parent_id == map_span.span_id for r in shard_spans)
        assert map_span.attrs["backend"] == backend
        assert map_span.attrs["n_jobs"] == n_jobs

    def test_process_backend_spans_come_from_worker_pids(self, trace):
        _, session = _run_observed(trace, 4, "process")
        shard_pids = {r.pid for r in session.spans if r.name == "evaluate_shard"}
        assert shard_pids and os.getpid() not in shard_pids

    def test_thread_backend_records_in_parent_process(self, trace):
        _, session = _run_observed(trace, 4, "thread")
        assert {r.pid for r in session.spans} == {os.getpid()}

    @pytest.mark.parametrize("n_jobs, backend", MATRIX)
    def test_metrics_aggregate_identically(self, trace, n_jobs, backend):
        _, session = _run_observed(trace, n_jobs, backend)
        snapshot = session.metrics.snapshot()
        assert snapshot["lines_encoded{scheme=din}"]["value"] == 256
        kernel_keys = [k for k in snapshot if k.startswith("kernel_ms{")]
        assert kernel_keys, "kernel timers must fire under observation"

    @pytest.mark.parametrize("n_jobs, backend", MATRIX)
    def test_bit_identity_vs_uninstrumented(self, trace, reference, n_jobs, backend):
        results, _ = _run_observed(trace, n_jobs, backend)
        assert results == reference  # exact dataclass equality, no approx

    @pytest.mark.parametrize("n_jobs, backend", MATRIX)
    def test_starmap_tasks_stitch_and_match_serial(self, trace, n_jobs, backend):
        from repro.evaluation.parallel import ParallelRunner
        from repro.evaluation.sweeps import compression_coverage

        reference = compression_coverage(
            {"gcc": trace}, wlc_k_values=(4, 8), runner=ParallelRunner(n_jobs=1)
        )
        runner = ParallelRunner(n_jobs=n_jobs, backend=backend)
        with observation("sweep") as session:
            observed = compression_coverage(
                {"gcc": trace}, wlc_k_values=(4, 8), runner=runner
            )
        assert observed == reference
        tasks = [r for r in session.spans if r.name == "starmap_task"]
        assert tasks, "every coverage cell must record a task span"
        starmap_span = next(r for r in session.spans if r.name == "starmap")
        assert all(r.parent_id == starmap_span.span_id for r in tasks)

    def test_disabled_runs_record_nothing(self, trace):
        from repro.obs import is_active

        results = evaluate_schemes(
            [make_scheme("din")], trace, CONFIG, n_jobs=4, backend="process"
        )
        assert not is_active()
        assert results is not None
