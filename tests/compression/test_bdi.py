"""Tests of Base-Delta-Immediate compression and its degenerate variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CompressionError
from repro.core.line import LineBatch
from repro.compression.bdi import (
    BDICompressor,
    BDIVariant,
    RepeatedValueCompressor,
    STANDARD_BDI_VARIANTS,
    ZeroLineCompressor,
    elements_to_line,
    line_elements,
)


class TestElementViews:
    @pytest.mark.parametrize("element_bytes", [2, 4, 8])
    def test_roundtrip(self, random_lines, element_bytes):
        words = random_lines.words
        elements = line_elements(words, element_bytes)
        assert elements.shape[-1] == 64 // element_bytes
        assert np.array_equal(elements_to_line(elements, element_bytes), words)

    def test_invalid_element_size(self, random_lines):
        with pytest.raises(CompressionError):
            line_elements(random_lines.words, 3)


class TestDegenerateVariants:
    def test_zero_line(self):
        zero = ZeroLineCompressor()
        batch = LineBatch.zeros(3)
        assert (zero.sizes_bits(batch) == 0).all()
        assert np.array_equal(zero.roundtrip(batch.words[0]), batch.words[0])

    def test_zero_line_rejects_nonzero(self, random_lines):
        with pytest.raises(CompressionError):
            ZeroLineCompressor().compress_line(random_lines.words[0])

    def test_repeated_value(self):
        words = np.full((1, 8), 0xDEADBEEFCAFEF00D, dtype=np.uint64)
        rep = RepeatedValueCompressor()
        assert rep.sizes_bits(LineBatch(words))[0] == 64
        assert np.array_equal(rep.roundtrip(words[0]), words[0])

    def test_repeated_value_rejects_mixed(self, random_lines):
        with pytest.raises(CompressionError):
            RepeatedValueCompressor().compress_line(random_lines.words[0])


class TestBDIVariants:
    def test_variant_names_and_sizes(self):
        variant = BDIVariant(8, 1)
        assert variant.name == "bdi-b8d1"
        assert variant.compressed_bits == 64 + 8 * 8

    def test_invalid_configuration(self):
        with pytest.raises(CompressionError):
            BDIVariant(8, 8)
        with pytest.raises(CompressionError):
            BDIVariant(3, 1)

    def test_fit_detection(self):
        base = 0x1000
        words = np.array([[base + i for i in range(8)]], dtype=np.uint64)
        assert BDIVariant(8, 1).fits(LineBatch(words))[0]
        words_wide = words.copy()
        words_wide[0, 3] += 1 << 40
        assert not BDIVariant(8, 1).fits(LineBatch(words_wide))[0]

    def test_negative_deltas_roundtrip(self):
        base = 0x80000
        offsets = np.array([0, -3, 5, -120, 100, 7, -128, 127])
        words = (base + offsets).astype(np.uint64).reshape(1, 8)
        variant = BDIVariant(8, 1)
        assert variant.fits(LineBatch(words))[0]
        assert np.array_equal(variant.roundtrip(words[0]), words[0])

    def test_wraparound_delta_roundtrip(self):
        """Deltas are modular: a wrapped small delta must still reconstruct."""
        words = np.array([[2**64 - 2, 3, 2**64 - 1, 0, 1, 2, 2**64 - 3, 4]], dtype=np.uint64)
        variant = BDIVariant(8, 1)
        assert variant.fits(LineBatch(words))[0]
        assert np.array_equal(variant.roundtrip(words[0]), words[0])

    @pytest.mark.parametrize("variant", STANDARD_BDI_VARIANTS, ids=lambda v: v.name)
    def test_roundtrip_when_fits(self, variant, rng):
        base = rng.integers(0, 2**40, dtype=np.uint64)
        limit = 1 << (8 * variant.delta_bytes - 1)
        elements = base + rng.integers(0, limit // 2, size=64 // variant.base_bytes, dtype=np.uint64)
        words = elements_to_line(elements.astype(np.uint64), variant.base_bytes).reshape(1, 8)
        if bool(variant.fits(LineBatch(words))[0]):
            assert np.array_equal(variant.roundtrip(words[0]), words[0])

    def test_compress_rejects_unfit_line(self, random_lines):
        with pytest.raises(CompressionError):
            BDIVariant(8, 1).compress_line(random_lines.words[0])


class TestBestOfFamily:
    def test_sizes_are_minimum_plus_tag(self):
        bdi = BDICompressor()
        batch = LineBatch.zeros(1)
        assert bdi.sizes_bits(batch)[0] == bdi.tag_bits

    def test_roundtrip_biased(self, biased_lines):
        bdi = BDICompressor()
        sizes = bdi.sizes_bits(biased_lines[:20])
        for i in range(20):
            if sizes[i] < 512:
                words = biased_lines.words[i]
                assert np.array_equal(bdi.roundtrip(words), words)

    def test_uncompressible_line_reports_512(self, incompressible_lines):
        bdi = BDICompressor()
        sizes = bdi.sizes_bits(incompressible_lines)
        assert sizes.max() <= 512


@given(
    st.integers(min_value=0, max_value=2**63),
    st.lists(st.integers(min_value=-60, max_value=60), min_size=8, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_bdi_b8d1_roundtrip_property(base, deltas):
    """Property: any line of one base plus byte-sized deltas round-trips.

    The deltas are kept within +/-60 so that the difference between any two
    elements (BDI's base is the first element, not ``base``) stays within the
    signed one-byte range.
    """
    words = np.array([(base + d) % 2**64 for d in deltas], dtype=np.uint64).reshape(1, 8)
    variant = BDIVariant(8, 1)
    assert variant.fits(LineBatch(words))[0]
    assert np.array_equal(variant.roundtrip(words[0]), words[0])
