"""Tests of the compressor base helpers."""

import numpy as np
import pytest

from repro.core.errors import CompressionError
from repro.core.line import LineBatch
from repro.compression.base import pack_bits_lsb_first, unpack_bits_lsb_first
from repro.compression.wlc import WLCCompressor


class TestBitPacking:
    def test_pack_unpack_roundtrip(self):
        values = np.array([5, 0, 1023, 7], dtype=np.uint64)
        widths = np.array([4, 3, 10, 3], dtype=np.int64)
        bits = pack_bits_lsb_first(values, widths)
        assert bits.shape[0] == widths.sum()
        assert np.array_equal(unpack_bits_lsb_first(bits, widths), values)

    def test_pack_mismatched_shapes(self):
        with pytest.raises(CompressionError):
            pack_bits_lsb_first(np.array([1, 2]), np.array([3]))

    def test_unpack_too_short_stream(self):
        with pytest.raises(CompressionError):
            unpack_bits_lsb_first(np.zeros(3, dtype=np.uint8), np.array([8]))


class TestCompressorHelpers:
    def test_compressible_budget_validation(self, compressible_lines):
        wlc = WLCCompressor(k=6)
        with pytest.raises(CompressionError):
            wlc.compressible(compressible_lines, 0)
        with pytest.raises(CompressionError):
            wlc.compressible(compressible_lines, 1000)

    def test_coverage_empty_batch(self):
        assert WLCCompressor(k=6).coverage(LineBatch.zeros(0), 100) == 0.0
