"""Tests of the combined FPC+BDI compressor (DIN's compression front-end)."""

import numpy as np
from repro.compression.fpc_bdi import DIN_COMPRESSION_BUDGET_BITS, FPCBDICompressor


class TestSizes:
    def test_budget_constant(self):
        assert DIN_COMPRESSION_BUDGET_BITS == 369

    def test_size_is_best_of_both(self, biased_lines):
        combined = FPCBDICompressor()
        sizes = combined.sizes_bits(biased_lines)
        fpc_sizes = combined.fpc.sizes_bits(biased_lines)
        bdi_sizes = combined.bdi.sizes_bits(biased_lines)
        best = np.minimum(fpc_sizes, bdi_sizes)
        assert (sizes <= np.minimum(best + 1, 512)).all()

    def test_never_exceeds_line_size(self, random_lines):
        assert FPCBDICompressor().sizes_bits(random_lines).max() <= 512


class TestRoundtrip:
    def test_biased_lines(self, biased_lines):
        combined = FPCBDICompressor()
        for i in range(min(24, len(biased_lines))):
            words = biased_lines.words[i]
            assert np.array_equal(combined.roundtrip(words), words)

    def test_random_lines(self, random_lines):
        combined = FPCBDICompressor()
        for i in range(8):
            words = random_lines.words[i]
            assert np.array_equal(combined.roundtrip(words), words)

    def test_zero_line(self):
        combined = FPCBDICompressor()
        words = np.zeros(8, dtype=np.uint64)
        assert np.array_equal(combined.roundtrip(words), words)


class TestCoverage:
    def test_biased_coverage_between_random_and_full(self, biased_lines, random_lines):
        combined = FPCBDICompressor()
        biased_cov = combined.coverage(biased_lines, DIN_COMPRESSION_BUDGET_BITS)
        random_cov = combined.coverage(random_lines, DIN_COMPRESSION_BUDGET_BITS)
        assert random_cov <= 0.05
        assert 0.2 <= biased_cov <= 0.95
