"""Array-backend contract tests: every backend == the numpy reference.

The backend layer (:mod:`repro.compression.backend`) promises that switching
the array backend can only change throughput, never results.  The hypothesis
properties here sweep every *registered* backend over every compressor's
batch path -- including empty batches and ragged segment compaction -- and
assert bit-identity against the numpy reference; backends whose optional
dependency is absent in this environment (numba, cupy) are skipped with the
backend's own unavailability reason.  The super-batch accumulator is held to
the same standard at ``n_jobs`` 1 and 4.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    BDICompressor,
    COCCompressor,
    FPCBDICompressor,
    FPCCompressor,
    RawLineCompressor,
    WLCCompressor,
    compact_segments,
    xor_reduce,
)
from repro.compression.backend import (
    ENV_VAR,
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_array_backend,
    use_array_backend,
)
from repro.core.config import EvaluationConfig
from repro.core.errors import CompressionError, ConfigurationError
from repro.core.line import LineBatch
from repro.workloads.generator import generate_benchmark_trace

#: Backends the suite compares against the numpy reference.
OPTIONAL_BACKENDS = tuple(name for name in backend_names() if name != "numpy")

#: Compressor batch paths every backend must reproduce bit-for-bit.
COMPRESSORS = (
    FPCCompressor(),
    FPCBDICompressor(),
    COCCompressor(),
    RawLineCompressor(),
    BDICompressor(),
    WLCCompressor(k=6),
)


def require_backend(name: str) -> ArrayBackend:
    """The named backend, or a skip carrying its unavailability reason."""
    try:
        return get_backend(name)
    except BackendUnavailableError as exc:
        pytest.skip(f"array backend {name!r} unavailable: {exc}")


def eligible(compressor, batch: LineBatch) -> LineBatch:
    """The subset of ``batch`` the compressor accepts (front-ends take all)."""
    if isinstance(compressor, WLCCompressor):
        return LineBatch(batch.words[compressor.line_compressible(batch)])
    return batch


# ---------------------------------------------------------------------- #
# Registry, selection precedence and error paths
# ---------------------------------------------------------------------- #
class TestSelection:
    def test_builtin_backends_registered(self):
        assert {"numpy", "numba", "cupy"} <= set(backend_names())

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()
        backend = get_backend("numpy")
        assert backend.xp is np

    def test_default_resolution_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend_name() == "numpy"

    def test_env_var_precedence(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cupy")
        assert resolve_backend_name() == "cupy"
        # An active selection beats the environment ...
        with use_array_backend("numpy"):
            assert resolve_backend_name() == "numpy"
            # ... and an explicit argument beats both.
            assert resolve_backend_name("cupy") == "cupy"
        assert resolve_backend_name() == "cupy"

    def test_use_array_backend_restores_previous(self):
        set_array_backend("numpy")
        try:
            with use_array_backend("numpy") as backend:
                assert backend.name == "numpy"
            assert resolve_backend_name() == "numpy"
        finally:
            set_array_backend(None)

    def test_unknown_backend_suggests_close_match(self):
        with pytest.raises(ConfigurationError, match="did you mean 'numpy'"):
            get_backend("numpyy")

    def test_set_array_backend_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            set_array_backend("not-a-backend")
        assert resolve_backend_name() != "not-a-backend"

    def test_unavailable_backend_raises_with_install_hint(self):
        for name in OPTIONAL_BACKENDS:
            try:
                get_backend(name)
            except BackendUnavailableError as exc:
                assert name in str(exc)

    def test_register_backend_round_trip(self):
        marker = ArrayBackend(name="test-dummy", xp=np)
        register_backend("test-dummy", lambda: marker)
        try:
            assert get_backend("test-dummy") is marker
            assert "test-dummy" in available_backends()
        finally:
            from repro.compression.backend import _FACTORIES, _INSTANCES

            _FACTORIES.pop("test-dummy", None)
            _INSTANCES.pop("test-dummy", None)


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestCLI:
    def test_unknown_array_backend_exits_2_with_suggestion(self, capsys):
        from repro.cli import main

        code = main(
            ["evaluate", "--scheme", "baseline", "--array-backend", "numpyy"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown array backend" in captured.err
        assert "did you mean" in captured.err and "numpy" in captured.err

    def test_numpy_array_backend_accepted(self, capsys):
        from repro.cli import main

        code = main(
            [
                "evaluate",
                "--scheme",
                "baseline",
                "--trace-length",
                "64",
                "--array-backend",
                "numpy",
                "--superbatch",
                "128",
                "--json",
            ]
        )
        assert code == 0
        assert "avg_energy_pj" in capsys.readouterr().out

    def test_bench_ls_reports_backend_sensitivity(self, capsys):
        import json

        from repro.cli import main

        code = main(["bench", "ls", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["encoder_throughput"]["backend_sensitive"] is True
        assert any(
            not spec["backend_sensitive"] for spec in payload.values()
        )


# ---------------------------------------------------------------------- #
# Per-backend bit-identity on the compressor batch paths
# ---------------------------------------------------------------------- #
line_words = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=8, max_size=8
)


@pytest.mark.parametrize("backend_name", OPTIONAL_BACKENDS)
class TestBackendIdentity:
    def test_biased_lines_identical(self, backend_name):
        backend = require_backend(backend_name)
        batch = generate_benchmark_trace("gcc", length=96, seed=3).new
        for compressor in COMPRESSORS:
            sub = eligible(compressor, batch)
            reference = compressor.compress_batch(sub)
            with use_array_backend(backend.name):
                packed = compressor.compress_batch(sub)
                decoded = compressor.decompress_batch(packed)
            assert np.array_equal(packed.bits, reference.bits)
            assert np.array_equal(packed.lengths, reference.lengths)
            assert np.array_equal(decoded, sub.words)

    def test_empty_batches_identical(self, backend_name):
        backend = require_backend(backend_name)
        empty = LineBatch.zeros(0)
        for compressor in COMPRESSORS:
            with use_array_backend(backend.name):
                packed = compressor.compress_batch(empty)
                assert len(packed) == 0
                assert compressor.decompress_batch(packed).shape == (0, 8)

    @given(lines=st.lists(line_words, min_size=0, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_content_property(self, backend_name, lines):
        backend = require_backend(backend_name)
        batch = LineBatch(
            np.array(lines, dtype=np.uint64).reshape(len(lines), 8)
        )
        for compressor in COMPRESSORS:
            sub = eligible(compressor, batch)
            reference = compressor.compress_batch(sub)
            with use_array_backend(backend.name):
                packed = compressor.compress_batch(sub)
            assert np.array_equal(packed.bits, reference.bits)
            assert np.array_equal(packed.lengths, reference.lengths)

    @given(
        widths=st.lists(
            st.lists(st.integers(min_value=0, max_value=9), min_size=4, max_size=4),
            min_size=0,
            max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_ragged_segments_property(self, backend_name, widths, seed):
        backend = require_backend(backend_name)
        n = len(widths)
        rng = np.random.default_rng(seed)
        seg_bits = rng.integers(0, 2, size=(n, 4, 9)).astype(np.uint8)
        seg_widths = np.array(widths, dtype=np.int64).reshape(n, 4)
        reference = compact_segments(seg_bits, seg_widths, "test")
        with use_array_backend(backend.name):
            packed = compact_segments(seg_bits, seg_widths, "test")
        assert np.array_equal(packed.bits, reference.bits)
        assert np.array_equal(packed.lengths, reference.lengths)

    def test_din_parity_identical(self, backend_name):
        backend = require_backend(backend_name)
        from repro.ecc.bch import BCHCode

        code = BCHCode(m=10, t=2, data_bits=492)
        data = np.random.default_rng(5).integers(0, 2, size=(40, 492)).astype(np.uint8)
        reference = code.parity_batch(data)
        with use_array_backend(backend.name):
            parity = code.parity_batch(data)
        assert np.array_equal(parity, reference)


# ---------------------------------------------------------------------- #
# XOR-reduction helper (dtype hygiene satellite)
# ---------------------------------------------------------------------- #
class TestXorReduce:
    def test_matches_python_reference(self, rng):
        bits = rng.integers(0, 2, size=(6, 37)).astype(np.uint8)
        matrix = rng.integers(0, 2, size=(37, 11)).astype(np.uint8)
        expected = np.zeros((6, 11), dtype=np.uint8)
        for row in range(6):
            for col in range(37):
                if bits[row, col]:
                    expected[row] ^= matrix[col]
        assert np.array_equal(xor_reduce(bits, matrix), expected)

    def test_empty_batch_guard(self):
        matrix = np.ones((16, 4), dtype=np.uint8)
        out = xor_reduce(np.zeros((0, 16), dtype=np.uint8), matrix)
        assert out.shape == (0, 4)
        assert out.dtype == np.uint8

    def test_shape_validation(self):
        with pytest.raises(CompressionError):
            xor_reduce(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))
        with pytest.raises(CompressionError):
            xor_reduce(np.zeros(3, dtype=np.uint8), np.zeros((3, 2), dtype=np.uint8))

    def test_wide_inputs_do_not_overflow(self):
        # Popcounts beyond 255 must not wrap: an all-ones 492-bit row against
        # an all-ones column is 492 terms, parity 0.
        bits = np.ones((1, 492), dtype=np.uint8)
        matrix = np.ones((492, 1), dtype=np.uint8)
        assert xor_reduce(bits, matrix)[0, 0] == 0


# ---------------------------------------------------------------------- #
# Super-batch accumulator bit-identity
# ---------------------------------------------------------------------- #
class TestSuperbatch:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_benchmark_trace("gcc", length=600, seed=21)

    @pytest.fixture(scope="class")
    def encoder(self):
        from repro.coding import make_scheme

        return make_scheme("wlcrc-16")

    @staticmethod
    def _metrics(encoder, trace, config, n_jobs):
        from repro.evaluation.parallel import ParallelRunner, WorkUnit
        from repro.evaluation.runner import evaluate_trace

        if n_jobs == 1:
            return evaluate_trace(encoder, trace, config)
        runner = ParallelRunner(n_jobs, backend="thread")
        return runner.map([WorkUnit("u", encoder, trace, config)])[0]

    @given(
        superbatch=st.one_of(st.none(), st.integers(min_value=1, max_value=700)),
        n_jobs=st.sampled_from([1, 4]),
    )
    @settings(max_examples=12, deadline=None)
    def test_identical_to_per_chunk_path(self, trace, encoder, superbatch, n_jobs):
        base = EvaluationConfig(
            trace_length=len(trace), chunk_size=128, sample_disturbance=True
        )
        reference = self._metrics(encoder, trace, base, 1)
        grouped = self._metrics(
            encoder,
            trace,
            EvaluationConfig(
                trace_length=len(trace),
                chunk_size=128,
                sample_disturbance=True,
                superbatch_size=superbatch,
                array_backend="numpy",
            ),
            n_jobs,
        )
        assert grouped.as_dict() == reference.as_dict()

    @pytest.mark.parametrize("backend_name", OPTIONAL_BACKENDS)
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_identical_across_array_backends(
        self, trace, encoder, backend_name, n_jobs
    ):
        require_backend(backend_name)
        base = EvaluationConfig(trace_length=len(trace), chunk_size=128)
        reference = self._metrics(encoder, trace, base, 1)
        grouped = self._metrics(
            encoder,
            trace,
            EvaluationConfig(
                trace_length=len(trace),
                chunk_size=128,
                superbatch_size=512,
                array_backend=backend_name,
            ),
            n_jobs,
        )
        assert grouped.as_dict() == reference.as_dict()


# ---------------------------------------------------------------------- #
# Fused-metric kernels == the numpy reference expressions
# ---------------------------------------------------------------------- #
class TestMetricKernels:
    """The per-cell metric kernels behind the fused encode+metrics path.

    The plain-python loop bodies are the single source of truth for the
    ``@njit``-wrapped numba variants, so both the un-jitted impls and every
    registered backend's ``compiled`` table are held bit-identical to the
    numpy expressions the numpy backend evaluates.
    """

    @staticmethod
    def _cells(rng_, n=7, cells=48):
        candidate = rng_.integers(0, 4, size=(n, cells), dtype=np.uint8)
        stored = rng_.integers(0, 4, size=(n, cells), dtype=np.uint8)
        return candidate, stored

    def test_energy_cells_impl_matches_numpy(self, rng):
        from repro.compression.backend import _energy_cells_impl

        states = rng.integers(0, 4, size=300, dtype=np.uint8)
        changed = rng.random(300) < 0.4
        weights = np.array([36.0, 56.0, 343.0, 583.0])
        expected = weights[states] * changed
        assert np.array_equal(_energy_cells_impl(states, changed, weights), expected)

    def test_diff_energy_cells_impl_matches_numpy(self, rng):
        from repro.compression.backend import _diff_energy_cells_impl

        candidate, stored = self._cells(rng)
        weights = np.array([36.0, 56.0, 343.0, 583.0])
        for active in (48, 32, 0):
            expected = weights[candidate] * (candidate != stored)
            expected[:, active:] = 0.0
            got = _diff_energy_cells_impl(candidate, stored, weights, active)
            assert np.array_equal(got, expected)

    def test_flip_blocks_impl_matches_numpy(self, rng):
        from repro.compression.backend import _flip_blocks_impl

        candidate, stored = self._cells(rng, cells=48)
        for active in (48, 36):
            changed = candidate != stored
            changed[:, active:] = False
            expected = changed.reshape(7, 4, 12).sum(axis=-1, dtype=np.int64)
            got = _flip_blocks_impl(candidate, stored, 12, active)
            assert got.dtype == np.int64
            assert np.array_equal(got, expected)

    def test_disturb_cells_impl_matches_model(self, rng):
        from repro.compression.backend import _disturb_cells_impl
        from repro.core.disturbance import DEFAULT_DISTURBANCE_MODEL as model

        stored = rng.integers(0, 4, size=(9, 40), dtype=np.uint8)
        changed = rng.random((9, 40)) < 0.3
        expected = model.rate_per_state[stored] * model.vulnerable_mask(stored, changed)
        got = _disturb_cells_impl(stored, changed, model.rate_per_state)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("backend_name", OPTIONAL_BACKENDS)
    def test_compiled_kernels_match_reference(self, backend_name, rng):
        backend = require_backend(backend_name)
        kernels = backend.compiled
        if not kernels:
            pytest.skip(f"backend {backend_name!r} exposes no compiled kernels")
        candidate, stored = self._cells(rng)
        weights = np.array([36.0, 56.0, 343.0, 583.0])
        rates = np.array([0.123, 0.0, 0.276, 0.152])
        changed2d = candidate != stored
        assert np.array_equal(
            kernels["energy_cells"](
                candidate.reshape(-1), changed2d.reshape(-1), weights
            ),
            weights[candidate.reshape(-1)] * changed2d.reshape(-1),
        )
        expected = weights[candidate] * changed2d
        expected[:, 32:] = 0.0
        assert np.array_equal(
            kernels["diff_energy_cells"](candidate, stored, weights, 32), expected
        )
        flips = changed2d.copy()
        flips[:, 36:] = False
        assert np.array_equal(
            kernels["flip_blocks"](candidate, stored, 12, 36),
            flips.reshape(7, 4, 12).sum(axis=-1, dtype=np.int64),
        )
        from repro.core.disturbance import DEFAULT_DISTURBANCE_MODEL as model

        assert np.array_equal(
            kernels["disturb_cells"](stored, changed2d, model.rate_per_state),
            model.rate_per_state[stored] * model.vulnerable_mask(stored, changed2d),
        )
