"""Tests of Frequent Pattern Compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.line import LineBatch
from repro.compression.fpc import (
    FPCCompressor,
    classify_words32,
    line_to_words32,
    words32_to_line,
)


class TestWord32Conversion:
    def test_roundtrip(self, random_lines):
        words32 = line_to_words32(random_lines.words)
        assert words32.shape == (len(random_lines), 16)
        assert np.array_equal(words32_to_line(words32), random_lines.words)

    def test_low_half_first(self):
        words = np.array([[0x1111111122222222] + [0] * 7], dtype=np.uint64)
        words32 = line_to_words32(words)
        assert words32[0, 0] == 0x22222222
        assert words32[0, 1] == 0x11111111


class TestClassification:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0x00000000, 0),            # zero
            (0x00000005, 1),            # 4-bit sign-extended
            (0xFFFFFFFD, 1),            # negative 4-bit
            (0x0000007F, 2),            # byte sign-extended
            (0xFFFFFF80, 2),
            (0x00001234, 3),            # halfword sign-extended
            (0xFFFF8000, 3),
            (0x12340000, 4),            # halfword padded with zeros
            (0x00110022, 5),            # two sign-extended bytes
            (0xABABABAB, 6),            # repeated bytes
            (0x12345678, 7),            # uncompressible
        ],
    )
    def test_patterns(self, value, expected):
        assert classify_words32(np.array([value], dtype=np.uint32))[0] == expected

    def test_priority_zero_beats_everything(self):
        # Zero also matches 'repeated bytes'; the zero pattern must win.
        assert classify_words32(np.array([0], dtype=np.uint32))[0] == 0


class TestSizes:
    def test_zero_line_size(self):
        sizes = FPCCompressor().sizes_bits(LineBatch.zeros(1))
        assert sizes[0] == 16 * 3  # sixteen 3-bit prefixes, no payload

    def test_random_line_can_exceed_512(self, random_lines):
        sizes = FPCCompressor().sizes_bits(random_lines)
        assert sizes.max() <= 16 * (3 + 32)
        assert sizes.min() >= 16 * 3

    def test_size_matches_stream_length(self, biased_lines):
        fpc = FPCCompressor()
        sizes = fpc.sizes_bits(biased_lines[:10])
        for i in range(10):
            stream = fpc.compress_line(biased_lines.words[i])
            assert stream.size_bits == sizes[i]


class TestRoundtrip:
    def test_biased_lines_roundtrip(self, biased_lines):
        fpc = FPCCompressor()
        for i in range(min(24, len(biased_lines))):
            words = biased_lines.words[i]
            assert np.array_equal(fpc.roundtrip(words), words)

    def test_random_lines_roundtrip(self, random_lines):
        fpc = FPCCompressor()
        for i in range(min(12, len(random_lines))):
            words = random_lines.words[i]
            assert np.array_equal(fpc.roundtrip(words), words)


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=8, max_size=8))
@settings(max_examples=40, deadline=None)
def test_fpc_roundtrip_property(values):
    """Property: FPC is lossless for arbitrary line content."""
    words = np.array(values, dtype=np.uint64)
    assert np.array_equal(FPCCompressor().roundtrip(words), words)
