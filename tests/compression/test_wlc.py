"""Tests of Word-Level Compression (WLC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CompressionError
from repro.core.line import LineBatch
from repro.compression.wlc import WLCCompressor, msb_run_compressible


class TestWordCompressibility:
    def test_all_zero_and_all_one_words_compress(self):
        words = np.array([0, 2**64 - 1], dtype=np.uint64)
        assert msb_run_compressible(words, 6).all()

    def test_small_values_compress(self):
        words = np.array([123, 2**57 - 1], dtype=np.uint64)
        assert msb_run_compressible(words, 6).all()

    def test_value_with_mixed_top_bits_does_not_compress(self):
        word = np.array([np.uint64(1) << np.uint64(58)], dtype=np.uint64)
        assert not msb_run_compressible(word, 6).any()
        # ... but it does compress when only 5 MSBs are required.
        assert msb_run_compressible(word, 5).all()

    def test_k_validation(self):
        with pytest.raises(CompressionError):
            msb_run_compressible(np.array([0], dtype=np.uint64), 1)
        with pytest.raises(CompressionError):
            WLCCompressor(k=70)


class TestGeometry:
    def test_reclaimed_bits(self):
        wlc = WLCCompressor(k=6)
        assert wlc.reclaimed_bits_per_word == 5
        assert wlc.reclaimed_bits_per_line == 40
        assert wlc.sign_bit_index == 58

    def test_sizes(self, compressible_lines, incompressible_lines):
        wlc = WLCCompressor(k=6)
        sizes = wlc.sizes_bits(compressible_lines)
        assert (sizes == 512 - 40).all()
        assert (wlc.sizes_bits(incompressible_lines) == 512).all()

    def test_coverage(self, compressible_lines, incompressible_lines):
        wlc = WLCCompressor(k=6)
        both = LineBatch.concatenate([compressible_lines, incompressible_lines])
        coverage = wlc.coverage(both, 511)
        assert coverage == pytest.approx(len(compressible_lines) / len(both))


class TestReclaimedBitManipulation:
    def test_insert_and_extract(self, compressible_lines):
        wlc = WLCCompressor(k=6)
        aux = np.full(compressible_lines.words.shape, 0b10101, dtype=np.uint64)
        stored = wlc.insert_reclaimed(compressible_lines.words, aux)
        assert np.array_equal(wlc.extract_reclaimed(stored), aux)
        # Data bits below the reclaimed region are untouched.
        mask = np.uint64((1 << 59) - 1)
        assert np.array_equal(stored & mask, compressible_lines.words & mask)

    def test_insert_rejects_oversized_aux(self, compressible_lines):
        wlc = WLCCompressor(k=6)
        aux = np.full(compressible_lines.words.shape, 1 << 5, dtype=np.uint64)
        with pytest.raises(CompressionError):
            wlc.insert_reclaimed(compressible_lines.words, aux)

    def test_sign_extension_restores_original(self, compressible_lines):
        wlc = WLCCompressor(k=6)
        aux = np.zeros(compressible_lines.words.shape, dtype=np.uint64)
        stored = wlc.insert_reclaimed(compressible_lines.words, aux)
        assert np.array_equal(wlc.sign_extend(stored), compressible_lines.words)


class TestLineInterface:
    def test_compress_decompress_roundtrip(self, compressible_lines):
        wlc = WLCCompressor(k=6)
        for i in range(min(8, len(compressible_lines))):
            words = compressible_lines.words[i]
            assert np.array_equal(wlc.roundtrip(words), words)

    def test_compress_rejects_incompressible(self, incompressible_lines):
        wlc = WLCCompressor(k=6)
        with pytest.raises(CompressionError):
            wlc.compress_line(incompressible_lines.words[0])

    def test_stream_length(self, compressible_lines):
        wlc = WLCCompressor(k=6)
        stream = wlc.compress_line(compressible_lines.words[0])
        assert stream.size_bits == 512 - 40


@given(
    st.lists(st.integers(min_value=0, max_value=2**57 - 1), min_size=8, max_size=8),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_wlc_roundtrip_property(values, negative):
    """Property: any line of 57-bit (optionally sign-extended) words round-trips."""
    words = np.array(values, dtype=np.uint64)
    if negative:
        words = ~words & np.uint64(2**64 - 1) | np.uint64(0xFE00000000000000)
    wlc = WLCCompressor(k=6)
    if bool(wlc.word_compressible(words).all()):
        assert np.array_equal(wlc.roundtrip(words), words)
