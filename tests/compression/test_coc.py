"""Tests of Coverage-Oriented Compression (the bank-of-compressors front-end)."""

import numpy as np
import pytest

from repro.core.errors import CompressionError
from repro.core.line import LineBatch
from repro.compression.coc import (
    COC_BUDGET_16BIT,
    COC_BUDGET_32BIT,
    COCCompressor,
    RawLineCompressor,
    WordDeltaCompressor,
    default_coc_members,
)


class TestBankStructure:
    def test_default_members(self):
        members = default_coc_members()
        assert len(members) == 11
        names = [m.name for m in members]
        assert "fpc" in names and "raw" in names and "zero-line" in names

    def test_too_many_members_rejected(self):
        members = default_coc_members() * 4
        with pytest.raises(CompressionError):
            COCCompressor(members=tuple(members))


class TestRawMember:
    def test_roundtrip(self, random_lines):
        raw = RawLineCompressor()
        words = random_lines.words[0]
        assert raw.compress_line(words).size_bits == 512
        assert np.array_equal(raw.roundtrip(words), words)


class TestWordDeltaMember:
    def test_fit_and_roundtrip(self):
        base = 0xABC000
        words = (base + np.array([0, 5, -3, 100, 7, 2, -9, 30])).astype(np.uint64).reshape(1, 8)
        member = WordDeltaCompressor()
        assert member.fits(LineBatch(words))[0]
        assert np.array_equal(member.roundtrip(words[0]), words[0])

    def test_unfit_line(self, random_lines):
        member = WordDeltaCompressor()
        assert not member.fits(random_lines[:4]).any()
        with pytest.raises(CompressionError):
            member.compress_line(random_lines.words[0])


class TestCOC:
    def test_sizes_are_at_most_line_size(self, biased_lines, random_lines):
        coc = COCCompressor()
        assert coc.sizes_bits(biased_lines).max() <= 512
        assert coc.sizes_bits(random_lines).max() <= 512

    def test_high_coverage_on_biased_data(self, biased_lines, random_lines):
        coc = COCCompressor()
        assert coc.coverage(biased_lines, COC_BUDGET_16BIT) > 0.6
        assert coc.coverage(random_lines, COC_BUDGET_16BIT) < 0.1

    def test_budgets_ordering(self):
        assert COC_BUDGET_16BIT < COC_BUDGET_32BIT < 512

    def test_roundtrip(self, biased_lines):
        coc = COCCompressor()
        for i in range(min(24, len(biased_lines))):
            words = biased_lines.words[i]
            assert np.array_equal(coc.roundtrip(words), words)

    def test_best_member_matches_sizes(self, biased_lines):
        coc = COCCompressor()
        sizes = coc.sizes_bits(biased_lines[:8])
        for i in range(8):
            _, member = coc.best_member(biased_lines.words[i])
            member_size = member.sizes_bits(biased_lines[i:i + 1])[0]
            assert min(member_size + coc.tag_bits, 512) == sizes[i]

    def test_decompress_rejects_bad_tag(self):
        coc = COCCompressor()
        from repro.compression.base import CompressedLine

        bits = np.zeros(600, dtype=np.uint8)
        bits[:5] = [1, 1, 1, 1, 1]  # member index 31 does not exist
        with pytest.raises(CompressionError):
            coc.decompress_line(CompressedLine(bits=bits, compressor="coc"))
