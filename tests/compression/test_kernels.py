"""Batch-kernel contract tests: ``compress_batch`` == scalar ``compress_line``.

The vectorised kernels in :mod:`repro.compression.kernels` must be
bit-identical to the per-line interface for every compressor of the bank --
stream for stream, length for length -- and ``decompress_batch`` must
round-trip the original lines.  The hypothesis properties sweep structured
and adversarial line content through every variant of BDI, FPC, CoC and WLC
(plus the FPC+BDI and raw/word-delta members).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    BDICompressor,
    COCCompressor,
    CompressedLine,
    FPCBDICompressor,
    FPCCompressor,
    PackedBits,
    RawLineCompressor,
    RepeatedValueCompressor,
    STANDARD_BDI_VARIANTS,
    WLCCompressor,
    WordDeltaCompressor,
    ZeroLineCompressor,
    compact_segments,
    hstack_bits,
    pack_fields,
    unpack_fields,
)
from repro.core.errors import CompressionError
from repro.core.line import LineBatch
from repro.core.symbols import BITS_PER_LINE

#: Every compressor whose kernel applies to *arbitrary* line content.
UNIVERSAL_COMPRESSORS = (
    FPCCompressor(),
    FPCBDICompressor(),
    COCCompressor(),
    RawLineCompressor(),
)


def assert_batch_equals_scalar(compressor, batch: LineBatch) -> None:
    """The three-way kernel contract on one batch of eligible lines."""
    packed = compressor.compress_batch(batch)
    assert len(packed) == len(batch)
    for i in range(len(batch)):
        scalar = compressor.compress_line(batch.words[i])
        line = packed.line(i)
        assert line.size_bits == scalar.size_bits
        assert np.array_equal(line.bits, scalar.bits)
        assert np.array_equal(
            compressor.decompress_line(scalar), batch.words[i]
        )
    assert np.array_equal(compressor.decompress_batch(packed), batch.words)


# ---------------------------------------------------------------------- #
# Bit-matrix primitives
# ---------------------------------------------------------------------- #
class TestPrimitives:
    def test_pack_unpack_roundtrip(self, rng):
        values = rng.integers(0, 2**64, size=(5, 7), dtype=np.uint64)
        assert np.array_equal(pack_fields(unpack_fields(values, 64)), values)

    def test_pack_rejects_overwide_fields(self):
        with pytest.raises(CompressionError):
            pack_fields(np.zeros((1, 65), dtype=np.uint8))

    def test_compact_segments_matches_cursor_loop(self, rng):
        n, segments, cap = 6, 5, 9
        seg_bits = rng.integers(0, 2, size=(n, segments, cap)).astype(np.uint8)
        widths = rng.integers(0, cap + 1, size=(n, segments)).astype(np.int64)
        packed = compact_segments(seg_bits, widths, "test")
        for i in range(n):
            expected = np.concatenate(
                [seg_bits[i, s, : widths[i, s]] for s in range(segments)]
            )
            assert np.array_equal(packed.line(i).bits, expected)

    def test_hstack_bits_concatenates_ragged_rows(self):
        left = PackedBits(
            np.array([[1, 0], [1, 1]], dtype=np.uint8), np.array([1, 2]), "l"
        )
        right = PackedBits(
            np.array([[0, 1, 1], [1, 0, 0]], dtype=np.uint8), np.array([3, 1]), "r"
        )
        stacked = hstack_bits([left, right], "s")
        assert np.array_equal(stacked.line(0).bits, [1, 0, 1, 1])
        assert np.array_equal(stacked.line(1).bits, [1, 1, 1])

    def test_packed_bits_validates_shapes(self):
        with pytest.raises(CompressionError):
            PackedBits(np.zeros((2, 3), dtype=np.uint8), np.array([4, 1]), "bad")
        with pytest.raises(CompressionError):
            PackedBits(np.zeros(3, dtype=np.uint8), np.array([1]), "bad")

    def test_from_streams_pads_rows(self):
        packed = PackedBits.from_streams(
            [np.array([1], dtype=np.uint8), np.array([0, 1, 1], dtype=np.uint8)], "p"
        )
        assert packed.bits.shape == (2, 3)
        assert list(packed.lengths) == [1, 3]


# ---------------------------------------------------------------------- #
# Per-compressor equivalence on fixture content
# ---------------------------------------------------------------------- #
class TestFixtureEquivalence:
    @pytest.mark.parametrize(
        "compressor", UNIVERSAL_COMPRESSORS, ids=lambda c: c.name
    )
    def test_universal_on_biased_lines(self, compressor, biased_lines):
        assert_batch_equals_scalar(compressor, biased_lines[:48])

    @pytest.mark.parametrize(
        "compressor", UNIVERSAL_COMPRESSORS, ids=lambda c: c.name
    )
    def test_universal_on_random_lines(self, compressor, random_lines):
        assert_batch_equals_scalar(compressor, random_lines[:32])

    @pytest.mark.parametrize("variant", STANDARD_BDI_VARIANTS, ids=lambda v: v.name)
    def test_bdi_variants_on_fitting_lines(self, variant, rng):
        limit = 1 << (8 * variant.delta_bytes - 1)
        base = rng.integers(
            0, 1 << (8 * variant.base_bytes - 2), size=(40, 1), dtype=np.uint64
        )
        elements = base + rng.integers(
            0, limit // 2, size=(40, 64 // variant.base_bytes), dtype=np.uint64
        )
        from repro.compression import elements_to_line

        words = elements_to_line(elements, variant.base_bytes)
        batch = LineBatch(words)
        assert bool(variant.fits(batch).all())
        assert_batch_equals_scalar(variant, batch)
        assert np.array_equal(
            variant.compress_batch(batch).lengths, variant.sizes_bits(batch)
        )

    def test_bdi_front_end_on_compressible_subset(self, biased_lines):
        bdi = BDICompressor()
        mask = bdi.sizes_bits(biased_lines) < BITS_PER_LINE
        batch = LineBatch(biased_lines.words[mask])
        assert len(batch) > 0
        assert_batch_equals_scalar(bdi, batch)
        assert np.array_equal(bdi.compress_batch(batch).lengths, bdi.sizes_bits(batch))

    def test_wlc_on_compressible_lines(self, compressible_lines):
        for k in (4, 6, 9):
            wlc = WLCCompressor(k=k)
            eligible = LineBatch(
                compressible_lines.words[wlc.line_compressible(compressible_lines)]
            )
            if len(eligible):
                assert_batch_equals_scalar(wlc, eligible)

    def test_degenerate_variants(self):
        zero = ZeroLineCompressor()
        assert_batch_equals_scalar(zero, LineBatch.zeros(5))
        rep = RepeatedValueCompressor()
        words = np.full((4, 8), 0xDEADBEEFCAFEF00D, dtype=np.uint64)
        assert_batch_equals_scalar(rep, LineBatch(words))

    def test_word_delta_member(self, rng):
        base = rng.integers(0, 2**62, size=(20, 1), dtype=np.uint64)
        words = base + rng.integers(0, 2**14, size=(20, 8), dtype=np.uint64)
        delta = WordDeltaCompressor()
        batch = LineBatch(words)
        assert bool(delta.fits(batch).all())
        assert_batch_equals_scalar(delta, batch)

    def test_sizes_match_stream_lengths_universal(self, biased_lines):
        # FPC's size query is uncapped, so it equals the stream lengths
        # exactly; the front-ends cap sizes_bits at 512 while their streams
        # keep the true length (the scalar path always behaved this way), so
        # for them the capped views must agree.
        fpc = FPCCompressor()
        assert np.array_equal(
            fpc.compress_batch(biased_lines[:64]).lengths,
            fpc.sizes_bits(biased_lines[:64]),
        )
        for compressor in (FPCBDICompressor(), COCCompressor()):
            packed = compressor.compress_batch(biased_lines[:64])
            assert np.array_equal(
                np.minimum(packed.lengths, BITS_PER_LINE),
                np.minimum(compressor.sizes_bits(biased_lines[:64]), BITS_PER_LINE),
            )


# ---------------------------------------------------------------------- #
# Validation / error paths
# ---------------------------------------------------------------------- #
class TestValidation:
    def test_batch_rejects_unfit_lines(self, random_lines):
        with pytest.raises(CompressionError):
            ZeroLineCompressor().compress_batch(random_lines[:4])
        with pytest.raises(CompressionError):
            WLCCompressor(k=12).compress_batch(random_lines[:4])

    def test_validated_skips_classification(self, random_lines):
        # The pre-validated entry point trusts the caller -- it must not
        # re-run the fits test (here: garbage in, garbage out, no raise).
        packed = ZeroLineCompressor().compress_batch(random_lines[:2], validated=True)
        assert list(packed.lengths) == [0, 0]

    def test_truncated_streams_raise(self):
        fpc = FPCCompressor()
        with pytest.raises(CompressionError):
            fpc.decompress_batch(
                PackedBits(np.zeros((1, 4), dtype=np.uint8), np.array([4]), "fpc")
            )
        coc = COCCompressor()
        with pytest.raises(CompressionError):
            coc.decompress_batch(
                PackedBits(np.zeros((1, 2), dtype=np.uint8), np.array([2]), "coc")
            )

    def test_unknown_tags_raise(self):
        coc = COCCompressor()
        bad_tag = np.array([[1, 1, 1, 1, 1] + [0] * 600], dtype=np.uint8)
        with pytest.raises(CompressionError):
            coc.decompress_batch(PackedBits(bad_tag, np.array([605]), "coc"))

    def test_empty_batches(self):
        for compressor in UNIVERSAL_COMPRESSORS + (BDICompressor(), WLCCompressor(6)):
            packed = compressor.compress_batch(LineBatch.zeros(0))
            assert len(packed) == 0
            assert compressor.decompress_batch(packed).shape == (0, 8)

    def test_scalar_wrapper_round_trip_matches_base_loop(self, biased_lines):
        # The generic base-class loop (what a third-party compressor would
        # inherit) must agree with the overridden vectorised kernels.
        fpc = FPCCompressor()
        from repro.compression.base import Compressor

        generic = Compressor.compress_batch(fpc, biased_lines[:8])
        fast = fpc.compress_batch(biased_lines[:8])
        assert np.array_equal(generic.lengths, fast.lengths)
        assert np.array_equal(generic.bits, fast.bits)
        assert np.array_equal(
            Compressor.decompress_batch(fpc, fast), biased_lines[:8].words
        )


# ---------------------------------------------------------------------- #
# Hypothesis properties
# ---------------------------------------------------------------------- #
line_words = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=8, max_size=8
)


@given(st.lists(line_words, min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_universal_kernels_property(lines):
    """Property: batch == scalar and decode round-trips, any content."""
    batch = LineBatch(np.array(lines, dtype=np.uint64))
    for compressor in UNIVERSAL_COMPRESSORS:
        assert_batch_equals_scalar(compressor, batch)


@given(
    st.sampled_from(STANDARD_BDI_VARIANTS),
    st.integers(min_value=0, max_value=2**63),
    st.lists(st.integers(min_value=-40, max_value=40), min_size=8, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_bdi_variant_kernels_property(variant, base, deltas):
    """Property: every BDI variant's kernel equals its scalar path when it fits."""
    words = np.array(
        [[(base + d) % 2**64 for d in deltas]], dtype=np.uint64
    ).repeat(2, axis=0)
    batch = LineBatch(words)
    if bool(variant.fits(batch).all()):
        assert_batch_equals_scalar(variant, batch)


@given(
    st.integers(min_value=2, max_value=16),
    st.lists(st.integers(min_value=0, max_value=2**48 - 1), min_size=8, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_wlc_kernels_property(k, low_words):
    """Property: WLC keep-bit packing equals the scalar path at any k."""
    wlc = WLCCompressor(k=k)
    words = np.array([low_words], dtype=np.uint64)
    batch = LineBatch(words)
    if bool(wlc.line_compressible(batch).all()):
        assert_batch_equals_scalar(wlc, batch)


@given(st.lists(line_words, min_size=1, max_size=4))
@settings(max_examples=25, deadline=None)
def test_coc_member_dispatch_property(lines):
    """Property: COC's vectorised member choice equals scalar best_member."""
    coc = COCCompressor()
    batch = LineBatch(np.array(lines, dtype=np.uint64))
    member_sizes = coc.member_sizes(batch)
    choice = coc._member_choice(member_sizes)
    for i in range(len(batch)):
        index, _ = coc.best_member(batch.words[i])
        assert index == choice[i]


@given(st.lists(line_words, min_size=1, max_size=4))
@settings(max_examples=25, deadline=None)
def test_decompress_accepts_padded_streams(lines):
    """Zero-padding past the stream length must not change the decode."""
    coc = COCCompressor()
    batch = LineBatch(np.array(lines, dtype=np.uint64))
    packed = coc.compress_batch(batch)
    padded = PackedBits(
        np.concatenate(
            [packed.bits, np.zeros((len(batch), 64), dtype=np.uint8)], axis=1
        ),
        packed.lengths,
        packed.compressor,
    )
    assert np.array_equal(coc.decompress_batch(padded), batch.words)


def test_compressed_line_view_is_copy(biased_lines):
    packed = FPCCompressor().compress_batch(biased_lines[:2])
    line = packed.line(0)
    assert isinstance(line, CompressedLine)
    line.bits[:] = 1  # mutating the view must not corrupt the batch
    assert np.array_equal(
        packed.line(0).bits, FPCCompressor().compress_line(biased_lines.words[0]).bits
    )
