"""Tests of the raw trace format and the trace corpus."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.line import LineBatch
from repro.traces.store import (
    TraceCorpus,
    load_trace,
    read_trace_header,
    save_trace,
    trace_cache_key,
)
from repro.workloads.generator import GENERATOR_VERSION, generate_benchmark_trace
from repro.workloads.trace import WriteTrace


def _add_one(corpus_dir, name):
    """Worker for the concurrent-add test; module-level so it pickles."""
    TraceCorpus(corpus_dir).add(_trace(n=4), name=name)


def _trace(n=16, with_addresses=True, name="unit"):
    rng = np.random.default_rng(3)
    addresses = (np.arange(n, dtype=np.uint64) * 64) if with_addresses else None
    return WriteTrace(
        old=LineBatch.random(n, rng),
        new=LineBatch.random(n, rng),
        addresses=addresses,
        name=name,
        metadata={"suite": "test", "origin": "store-test"},
    )


class TestFileFormat:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = _trace()
        path = save_trace(trace, tmp_path / "t.wtrc")
        loaded = load_trace(path)
        assert loaded.old == trace.old
        assert loaded.new == trace.new
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.name == trace.name
        assert loaded.metadata == trace.metadata

    def test_roundtrip_without_addresses(self, tmp_path):
        path = save_trace(_trace(with_addresses=False), tmp_path / "t.wtrc")
        assert load_trace(path).addresses is None

    def test_mmap_load_is_memory_mapped(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        loaded = load_trace(path, mmap=True)
        assert loaded.mmap_path == path
        words = loaded.old.words
        assert isinstance(words, np.memmap) or isinstance(words.base, np.memmap)

    def test_non_mmap_load(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        loaded = load_trace(path, mmap=False)
        assert loaded.mmap_path is None
        assert loaded.old == load_trace(path, mmap=True).old

    def test_slicing_drops_mmap_path(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        assert load_trace(path)[2:5].mmap_path is None

    def test_empty_trace_roundtrip(self, tmp_path):
        empty = WriteTrace(old=LineBatch.zeros(0), new=LineBatch.zeros(0))
        loaded = load_trace(save_trace(empty, tmp_path / "empty.wtrc"))
        assert len(loaded) == 0

    def test_header_exposes_layout(self, tmp_path):
        trace = _trace(n=10)
        path = save_trace(trace, tmp_path / "t.wtrc")
        header = read_trace_header(path)
        assert header.n_lines == 10
        assert header.has_addresses
        assert header.data_offset % 64 == 0
        assert header.new_offset - header.old_offset == 10 * 8 * 8

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.wtrc"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(TraceError, match="bad magic"):
            read_trace_header(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(TraceError, match="truncated"):
            read_trace_header(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "nope.wtrc")

    def test_huge_header_length_rejected(self, tmp_path):
        """A crafted header_len must raise TraceError, not MemoryError."""
        import struct

        path = tmp_path / "evil.wtrc"
        path.write_bytes(struct.pack("<4sHHQ", b"WTRC", 1, 0, 2**62))
        with pytest.raises(TraceError, match="header length"):
            read_trace_header(path)

    def test_corrupt_header_fields_rejected(self, tmp_path):
        import json as json_module
        import struct

        for bad_header in ({"name": "x"}, {"n_lines": -5}, {"n_lines": "many"}):
            path = tmp_path / "bad.wtrc"
            body = json_module.dumps(bad_header).encode()
            path.write_bytes(
                struct.pack("<4sHHQ", b"WTRC", 1, 0, len(body)) + body + b"\0" * 64
            )
            with pytest.raises(TraceError, match="n_lines"):
                read_trace_header(path)

    def test_future_version_rejected(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="version"):
            read_trace_header(path)


class TestWriteTraceDispatch:
    """WriteTrace.save/.load route by format (satellite: round-trip coverage)."""

    def test_wtrc_suffix_roundtrip(self, tmp_path):
        trace = _trace()
        path = trace.save(tmp_path / "t.wtrc")
        loaded = WriteTrace.load(path)
        assert loaded.mmap_path is not None
        assert loaded.old == trace.old
        assert loaded.new == trace.new
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.metadata == trace.metadata

    def test_npz_suffix_keeps_archive_format(self, tmp_path):
        trace = _trace()
        path = trace.save(tmp_path / "t.npz")
        loaded = WriteTrace.load(path)
        assert loaded.mmap_path is None
        assert loaded.old == trace.old
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.metadata == trace.metadata


class TestCorpus:
    def test_add_then_load(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        trace = _trace(name="mytrace")
        corpus.add(trace, profile="gcc", seed=7)
        assert "mytrace" in corpus
        assert corpus.names() == ["mytrace"]
        loaded = corpus.load("mytrace")
        assert loaded.new == trace.new
        entry = corpus.entries()["mytrace"]
        assert entry.profile == "gcc"
        assert entry.seed == 7
        assert entry.n_lines == len(trace)

    def test_path_escaping_names_rejected(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        for name in ("../evil", "a/b", "..", ".hidden", "a\\b"):
            with pytest.raises(TraceError, match="invalid corpus trace name"):
                corpus.add(_trace(), name=name)
        assert not (tmp_path / "evil.wtrc").exists()

    def test_unknown_name_lists_alternatives(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.add(_trace(name="alpha"))
        with pytest.raises(TraceError, match="alpha"):
            corpus.load("beta")

    def test_get_or_generate_caches_on_disk(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        first = corpus.get_or_generate("gcc", 64, seed=5)
        files = sorted((tmp_path / "corpus" / "cache").iterdir())
        second = corpus.get_or_generate("gcc", 64, seed=5)
        assert sorted((tmp_path / "corpus" / "cache").iterdir()) == files
        assert first.new == second.new
        assert first.old == second.old
        # and the cached trace equals a fresh in-memory generation
        fresh = generate_benchmark_trace("gcc", 64, 5)
        assert first.new == fresh.new

    def test_cache_key_distinguishes_inputs(self):
        base = trace_cache_key("gcc", 64, 5, GENERATOR_VERSION)
        assert trace_cache_key("gcc", 64, 6, GENERATOR_VERSION) != base
        assert trace_cache_key("gcc", 65, 5, GENERATOR_VERSION) != base
        assert trace_cache_key("lbm", 64, 5, GENERATOR_VERSION) != base
        assert trace_cache_key("gcc", 64, 5, GENERATOR_VERSION + 1) != base

    def test_concurrent_adds_keep_every_entry(self, tmp_path):
        """Index updates are serialised: parallel writers don't drop entries."""
        import multiprocessing

        corpus_dir = tmp_path / "corpus"
        names = [f"t{i}" for i in range(6)]
        with multiprocessing.Pool(3) as pool:
            pool.starmap(_add_one, [(str(corpus_dir), name) for name in names])
        assert TraceCorpus(corpus_dir).names() == sorted(names)

    def test_generated_traces_are_indexed(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.get_or_generate("lbm", 32, seed=9)
        entry = corpus.entries()["lbm-n32-s9"]
        assert entry.profile == "lbm"
        assert entry.seed == 9
        assert entry.n_lines == 32
