"""Tests of the raw trace format and the trace corpus."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.line import LineBatch
from repro.traces.store import (
    TraceCorpus,
    load_trace,
    read_trace_header,
    save_trace,
    trace_cache_key,
)
from repro.workloads.generator import GENERATOR_VERSION, generate_benchmark_trace
from repro.workloads.trace import WriteTrace


def _add_one(corpus_dir, name):
    """Worker for the concurrent-add test; module-level so it pickles."""
    TraceCorpus(corpus_dir).add(_trace(n=4), name=name)


def _trace(n=16, with_addresses=True, name="unit"):
    rng = np.random.default_rng(3)
    addresses = (np.arange(n, dtype=np.uint64) * 64) if with_addresses else None
    return WriteTrace(
        old=LineBatch.random(n, rng),
        new=LineBatch.random(n, rng),
        addresses=addresses,
        name=name,
        metadata={"suite": "test", "origin": "store-test"},
    )


class TestFileFormat:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = _trace()
        path = save_trace(trace, tmp_path / "t.wtrc")
        loaded = load_trace(path)
        assert loaded.old == trace.old
        assert loaded.new == trace.new
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.name == trace.name
        assert loaded.metadata == trace.metadata

    def test_roundtrip_without_addresses(self, tmp_path):
        path = save_trace(_trace(with_addresses=False), tmp_path / "t.wtrc")
        assert load_trace(path).addresses is None

    def test_mmap_load_is_memory_mapped(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        loaded = load_trace(path, mmap=True)
        assert loaded.mmap_path == path
        words = loaded.old.words
        assert isinstance(words, np.memmap) or isinstance(words.base, np.memmap)

    def test_non_mmap_load(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        loaded = load_trace(path, mmap=False)
        assert loaded.mmap_path is None
        assert loaded.old == load_trace(path, mmap=True).old

    def test_slicing_drops_mmap_path(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        assert load_trace(path)[2:5].mmap_path is None

    def test_empty_trace_roundtrip(self, tmp_path):
        empty = WriteTrace(old=LineBatch.zeros(0), new=LineBatch.zeros(0))
        loaded = load_trace(save_trace(empty, tmp_path / "empty.wtrc"))
        assert len(loaded) == 0

    def test_header_exposes_layout(self, tmp_path):
        trace = _trace(n=10)
        path = save_trace(trace, tmp_path / "t.wtrc")
        header = read_trace_header(path)
        assert header.n_lines == 10
        assert header.has_addresses
        assert header.data_offset % 64 == 0
        assert header.new_offset - header.old_offset == 10 * 8 * 8

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.wtrc"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(TraceError, match="bad magic"):
            read_trace_header(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(TraceError, match="truncated"):
            read_trace_header(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "nope.wtrc")

    def test_huge_header_length_rejected(self, tmp_path):
        """A crafted header_len must raise TraceError, not MemoryError."""
        import struct

        path = tmp_path / "evil.wtrc"
        path.write_bytes(struct.pack("<4sHHQ", b"WTRC", 1, 0, 2**62))
        with pytest.raises(TraceError, match="header length"):
            read_trace_header(path)

    def test_corrupt_header_fields_rejected(self, tmp_path):
        import json as json_module
        import struct

        for bad_header in ({"name": "x"}, {"n_lines": -5}, {"n_lines": "many"}):
            path = tmp_path / "bad.wtrc"
            body = json_module.dumps(bad_header).encode()
            path.write_bytes(
                struct.pack("<4sHHQ", b"WTRC", 1, 0, len(body)) + body + b"\0" * 64
            )
            with pytest.raises(TraceError, match="n_lines"):
                read_trace_header(path)

    def test_future_version_rejected(self, tmp_path):
        path = save_trace(_trace(), tmp_path / "t.wtrc")
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="version"):
            read_trace_header(path)


class TestWriteTraceDispatch:
    """WriteTrace.save/.load route by format (satellite: round-trip coverage)."""

    def test_wtrc_suffix_roundtrip(self, tmp_path):
        trace = _trace()
        path = trace.save(tmp_path / "t.wtrc")
        loaded = WriteTrace.load(path)
        assert loaded.mmap_path is not None
        assert loaded.old == trace.old
        assert loaded.new == trace.new
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.metadata == trace.metadata

    def test_npz_suffix_keeps_archive_format(self, tmp_path):
        trace = _trace()
        path = trace.save(tmp_path / "t.npz")
        loaded = WriteTrace.load(path)
        assert loaded.mmap_path is None
        assert loaded.old == trace.old
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.metadata == trace.metadata


class TestCorpus:
    def test_add_then_load(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        trace = _trace(name="mytrace")
        corpus.add(trace, profile="gcc", seed=7)
        assert "mytrace" in corpus
        assert corpus.names() == ["mytrace"]
        loaded = corpus.load("mytrace")
        assert loaded.new == trace.new
        entry = corpus.entries()["mytrace"]
        assert entry.profile == "gcc"
        assert entry.seed == 7
        assert entry.n_lines == len(trace)

    def test_path_escaping_names_rejected(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        for name in ("../evil", "a/b", "..", ".hidden", "a\\b"):
            with pytest.raises(TraceError, match="invalid corpus trace name"):
                corpus.add(_trace(), name=name)
        assert not (tmp_path / "evil.wtrc").exists()

    def test_unknown_name_lists_alternatives(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.add(_trace(name="alpha"))
        with pytest.raises(TraceError, match="alpha"):
            corpus.load("beta")

    def test_get_or_generate_caches_on_disk(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        first = corpus.get_or_generate("gcc", 64, seed=5)
        files = sorted((tmp_path / "corpus" / "cache").iterdir())
        second = corpus.get_or_generate("gcc", 64, seed=5)
        assert sorted((tmp_path / "corpus" / "cache").iterdir()) == files
        assert first.new == second.new
        assert first.old == second.old
        # and the cached trace equals a fresh in-memory generation
        fresh = generate_benchmark_trace("gcc", 64, 5)
        assert first.new == fresh.new

    def test_cache_key_distinguishes_inputs(self):
        base = trace_cache_key("gcc", 64, 5, GENERATOR_VERSION)
        assert trace_cache_key("gcc", 64, 6, GENERATOR_VERSION) != base
        assert trace_cache_key("gcc", 65, 5, GENERATOR_VERSION) != base
        assert trace_cache_key("lbm", 64, 5, GENERATOR_VERSION) != base
        assert trace_cache_key("gcc", 64, 5, GENERATOR_VERSION + 1) != base

    def test_concurrent_adds_keep_every_entry(self, tmp_path):
        """Index updates are serialised: parallel writers don't drop entries."""
        import multiprocessing

        corpus_dir = tmp_path / "corpus"
        names = [f"t{i}" for i in range(6)]
        with multiprocessing.Pool(3) as pool:
            pool.starmap(_add_one, [(str(corpus_dir), name) for name in names])
        assert TraceCorpus(corpus_dir).names() == sorted(names)

    def test_generated_traces_are_indexed(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "corpus")
        corpus.get_or_generate("lbm", 32, seed=9)
        entry = corpus.entries()["lbm-n32-s9"]
        assert entry.profile == "lbm"
        assert entry.seed == 9
        assert entry.n_lines == 32


class TestCorpusGC:
    """LRU byte-budget eviction of the generation cache."""

    @staticmethod
    def _fill(corpus, specs):
        import os

        for i, (profile, n) in enumerate(specs):
            corpus.get_or_generate(profile, n, seed=1)
            # Widen the mtime spacing so LRU order is unambiguous even on
            # filesystems with coarse timestamps.
            for j, path in enumerate(sorted(corpus.cache_dir().glob("*.wtrc"))):
                os.utime(path, ns=(j * 10**9, (j + 1) * 10**9))

    def test_evicts_oldest_first_until_budget(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        self._fill(corpus, [("gcc", 32), ("lbm", 32), ("mcf", 32)])
        files = sorted(
            corpus.cache_dir().glob("*.wtrc"), key=lambda p: p.stat().st_mtime_ns
        )
        sizes = [p.stat().st_size for p in files]
        budget = sizes[1] + sizes[2]  # room for exactly the two newest
        report = corpus.gc(budget_bytes=budget)
        assert report["removed"] == [files[0].name]
        assert report["kept_bytes"] <= budget
        assert not files[0].exists() and files[1].exists() and files[2].exists()

    def test_index_entries_of_evicted_traces_are_dropped(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        self._fill(corpus, [("gcc", 32), ("lbm", 32)])
        assert len(corpus.entries()) == 2
        corpus.gc(budget_bytes=0)
        assert corpus.entries() == {}
        assert list(corpus.cache_dir().glob("*.wtrc")) == []

    def test_named_traces_are_never_evicted(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        corpus.add(_trace(), name="precious")
        corpus.get_or_generate("gcc", 32, seed=1)
        corpus.gc(budget_bytes=0)
        assert "precious" in corpus.entries()
        assert (tmp_path / "c" / "precious.wtrc").exists()

    def test_dry_run_deletes_nothing(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        self._fill(corpus, [("gcc", 32)])
        report = corpus.gc(budget_bytes=0, dry_run=True)
        assert report["removed"] and report["dry_run"]
        assert len(list(corpus.cache_dir().glob("*.wtrc"))) == 1
        assert len(corpus.entries()) == 1

    def test_cache_hit_refreshes_lru_position(self, tmp_path):
        import os

        corpus = TraceCorpus(tmp_path / "c")
        corpus.get_or_generate("gcc", 32, seed=1)
        corpus.get_or_generate("lbm", 32, seed=1)
        files = sorted(corpus.cache_dir().glob("*.wtrc"))
        for j, path in enumerate(files):
            os.utime(path, ns=(j * 10**9, (j + 1) * 10**9))
        oldest = min(files, key=lambda p: p.stat().st_mtime_ns)
        before_atime = oldest.stat().st_atime_ns
        before_mtime = oldest.stat().st_mtime_ns
        # Hitting both entries advances their atime (the LRU clock) while
        # leaving mtime alone -- the mmap transport's staleness guards key
        # on mtime, so a cache hit must not look like a rewrite.
        corpus.get_or_generate("gcc", 32, seed=1)
        corpus.get_or_generate("lbm", 32, seed=1)
        assert oldest.stat().st_atime_ns > before_atime
        assert oldest.stat().st_mtime_ns == before_mtime

    def test_budget_on_constructor_collects_after_generation(self, tmp_path):
        probe = TraceCorpus(tmp_path / "probe")
        probe.get_or_generate("gcc", 32, seed=1)
        per_trace = max(p.stat().st_size for p in probe.cache_dir().glob("*.wtrc"))
        budget = 2 * per_trace + per_trace // 2  # room for about two traces
        corpus = TraceCorpus(tmp_path / "c", cache_budget_bytes=budget)
        for profile in ("gcc", "lbm", "mcf", "milc"):
            corpus.get_or_generate(profile, 32, seed=1)
        total = sum(p.stat().st_size for p in corpus.cache_dir().glob("*.wtrc"))
        assert total <= budget
        assert len(list(corpus.cache_dir().glob("*.wtrc"))) < 4

    def test_cache_hit_does_not_invalidate_mmap_descriptors(self, tmp_path):
        """A concurrent run's cache hit must not make exported descriptors
        look stale: only atime moves, and the transport guards key on mtime."""
        from repro.traces.transport import (
            MmapTraceDescriptor,
            TraceExporter,
            attach_trace,
        )

        corpus = TraceCorpus(tmp_path / "c")
        trace = corpus.get_or_generate("gcc", 32, seed=1)
        with TraceExporter("mmap") as exporter:
            descriptor = exporter.export(trace)
            assert isinstance(descriptor, MmapTraceDescriptor)
            corpus.get_or_generate("gcc", 32, seed=1)  # concurrent cache hit
            attached = attach_trace(descriptor)  # must not raise "changed"
            assert attached.new == trace.new

    def test_budget_smaller_than_one_trace_still_returns_it(self, tmp_path):
        """Generation under an impossibly small budget must not crash: the
        trace is loaded before the eviction, so the caller keeps a usable
        (unlinked-inode) mapping and only the cache file disappears."""
        corpus = TraceCorpus(tmp_path / "c", cache_budget_bytes=16)
        trace = corpus.get_or_generate("gcc", 32, seed=1)
        assert trace.new == generate_benchmark_trace("gcc", 32, 1).new
        assert list(corpus.cache_dir().glob("*.wtrc")) == []

    def test_gc_without_budget_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="byte budget"):
            TraceCorpus(tmp_path / "c").gc()

    def test_negative_budgets_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            TraceCorpus(tmp_path / "c", cache_budget_bytes=-1)
        with pytest.raises(TraceError):
            TraceCorpus(tmp_path / "c").gc(budget_bytes=-5)


class TestAddPath:
    def test_indexes_existing_file(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        corpus.root.mkdir(parents=True)
        path = save_trace(_trace(name="spooled"), corpus.root / "spooled.wtrc")
        corpus.add_path(path, profile="gcc", seed=4)
        entry = corpus.entries()["spooled"]
        assert entry.n_lines == 16
        assert entry.profile == "gcc"
        assert corpus.load("spooled").new == _trace().new

    def test_rejects_files_outside_the_corpus(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        outside = save_trace(_trace(), tmp_path / "elsewhere.wtrc")
        with pytest.raises(TraceError, match="outside corpus"):
            corpus.add_path(outside)

    def test_rejects_invalid_names(self, tmp_path):
        corpus = TraceCorpus(tmp_path / "c")
        corpus.root.mkdir(parents=True)
        path = save_trace(_trace(), corpus.root / "x.wtrc")
        with pytest.raises(TraceError, match="invalid corpus trace name"):
            corpus.add_path(path, name="a/b")
