"""Tests of the external-trace parsers and the content synthesiser."""

from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.traces.ingest import (
    detect_trace_format,
    ingest_trace_file,
    iter_trace_address_chunks,
    parse_ramulator_inst_trace,
    parse_ramulator_trace,
    parse_tracehm_trace,
    synthesize_write_trace,
)

#: The checked-in 1k-line ramulator2-style sample trace (see README).
SAMPLE = Path(__file__).resolve().parents[1] / "data" / "sample_ramulator2.trace"


class TestRamulatorParser:
    def test_sample_trace_parses(self):
        addresses = parse_ramulator_trace(SAMPLE)
        assert len(addresses) > 0
        assert addresses.dtype == np.uint64
        assert (addresses % 64 == 0).all()

    def test_reads_are_filtered(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("R 0x1000 0x40\nW 0x2000 0x40\nR 0x3000 0x40\n")
        assert parse_ramulator_trace(path).tolist() == [0x2000]

    def test_wide_access_expands_to_lines(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0x1000 0x100\n")
        assert parse_ramulator_trace(path).tolist() == [0x1000, 0x1040, 0x1080, 0x10C0]

    def test_unaligned_access_coalesces(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0x1030 0x40\n")  # straddles two 64B lines
        assert parse_ramulator_trace(path).tolist() == [0x1000, 0x1040]

    def test_size_defaults_to_one_line(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0x1000\n")
        assert parse_ramulator_trace(path).tolist() == [0x1000]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\nW 0x40 0x40\n")
        assert parse_ramulator_trace(path).tolist() == [0x40]

    def test_out_of_range_address_rejected(self, tmp_path):
        """Negative or >64-bit addresses must raise TraceError, not OverflowError."""
        for line in ("W 0x1FFFFFFFFFFFFFFFFFF 0x40", "W -8 0x40"):
            path = tmp_path / "t.trace"
            path.write_text(line + "\n")
            with pytest.raises(TraceError, match="64-bit"):
                parse_ramulator_trace(path)
        path = tmp_path / "hm.trace"
        path.write_text("0\t0x1FFFFFFFFFFFFFFFFFF\t1\n")
        with pytest.raises(TraceError, match="64-bit"):
            parse_tracehm_trace(path)

    def test_implausible_size_rejected(self, tmp_path):
        """A corrupt size field must error, not expand into billions of lines."""
        path = tmp_path / "t.trace"
        path.write_text("W 0x0 0xFFFFFFFFFFFF\n")
        with pytest.raises(TraceError, match="implausible access size"):
            parse_ramulator_trace(path)

    def test_garbage_rejected_with_location(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0x40 0x40\nX 0x80 0x40\n")
        with pytest.raises(TraceError, match=":2"):
            parse_ramulator_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            parse_ramulator_trace(tmp_path / "nope.trace")

    def test_directory_input_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            parse_ramulator_trace(tmp_path)


class TestTracehmParser:
    def test_writes_only(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0\t0x1000\t1\n1\t0x2000\t0\n2\t0x3010\t1\n")
        assert parse_tracehm_trace(path).tolist() == [0x1000, 0x3000]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0\t0x1000\n")
        with pytest.raises(TraceError, match=":1"):
            parse_tracehm_trace(path)


class TestRamulatorInstParser:
    """The ramulator2 instruction dialect: ``<bubbles> <ld> [<st>]``."""

    def test_store_field_is_the_write(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("3 1000\n0 2048 4096\n7 128 0x1040\n")
        assert parse_ramulator_inst_trace(path).tolist() == [4096, 0x1040]

    def test_store_addresses_coalesce_to_lines(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 64 100\n")
        assert parse_ramulator_inst_trace(path).tolist() == [64]

    def test_load_only_lines_contribute_nothing(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("2 4096\n9 8192\n")
        assert parse_ramulator_inst_trace(path).tolist() == []

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("5\n")
        with pytest.raises(TraceError, match=":1"):
            parse_ramulator_inst_trace(path)

    def test_too_many_fields_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 2 3 4\n")
        with pytest.raises(TraceError, match="expected"):
            parse_ramulator_inst_trace(path)

    def test_out_of_range_store_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0 64 0x1FFFFFFFFFFFFFFFFFF\n")
        with pytest.raises(TraceError, match="64-bit"):
            parse_ramulator_inst_trace(path)

    def test_ingest_end_to_end(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0 64 128\n1 64\n2 64 128\n")
        trace = ingest_trace_file(path, fmt="ramulator2-inst")
        assert len(trace) == 2
        assert trace.metadata["source_format"] == "ramulator2-inst"
        # the second store rewrites what the first stored
        assert (trace.old.words[1] == trace.new.words[0]).all()


class TestAddressChunkIterator:
    def test_exact_chunking_matches_parse(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("".join(f"W 0x{i * 64:X} 0x40\n" for i in range(100)))
        chunks = list(iter_trace_address_chunks(path, chunk_lines=32))
        assert [len(c) for c in chunks] == [32, 32, 32, 4]
        assert np.concatenate(chunks).tolist() == parse_ramulator_trace(path).tolist()

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0x40 0x40\n")
        with pytest.raises(TraceError, match="unknown trace format"):
            list(iter_trace_address_chunks(path, fmt="elf"))


class TestFormatDetection:
    def test_detects_ramulator(self):
        assert detect_trace_format(SAMPLE) == "ramulator2"

    def test_detects_ramulator_inst(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("3 20734016 20734528\n")
        assert detect_trace_format(path) == "ramulator2-inst"

    def test_detects_ramulator_inst_load_only(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("3 20734016\n")
        assert detect_trace_format(path) == "ramulator2-inst"

    def test_bare_hex_tracehm_still_detected(self, tmp_path):
        """tracehm without 0x prefixes: the 0/1 write flag disambiguates."""
        path = tmp_path / "t.trace"
        path.write_text("0\t1000\t1\n1\t2000\t0\n")
        assert detect_trace_format(path) == "tracehm"
        assert parse_tracehm_trace(path).tolist() == [0x1000]

    def test_hex_addressed_inst_trace_detected(self, tmp_path):
        """0x-prefixed load AND store addresses read as ramulator2-inst."""
        path = tmp_path / "t.trace"
        path.write_text("3 0x7F00 0x7F40\n")
        assert detect_trace_format(path) == "ramulator2-inst"
        assert parse_ramulator_inst_trace(path).tolist() == [0x7F40]

    def test_hex_tracehm_with_hex_flag_stays_tracehm(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0\t0x1000\t0x1\n")
        assert detect_trace_format(path) == "tracehm"

    def test_hex_load_only_inst_line_detected(self, tmp_path):
        """Every line shape the inst parser accepts must also be sniffable."""
        for first_line in ("3 0x7F00", "0x3 0x7F00 0x7F40"):
            path = tmp_path / "t.trace"
            path.write_text(first_line + "\n")
            assert detect_trace_format(path) == "ramulator2-inst", first_line
            parse_ramulator_inst_trace(path)  # and the parser agrees

    def test_detects_tracehm(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0\t0x1000\t1\n")
        assert detect_trace_format(path) == "tracehm"

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("hello world\n")
        with pytest.raises(TraceError, match="cannot detect"):
            detect_trace_format(path)


class TestSynthesis:
    def test_deterministic_per_address_stream(self):
        addresses = np.arange(20, dtype=np.uint64) * 64
        first = synthesize_write_trace(addresses)
        second = synthesize_write_trace(addresses)
        assert first.old == second.old
        assert first.new == second.new

    def test_different_streams_differ(self):
        a = synthesize_write_trace(np.arange(20, dtype=np.uint64) * 64)
        b = synthesize_write_trace(np.arange(1, 21, dtype=np.uint64) * 64)
        assert a.new != b.new

    def test_seed_perturbs_contents(self):
        addresses = np.arange(20, dtype=np.uint64) * 64
        unseeded = synthesize_write_trace(addresses)
        seeded = synthesize_write_trace(addresses, seed=1)
        assert unseeded.new != seeded.new

    def test_rewrites_chain_through_address_state(self):
        """The j-th write's old value is the (j-1)-th write's new value."""
        addresses = np.array([0, 64, 0, 0, 64], dtype=np.uint64)
        trace = synthesize_write_trace(addresses)
        assert (trace.old.words[2] == trace.new.words[0]).all()
        assert (trace.old.words[3] == trace.new.words[2]).all()
        assert (trace.old.words[4] == trace.new.words[1]).all()

    def test_empty_stream(self):
        trace = synthesize_write_trace(np.array([], dtype=np.uint64))
        assert len(trace) == 0

    def test_hot_line_stream_stays_fast(self):
        """Skewed streams (one hot line) must not degrade quadratically."""
        import time

        rng = np.random.default_rng(0)
        addresses = np.where(
            rng.random(20_000) < 0.9, 0, rng.integers(1, 500, 20_000) * 64
        ).astype(np.uint64)
        start = time.perf_counter()
        trace = synthesize_write_trace(addresses)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # the pre-fix round loop took minutes here
        # the ~18k-write chain through the hot line is still exact
        hot = np.flatnonzero(addresses == 0)
        assert (trace.old.words[hot[1]] == trace.new.words[hot[0]]).all()
        assert (trace.old.words[hot[-1]] == trace.new.words[hot[-2]]).all()

    def test_addresses_and_metadata_recorded(self):
        addresses = np.array([0, 64, 0], dtype=np.uint64)
        trace = synthesize_write_trace(addresses, profile="lbm", name="ext")
        assert np.array_equal(trace.addresses, addresses)
        assert trace.name == "ext"
        assert trace.metadata["profile"] == "lbm"
        assert trace.metadata["unique_lines"] == "2"


class TestIngestFile:
    def test_sample_end_to_end(self):
        trace = ingest_trace_file(SAMPLE)
        addresses = parse_ramulator_trace(SAMPLE)
        assert len(trace) == len(addresses)
        assert np.array_equal(trace.addresses, addresses)
        assert trace.metadata["source_format"] == "ramulator2"
        # real content: old and new differ somewhere, but not everywhere
        assert 0.0 < trace.changed_bit_fraction() < 1.0

    def test_explicit_format(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0\t0x1000\t1\n")
        trace = ingest_trace_file(path, fmt="tracehm")
        assert len(trace) == 1

    def test_unknown_format_name(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("W 0x40 0x40\n")
        with pytest.raises(TraceError, match="unknown trace format"):
            ingest_trace_file(path, fmt="elf")
