"""End-to-end tests of the streaming chunk pipeline.

The pipeline's contract, asserted here layer by layer:

* :class:`TraceWriter` produces byte-identical files to :func:`save_trace`;
* streamed ingest (parse -> synthesise -> spool) is bit-identical to the
  in-memory path for every dialect;
* evaluating an :class:`IngestChunkSource` through the engine's windowed
  streaming dispatch is bit-identical to the serial in-memory evaluation at
  ``n_jobs`` 1 and 4 (the hypothesis property test below is the ISSUE's
  acceptance criterion);
* peak memory of the streamed path is bounded by the in-flight window, not
  the trace length (the smoke test streams a trace >= 10x the chunk window
  and asserts the tracemalloc peak barely moves versus a window-sized one).

The smoke test scales with ``REPRO_SMOKE_LINES`` so CI's tier-2 job can run
it against a much larger trace than the default tier-1 run.
"""

import os
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.core.errors import TraceError
from repro.evaluation.parallel import ParallelRunner, WorkUnit
from repro.evaluation.runner import evaluate_trace
from repro.traces.ingest import (
    IngestChunkSource,
    StreamingSynthesizer,
    ingest_trace_file,
    stream_ingest_to_wtrc,
    synthesize_write_trace,
)
from repro.traces.store import TraceWriter, load_trace, read_trace_header, save_trace
from repro.workloads.trace import WriteTrace, rechunk_traces

MC_CONFIG = EvaluationConfig(chunk_size=64, sample_disturbance=True, seed=5)


def _write_ramulator(path: Path, addresses, writes_mask=None) -> Path:
    lines = []
    for i, addr in enumerate(addresses):
        is_write = True if writes_mask is None else bool(writes_mask[i])
        lines.append(f"{'W' if is_write else 'R'} 0x{int(addr):X} 0x40")
    path.write_text("\n".join(lines) + "\n")
    return path


def _write_tracehm(path: Path, addresses, writes_mask=None) -> Path:
    lines = []
    for i, addr in enumerate(addresses):
        is_write = 1 if writes_mask is None or writes_mask[i] else 0
        lines.append(f"{i}\t0x{int(addr):X}\t{is_write}")
    path.write_text("\n".join(lines) + "\n")
    return path


def _write_ramulator_inst(path: Path, addresses, writes_mask=None) -> Path:
    lines = []
    for i, addr in enumerate(addresses):
        if writes_mask is None or writes_mask[i]:
            lines.append(f"{i % 7} {int(addr) ^ 0x40} {int(addr)}")
        else:
            lines.append(f"{i % 7} {int(addr)}")
    path.write_text("\n".join(lines) + "\n")
    return path


DIALECT_WRITERS = {
    "ramulator2": _write_ramulator,
    "tracehm": _write_tracehm,
    "ramulator2-inst": _write_ramulator_inst,
}


def _addresses(rng, n, span=2000):
    return (rng.integers(0, span, n) * 64).astype(np.uint64)


class TestTraceWriter:
    def test_chunked_write_is_byte_identical_to_save_trace(self, tmp_path, gcc_trace):
        trace = gcc_trace[:150]
        trace.metadata["origin"] = "unit-test"
        reference = save_trace(trace, tmp_path / "ref.wtrc")
        with TraceWriter(tmp_path / "streamed.wtrc", name=trace.name) as writer:
            for chunk in trace.chunks(37):
                writer.append(chunk)
            writer.metadata.update(trace.metadata)
        assert (tmp_path / "streamed.wtrc").read_bytes() == reference.read_bytes()

    def test_with_addresses(self, tmp_path):
        rng = np.random.default_rng(0)
        trace = synthesize_write_trace(_addresses(rng, 100), chunk_lines=32)
        reference = save_trace(trace, tmp_path / "ref.wtrc")
        with TraceWriter(tmp_path / "s.wtrc", name=trace.name) as writer:
            for chunk in trace.chunks(41):
                writer.append(chunk)
            writer.metadata.update(trace.metadata)
        assert (tmp_path / "s.wtrc").read_bytes() == reference.read_bytes()
        loaded = load_trace(tmp_path / "s.wtrc")
        assert np.array_equal(loaded.addresses, trace.addresses)

    def test_empty_writer_produces_valid_empty_trace(self, tmp_path):
        with TraceWriter(tmp_path / "empty.wtrc") as writer:
            pass
        assert read_trace_header(tmp_path / "empty.wtrc").n_lines == 0
        assert len(load_trace(tmp_path / "empty.wtrc")) == 0

    def test_exception_leaves_no_file(self, tmp_path, gcc_trace):
        target = tmp_path / "aborted.wtrc"
        with pytest.raises(RuntimeError):
            with TraceWriter(target) as writer:
                writer.append(gcc_trace[:10])
                raise RuntimeError("boom")
        assert not target.exists()
        assert not list(tmp_path.glob("*.tmp"))  # spools cleaned up

    def test_mixed_addresses_rejected(self, tmp_path, gcc_trace):
        rng = np.random.default_rng(0)
        with_addr = synthesize_write_trace(_addresses(rng, 10))
        with TraceWriter(tmp_path / "t.wtrc") as writer:
            writer.append(with_addr)
            with pytest.raises(TraceError, match="consistently"):
                writer.append(gcc_trace[:10])  # no addresses
            writer.abort()
        assert not (tmp_path / "t.wtrc").exists()

    def test_append_after_close_rejected(self, tmp_path, gcc_trace):
        writer = TraceWriter(tmp_path / "t.wtrc")
        writer.append(gcc_trace[:10])
        writer.close()
        with pytest.raises(TraceError, match="closed"):
            writer.append(gcc_trace[:10])


class TestNpzTraceWriter:
    """Streaming ``.npz`` targets (the archive path no longer materialises)."""

    def _assert_traces_equal(self, a, b):
        assert np.array_equal(a.old.words, b.old.words)
        assert np.array_equal(a.new.words, b.new.words)
        if a.addresses is None:
            assert b.addresses is None
        else:
            assert np.array_equal(a.addresses, b.addresses)
        assert a.name == b.name
        assert a.metadata == b.metadata

    def test_chunked_write_loads_equal_to_save(self, tmp_path, gcc_trace):
        from repro.traces.store import NpzTraceWriter

        trace = gcc_trace[:150]
        trace.metadata["origin"] = "unit-test"
        reference = trace.save(tmp_path / "ref.npz")
        with NpzTraceWriter(tmp_path / "streamed.npz", name=trace.name) as writer:
            for chunk in trace.chunks(37):
                writer.append(chunk)
            writer.metadata.update(trace.metadata)
        self._assert_traces_equal(
            WriteTrace.load(tmp_path / "streamed.npz"), WriteTrace.load(reference)
        )

    def test_with_addresses_and_line_count_probe(self, tmp_path):
        from repro.traces.store import NpzTraceWriter, read_npz_trace_lines

        rng = np.random.default_rng(0)
        trace = synthesize_write_trace(_addresses(rng, 100), chunk_lines=32)
        with NpzTraceWriter(tmp_path / "s.npz", name=trace.name) as writer:
            for chunk in trace.chunks(41):
                writer.append(chunk)
            writer.metadata.update(trace.metadata)
        assert read_npz_trace_lines(tmp_path / "s.npz") == len(trace)
        self._assert_traces_equal(WriteTrace.load(tmp_path / "s.npz"), trace)

    def test_stream_ingest_to_npz_equals_in_memory(self, tmp_path):
        from repro.traces.ingest import ingest_trace_file, stream_ingest_to_npz

        sample = Path(__file__).parent.parent / "data" / "sample_ramulator2.trace"
        streamed = stream_ingest_to_npz(sample, tmp_path / "s.npz")
        reference = ingest_trace_file(sample)
        self._assert_traces_equal(WriteTrace.load(streamed), reference)

    def test_empty_writer_produces_valid_empty_archive(self, tmp_path):
        from repro.traces.store import NpzTraceWriter, read_npz_trace_lines

        with NpzTraceWriter(tmp_path / "empty.npz", has_addresses=True) as writer:
            pass
        loaded = WriteTrace.load(tmp_path / "empty.npz")
        assert len(loaded) == 0
        assert loaded.addresses is not None and loaded.addresses.shape == (0,)
        assert read_npz_trace_lines(tmp_path / "empty.npz") == 0

    def test_exception_leaves_no_file(self, tmp_path, gcc_trace):
        from repro.traces.store import NpzTraceWriter

        target = tmp_path / "aborted.npz"
        with pytest.raises(RuntimeError):
            with NpzTraceWriter(target) as writer:
                writer.append(gcc_trace[:10])
                raise RuntimeError("boom")
        assert not target.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_probe_rejects_non_archives(self, tmp_path):
        from repro.traces.store import read_npz_trace_lines

        junk = tmp_path / "junk.npz"
        junk.write_text("not a zip")
        with pytest.raises(TraceError):
            read_npz_trace_lines(junk)


class TestStreamedIngestIdentity:
    @pytest.mark.parametrize("dialect", sorted(DIALECT_WRITERS))
    def test_streamed_wtrc_is_byte_identical_to_in_memory(self, tmp_path, dialect):
        rng = np.random.default_rng(3)
        src = DIALECT_WRITERS[dialect](
            tmp_path / "in.trace", _addresses(rng, 900), rng.random(900) < 0.7
        )
        mem = ingest_trace_file(src, fmt=dialect, chunk_lines=256)
        reference = save_trace(mem, tmp_path / "mem.wtrc")
        streamed = stream_ingest_to_wtrc(
            src, tmp_path / "stream.wtrc", fmt=dialect, chunk_lines=256
        )
        assert streamed.read_bytes() == reference.read_bytes()

    def test_chunk_source_matches_materialised_chunking(self, tmp_path):
        rng = np.random.default_rng(4)
        src = _write_ramulator(tmp_path / "in.trace", _addresses(rng, 700))
        mem = ingest_trace_file(src, chunk_lines=128)
        source = IngestChunkSource(src, chunk_lines=128)
        streamed_chunks = list(source.chunks(96))
        reference_chunks = list(mem.chunks(96))
        assert len(streamed_chunks) == len(reference_chunks)
        for streamed, reference in zip(streamed_chunks, reference_chunks):
            assert streamed.old == reference.old
            assert streamed.new == reference.new
            assert np.array_equal(streamed.addresses, reference.addresses)

    def test_chunk_source_is_reiterable(self, tmp_path):
        rng = np.random.default_rng(5)
        src = _write_ramulator(tmp_path / "in.trace", _addresses(rng, 300))
        source = IngestChunkSource(src, chunk_lines=64)
        first = WriteTrace.concat(list(source.chunks(50)))
        second = WriteTrace.concat(list(source.chunks(50)))
        assert first.old == second.old
        assert first.new == second.new

    def test_zero_write_trace_streams_byte_identically(self, tmp_path):
        """A reads-only input yields no chunks but the same empty .wtrc."""
        src = tmp_path / "reads.trace"
        src.write_text("R 0x1000 0x40\nR 0x2000 0x40\n")
        mem = ingest_trace_file(src)
        reference = save_trace(mem, tmp_path / "mem.wtrc")
        streamed = stream_ingest_to_wtrc(src, tmp_path / "stream.wtrc")
        assert streamed.read_bytes() == reference.read_bytes()
        assert read_trace_header(streamed).n_lines == 0

    def test_synthesis_quantum_boundaries_do_not_leak(self):
        """Same stream, same quantum, different feed granularity: identical."""
        rng = np.random.default_rng(6)
        addresses = _addresses(rng, 500, span=40)  # heavy reuse across chunks
        whole = synthesize_write_trace(addresses, chunk_lines=128)
        synthesizer = StreamingSynthesizer()
        fed = WriteTrace.concat(
            [synthesizer.feed(addresses[i:i + 128]) for i in range(0, 500, 128)]
        )
        assert fed.old == whole.old
        assert fed.new == whole.new


class TestRechunkTraces:
    def test_rechunks_exactly(self, gcc_trace):
        pieces = list(gcc_trace[:190].chunks(48))
        rechunked = list(rechunk_traces(iter(pieces), 64))
        assert [len(c) for c in rechunked] == [64, 64, 62]
        assert WriteTrace.concat(rechunked).new == gcc_trace[:190].new

    def test_empty_and_invalid(self):
        assert list(rechunk_traces(iter([]), 8)) == []
        with pytest.raises(TraceError):
            list(rechunk_traces(iter([]), 0))


class TestStreamingEvaluation:
    """The ISSUE's acceptance criterion: streamed == in-memory, n_jobs 1 and 4."""

    @settings(max_examples=8, deadline=None)
    @given(
        dialect=st.sampled_from(sorted(DIALECT_WRITERS)),
        seed=st.integers(0, 2**16),
        n=st.integers(1, 400),
    )
    def test_streamed_evaluation_matches_in_memory(self, tmp_path_factory, dialect, seed, n):
        rng = np.random.default_rng(seed)
        tmp = tmp_path_factory.mktemp("stream-prop")
        src = DIALECT_WRITERS[dialect](
            tmp / "in.trace", _addresses(rng, n, span=60), rng.random(n) < 0.8
        )
        mem = ingest_trace_file(src, fmt=dialect, chunk_lines=128)
        encoder = make_scheme("baseline")
        reference = evaluate_trace(encoder, mem, MC_CONFIG)
        source = IngestChunkSource(src, fmt=dialect, chunk_lines=128)
        streamed = ParallelRunner(1).map([WorkUnit("k", encoder, source, MC_CONFIG)])[0]
        assert streamed == reference

    @pytest.mark.parametrize("dialect", sorted(DIALECT_WRITERS))
    def test_streamed_evaluation_matches_at_four_jobs(self, tmp_path, dialect):
        rng = np.random.default_rng(8)
        src = DIALECT_WRITERS[dialect](
            tmp_path / "in.trace", _addresses(rng, 900), rng.random(900) < 0.8
        )
        mem = ingest_trace_file(src, fmt=dialect, chunk_lines=128)
        encoder = make_scheme("wlcrc-16")
        reference = evaluate_trace(encoder, mem, MC_CONFIG)
        source = IngestChunkSource(src, fmt=dialect, chunk_lines=128)
        streamed = ParallelRunner(4, window=3).map(
            [WorkUnit("k", encoder, source, MC_CONFIG)]
        )[0]
        assert streamed == reference

    def test_multiple_units_share_one_source(self, tmp_path):
        """Re-iterable sources let several schemes stream the same file."""
        rng = np.random.default_rng(9)
        src = _write_ramulator(tmp_path / "in.trace", _addresses(rng, 400))
        mem = ingest_trace_file(src, chunk_lines=128)
        source = IngestChunkSource(src, chunk_lines=128)
        encoders = [make_scheme("baseline"), make_scheme("fnw")]
        units = [WorkUnit(e.name, e, source, MC_CONFIG) for e in encoders]
        streamed = ParallelRunner(4, window=2).map(units)
        for unit_index, encoder in enumerate(encoders):
            assert streamed[unit_index] == evaluate_trace(
                encoder, mem, MC_CONFIG, unit_index=unit_index
            )

    def test_mixed_materialised_and_streaming_units(self, tmp_path, gcc_trace):
        rng = np.random.default_rng(10)
        src = _write_ramulator(tmp_path / "in.trace", _addresses(rng, 300))
        source = IngestChunkSource(src, chunk_lines=64)
        mem = ingest_trace_file(src, chunk_lines=64)
        encoder = make_scheme("baseline")
        units = [
            WorkUnit("a", encoder, gcc_trace[:150], MC_CONFIG),
            WorkUnit("b", encoder, source, MC_CONFIG),
        ]
        results = ParallelRunner(2, window=2).map(units)
        assert results[0] == evaluate_trace(encoder, gcc_trace[:150], MC_CONFIG)
        assert results[1] == evaluate_trace(encoder, mem, MC_CONFIG, unit_index=1)


class TestBoundedMemory:
    """Peak memory tracks the window/quantum, not the trace length."""

    #: Requests in the large trace; CI's tier-2 job raises this by 20x+.
    SMOKE_LINES = int(os.environ.get("REPRO_SMOKE_LINES", "30000"))
    #: Synthesis quantum of the smoke run -- the "chunk window" the large
    #: trace must exceed by >= 10x.
    QUANTUM = int(os.environ.get("REPRO_SMOKE_CHUNK_LINES", "2048"))

    @staticmethod
    def _traced_peak(func):
        tracemalloc.start()
        try:
            result = func()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    @pytest.mark.tier2
    def test_streaming_convert_and_evaluate_peak_is_window_bounded(self, tmp_path):
        """Stream a trace >= 10x the chunk window end to end; the tracemalloc
        peak must stay near the one-window baseline instead of scaling with
        the trace, and the metrics must match the in-memory path exactly."""
        large_n = max(self.SMOKE_LINES, 10 * self.QUANTUM)
        rng = np.random.default_rng(11)
        small = _write_ramulator(
            tmp_path / "small.trace", _addresses(rng, self.QUANTUM, span=5000)
        )
        large = _write_ramulator(
            tmp_path / "large.trace", _addresses(rng, large_n, span=5000)
        )

        def convert(src, out):
            return lambda: stream_ingest_to_wtrc(
                src, out, chunk_lines=self.QUANTUM
            )

        _, small_peak = self._traced_peak(convert(small, tmp_path / "small.wtrc"))
        spooled, large_peak = self._traced_peak(convert(large, tmp_path / "large.wtrc"))
        trace_bytes = large_n * 128  # materialised old+new content alone
        assert large_peak < max(3 * small_peak, trace_bytes // 4), (
            f"streamed convert peak {large_peak} scales with the trace "
            f"(window baseline {small_peak}, trace {trace_bytes} bytes)"
        )

        # Evaluate the spooled trace (mmap) and the raw file (chunk stream):
        # both bounded, both bit-identical to the in-memory reference.
        config = EvaluationConfig(chunk_size=512)
        encoder = make_scheme("baseline")
        mmap_trace = load_trace(spooled)

        def evaluate_stream():
            source = IngestChunkSource(large, chunk_lines=self.QUANTUM)
            return ParallelRunner(1, window=4).map(
                [WorkUnit("k", encoder, source, config)]
            )[0]

        streamed_metrics, eval_peak = self._traced_peak(evaluate_stream)
        assert eval_peak < max(4 * small_peak, trace_bytes // 4)
        mmap_metrics = evaluate_trace(encoder, mmap_trace, config)
        assert streamed_metrics == mmap_metrics
        if large_n <= 200_000:  # full materialisation affordable: close the loop
            in_memory = ingest_trace_file(large, chunk_lines=self.QUANTUM)
            assert evaluate_trace(encoder, in_memory, config) == streamed_metrics
        parallel_metrics = ParallelRunner(4, window=4).map(
            [WorkUnit("k", encoder, mmap_trace, config)]
        )[0]
        assert parallel_metrics == mmap_metrics
