"""Tests of the zero-copy trace transport and its engine integration.

The transport's contract is the engine's contract: whatever moves the chunk
data -- pickling, a shared-memory segment, or an mmap'd corpus file -- the
reduced :class:`WriteMetrics` are bit-identical for every ``n_jobs``.  The
property test at the bottom asserts exactly the ISSUE's acceptance criterion:
mmap-backed and in-memory traces produce identical metrics at ``n_jobs=1``
and ``n_jobs=4``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.core.errors import TraceError
from repro.core.line import LineBatch
from repro.evaluation.parallel import ParallelRunner, WorkUnit
from repro.evaluation.runner import evaluate_trace
from repro.traces.store import load_trace, save_trace
from repro.traces.transport import (
    MmapTraceDescriptor,
    ShmTraceDescriptor,
    TraceExporter,
    attach_trace,
    shared_memory_available,
)
from repro.workloads.generator import generate_benchmark_trace
from repro.workloads.trace import WriteTrace

CONFIG = EvaluationConfig(chunk_size=32)
MC_CONFIG = EvaluationConfig(chunk_size=32, sample_disturbance=True, seed=3)


def _trace(n=64, seed=0):
    rng = np.random.default_rng(seed)
    return WriteTrace(
        old=LineBatch.random(n, rng),
        new=LineBatch.random(n, rng),
        addresses=np.arange(n, dtype=np.uint64) * 64,
        name="transport-unit",
    )


class TestExporter:
    @pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
    def test_shm_roundtrip(self):
        trace = _trace()
        with TraceExporter("shm") as exporter:
            descriptor = exporter.export(trace)
            assert isinstance(descriptor, ShmTraceDescriptor)
            attached = attach_trace(descriptor)
            assert attached.old == trace.old
            assert attached.new == trace.new
            assert np.array_equal(attached.addresses, trace.addresses)

    def test_mmap_descriptor_for_corpus_trace(self, tmp_path):
        trace = load_trace(save_trace(_trace(), tmp_path / "t.wtrc"))
        with TraceExporter("auto") as exporter:
            descriptor = exporter.export(trace)
            assert isinstance(descriptor, MmapTraceDescriptor)
            attached = attach_trace(descriptor)
            assert attached.old == trace.old
            assert attached.new == trace.new

    def test_pickle_policy_exports_nothing(self):
        with TraceExporter("pickle") as exporter:
            assert exporter.export(_trace()) is None

    @pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
    def test_export_is_cached_per_trace_object(self):
        trace = _trace()
        with TraceExporter("shm") as exporter:
            assert exporter.export(trace) is exporter.export(trace)
            assert len(exporter._by_trace) == 1

    def test_sliced_corpus_trace_falls_back(self, tmp_path):
        """A slice no longer matches the file layout, so mmap is refused."""
        trace = load_trace(save_trace(_trace(), tmp_path / "t.wtrc"))
        part = trace[:10]
        with TraceExporter("mmap") as exporter:
            assert not isinstance(exporter.export(part), MmapTraceDescriptor)

    def test_overwritten_corpus_file_gets_fresh_descriptor(self, tmp_path):
        """Same path + same length but new contents must not hit a stale cache."""
        path = tmp_path / "t.wtrc"
        first = load_trace(save_trace(_trace(seed=1), path))
        with TraceExporter("mmap") as exporter:
            d1 = exporter.export(first)
            attach_trace(d1)
        import os

        save_trace(_trace(seed=2), path)
        os.utime(path, ns=(1, 1))  # force a distinct mtime even on coarse clocks
        second = load_trace(path)
        with TraceExporter("mmap") as exporter:
            d2 = exporter.export(second)
            assert d2 != d1  # different descriptor => no stale cache hit
            assert attach_trace(d2).new == second.new

    def test_export_refuses_path_overwritten_after_load(self, tmp_path):
        """A loaded trace whose file was since replaced must not ship its path."""
        import os

        path = tmp_path / "t.wtrc"
        trace = load_trace(save_trace(_trace(seed=1), path))
        save_trace(_trace(seed=2), path)  # same layout, new inode/contents
        os.utime(path, ns=(3, 3))
        with TraceExporter("auto") as exporter:
            descriptor = exporter.export(trace)
            # falls back to shm (or pickling), never an mmap of the new file
            assert not isinstance(descriptor, MmapTraceDescriptor)
            if descriptor is not None:
                assert attach_trace(descriptor).new == trace.new

    def test_attach_rejects_file_overwritten_after_export(self, tmp_path):
        """A same-layout overwrite between export and attach must error."""
        import os

        path = tmp_path / "t.wtrc"
        trace = load_trace(save_trace(_trace(seed=1), path))
        with TraceExporter("mmap") as exporter:
            descriptor = exporter.export(trace)
            save_trace(_trace(seed=2), path)  # same length => same layout
            os.utime(path, ns=(2, 2))
            with pytest.raises(TraceError, match="changed since it was exported"):
                attach_trace(descriptor)

    def test_bad_policy_rejected(self):
        with pytest.raises(TraceError):
            TraceExporter("carrier-pigeon")

    def test_unknown_descriptor_rejected(self):
        with pytest.raises(TraceError):
            attach_trace(object())


class TestEngineTransports:
    """All four transport policies agree with the serial reference."""

    @pytest.mark.parametrize("transport", ["auto", "shm", "mmap", "pickle"])
    def test_in_memory_trace(self, gcc_trace, transport):
        trace = gcc_trace[:128]
        encoder = make_scheme("wlcrc-16")
        reference = evaluate_trace(encoder, trace, CONFIG)
        result = ParallelRunner(4, transport=transport).map(
            [WorkUnit("k", encoder, trace, CONFIG)]
        )[0]
        assert result == reference

    @pytest.mark.parametrize("transport", ["auto", "shm", "mmap", "pickle"])
    def test_corpus_backed_trace(self, gcc_trace, transport, tmp_path):
        trace = load_trace(save_trace(gcc_trace[:128], tmp_path / "t.wtrc"))
        encoder = make_scheme("wlcrc-16")
        reference = evaluate_trace(encoder, gcc_trace[:128], CONFIG)
        result = ParallelRunner(4, transport=transport).map(
            [WorkUnit("k", encoder, trace, CONFIG)]
        )[0]
        assert result == reference

    def test_monte_carlo_streams_survive_transport(self, gcc_trace, tmp_path):
        trace = load_trace(save_trace(gcc_trace[:128], tmp_path / "t.wtrc"))
        encoder = make_scheme("baseline")
        reference = evaluate_trace(encoder, gcc_trace[:128], MC_CONFIG)
        for transport in ("shm", "mmap"):
            result = ParallelRunner(4, transport=transport).map(
                [WorkUnit("k", encoder, trace, MC_CONFIG)]
            )[0]
            assert result == reference, transport


class TestInlineShortCircuit:
    def test_single_shard_unit_skips_export(self, gcc_trace):
        """One-chunk work runs inline; no shm copy or parent attachment."""
        import repro.traces.transport as transport_module

        before = len(transport_module._ATTACHED)
        runner = ParallelRunner(4, transport="shm")
        trace = gcc_trace[:16]  # a single chunk under CONFIG
        reference = evaluate_trace(make_scheme("baseline"), trace, CONFIG)
        result = runner.map([WorkUnit("k", make_scheme("baseline"), trace, CONFIG)])[0]
        assert result == reference
        assert len(transport_module._ATTACHED) == before


class TestPersistentPool:
    def test_persistent_runner_reuses_exports(self, gcc_trace):
        """Repeated run() calls over the same trace share one shm segment."""
        encoder = make_scheme("baseline")
        trace = gcc_trace[:128]
        units = [WorkUnit("k", encoder, trace, CONFIG)]
        with ParallelRunner(2, transport="shm") as runner:
            first = runner.run(units)["k"]
            assert len(runner._exporter._by_trace) == 1
            descriptor = runner._exporter.export(trace)
            second = runner.run(units)["k"]
            # no re-export: same cached descriptor, still exactly one entry
            assert runner._exporter.export(trace) is descriptor
            assert len(runner._exporter._by_trace) == 1
            assert first == second
        assert runner._exporter is None  # released on close

    def test_persistent_runner_prunes_stale_exports(self, gcc_trace, libq_trace):
        """Looping over ever-new traces must not pin old shm segments."""
        encoder = make_scheme("baseline")
        with ParallelRunner(2, transport="shm") as runner:
            runner.run([WorkUnit("k", encoder, gcc_trace[:128], CONFIG)])
            runner.run([WorkUnit("k", encoder, libq_trace[:128], CONFIG)])
            # only the latest run's trace remains exported
            assert len(runner._exporter._by_trace) == 1
            (kept,) = [t for t, _, _ in runner._exporter._by_trace.values()]
            assert kept.new == libq_trace[:128].new

    def test_broken_pool_self_heals(self, gcc_trace):
        """A dead pool is rebuilt mid-run and the lost work resubmitted."""
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        class _BrokenExecutor:
            def submit(self, *args, **kwargs):
                future = Future()
                future.set_exception(BrokenProcessPool("worker died"))
                return future

            def shutdown(self, *args, **kwargs):
                pass

        encoder = make_scheme("baseline")
        units = [WorkUnit("k", encoder, gcc_trace[:128], CONFIG)]
        runner = ParallelRunner(2, persistent=True, retry_backoff_s=0.001)
        broken = _BrokenExecutor()
        runner._executor = broken
        reference = evaluate_trace(encoder, gcc_trace[:128], CONFIG)
        # The run completes despite starting on a dead pool: the engine
        # discards it, builds a fresh one and resubmits the lost shards.
        assert runner.run(units)["k"] == reference
        assert runner._executor is not broken  # broken pool discarded
        assert runner.run(units)["k"] == reference  # still healthy after
        runner.close()

    def test_pool_survives_across_runs(self, gcc_trace):
        encoder = make_scheme("baseline")
        units = [WorkUnit("k", encoder, gcc_trace[:96], CONFIG)]
        with ParallelRunner(2) as runner:
            first = runner.run(units)["k"]
            executor = runner._executor
            assert executor is not None
            second = runner.run(units)["k"]
            assert runner._executor is executor
            assert first == second
        assert runner._executor is None  # closed on exit

    def test_runner_reverts_to_one_shot_after_with_block(self, gcc_trace):
        runner = ParallelRunner(2)
        units = [WorkUnit("k", make_scheme("baseline"), gcc_trace[:96], CONFIG)]
        with runner:
            runner.run(units)
        assert runner.persistent is False
        runner.run(units)  # one-shot again: nothing left running
        assert runner._executor is None
        assert runner._exporter is None

    def test_nested_with_blocks_are_depth_counted(self, gcc_trace):
        runner = ParallelRunner(2)
        units = [WorkUnit("k", make_scheme("baseline"), gcc_trace[:96], CONFIG)]
        with runner:
            with runner:
                runner.run(units)
            # inner exit must not tear the pool down mid-outer-block
            assert runner.persistent is True
            assert runner._executor is not None
        assert runner.persistent is False
        assert runner._executor is None

    def test_one_shot_runner_keeps_teardown_semantics(self, gcc_trace):
        runner = ParallelRunner(2)
        runner.run([WorkUnit("k", make_scheme("baseline"), gcc_trace[:96], CONFIG)])
        assert runner._executor is None

    def test_close_is_idempotent(self):
        runner = ParallelRunner(2, persistent=True)
        runner.close()
        runner.close()


class TestBitIdenticalProperty:
    """Acceptance: mmap-backed == in-memory, at n_jobs=1 and n_jobs=4."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        length=st.integers(min_value=1, max_value=96),
        scheme=st.sampled_from(["baseline", "wlcrc-16", "6cosets"]),
    )
    def test_mmap_and_memory_agree_for_all_n_jobs(self, tmp_path_factory, seed, length, scheme):
        tmp_path = tmp_path_factory.mktemp("prop")
        in_memory = generate_benchmark_trace("gcc", length, seed)
        mmap_backed = load_trace(save_trace(in_memory, tmp_path / "t.wtrc"))
        encoder = make_scheme(scheme)
        results = [
            ParallelRunner(n_jobs).map([WorkUnit("k", encoder, trace, CONFIG)])[0]
            for n_jobs in (1, 4)
            for trace in (in_memory, mmap_backed)
        ]
        assert all(result == results[0] for result in results[1:])
