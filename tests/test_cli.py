"""Tests of the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main
from repro.evaluation import experiments

#: The checked-in ramulator2-format sample trace (README's ingest example).
SAMPLE_TRACE = Path(__file__).resolve().parent / "data" / "sample_ramulator2.trace"


@pytest.fixture(autouse=True)
def _clear_cache():
    experiments.clear_cache()
    yield
    experiments.clear_cache()


class TestListCommand:
    def test_list_prints_experiments_and_schemes(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure8" in output
        assert "wlcrc-16" in output

    def test_every_registered_experiment_is_listed(self, capsys):
        main(["list"])
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output


class TestEvaluateCommand:
    def test_evaluate_text_output(self, capsys):
        code = main(["evaluate", "--scheme", "wlcrc-16", "--benchmark", "libq", "--trace-length", "80"])
        assert code == 0
        output = capsys.readouterr().out
        assert "wlcrc-16" in output
        assert "avg_energy_pj" in output

    def test_evaluate_json_output(self, capsys):
        main(["evaluate", "--scheme", "baseline", "--benchmark", "gcc",
              "--trace-length", "60", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "baseline" in payload
        assert payload["baseline"]["requests"] == 60


class TestExperimentCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "C1" in output and "S4" in output

    def test_hardware_table(self, capsys):
        assert main(["hardware", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "16" in payload

    def test_run_subcommand_equivalent(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "C1" in capsys.readouterr().out

    def test_small_figure_run(self, capsys):
        assert main(["figure4", "--trace-length", "40", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ave." in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])


class TestFriendlyErrors:
    """Unknown names exit 2 with a 'did you mean' hint, not a traceback."""

    def test_unknown_scheme(self, capsys):
        assert main(["evaluate", "--scheme", "wlrc-16", "--trace-length", "40"]) == 2
        err = capsys.readouterr().err
        assert "wlrc-16" in err
        assert "did you mean" in err
        assert "wlcrc-16" in err

    def test_unknown_benchmark(self, capsys):
        assert main(["evaluate", "--benchmark", "gccc", "--trace-length", "40"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "gcc" in err

    def test_bad_trace_path(self, capsys, tmp_path):
        missing = tmp_path / "nope.wtrc"
        assert main(["evaluate", "--trace", str(missing)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_trace_path_suggests_neighbours(self, capsys, tmp_path):
        from repro.workloads.generator import generate_benchmark_trace

        generate_benchmark_trace("gcc", 8, 1).save(tmp_path / "gcc.wtrc")
        assert main(["evaluate", "--trace", str(tmp_path / "gcc2.wtrc")]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "gcc.wtrc" in err

    def test_trace_gen_unknown_benchmark(self, capsys, tmp_path):
        code = main(["trace", "gen", "--benchmark", "gc", "--out", str(tmp_path / "t.wtrc")])
        assert code == 2
        assert "did you mean" in capsys.readouterr().err

    def test_trace_path_pointing_at_directory(self, capsys, tmp_path):
        assert main(["evaluate", "--trace", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_trace_file(self, capsys, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"definitely not an archive")
        assert main(["evaluate", "--trace", str(junk)]) == 2
        assert "not a write-trace file" in capsys.readouterr().err

    def test_trace_dir_pointing_at_file(self, capsys, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        assert main(["evaluate", "--scheme", "baseline", "--trace-length", "40",
                     "--trace-dir", str(not_a_dir)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["figure4", "--trace-length", "40",
                     "--trace-dir", str(not_a_dir)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_negative_numeric_arguments_rejected(self, tmp_path):
        for argv in (
            ["trace", "gen", "--benchmark", "gcc", "--length", "-5",
             "--out", str(tmp_path / "t.wtrc")],
            ["trace", "convert", str(SAMPLE_TRACE), "--seed", "-5",
             "--out", str(tmp_path / "t.wtrc")],
            ["evaluate", "--trace-length", "-5"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2

    def test_trace_gen_invalid_corpus_name(self, capsys, tmp_path):
        code = main(["trace", "gen", "--benchmark", "gcc", "--length", "10",
                     "--corpus", str(tmp_path / "corpus"), "--name", "a/b"])
        assert code == 2
        assert "invalid corpus trace name" in capsys.readouterr().err


class TestTraceCommands:
    def test_gen_to_file_and_info(self, capsys, tmp_path):
        out = tmp_path / "gcc.wtrc"
        assert main(["trace", "gen", "--benchmark", "gcc", "--length", "50", "--out", str(out)]) == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["trace", "info", str(out), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["requests"] == 50
        assert info["memory_mapped"] is True
        assert "changed_bit_fraction" not in info  # header-only by default
        assert main(["trace", "info", str(out), "--stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert 0.0 < stats["changed_bit_fraction"] < 1.0

    def test_gen_requires_an_output(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "gen", "--benchmark", "gcc", "--length", "10"])
        assert excinfo.value.code == 2
        assert "--out" in capsys.readouterr().err

    def test_out_and_corpus_are_exclusive(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "gen", "--benchmark", "gcc", "--length", "10",
                  "--out", str(tmp_path / "t.wtrc"), "--corpus", str(tmp_path / "c")])
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err

    def test_gen_into_corpus_and_ls(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        assert main(["trace", "gen", "--benchmark", "libq", "--length", "30",
                     "--corpus", str(corpus), "--name", "mylibq"]) == 0
        capsys.readouterr()
        assert main(["trace", "ls", str(corpus), "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["mylibq"]["n_lines"] == 30
        assert listing["mylibq"]["profile"] == "libq"

    def test_ls_rejects_non_corpus(self, capsys, tmp_path):
        assert main(["trace", "ls", str(tmp_path)]) == 2
        assert "not a trace corpus" in capsys.readouterr().err

    def test_convert_sample_and_evaluate(self, capsys, tmp_path):
        """Acceptance: convert the checked-in ramulator2 sample, then evaluate."""
        corpus = tmp_path / "corpus"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--corpus", str(corpus),
                     "--name", "sample"]) == 0
        capsys.readouterr()
        trace_file = corpus / "sample.wtrc"
        assert trace_file.exists()
        assert main(["evaluate", "--scheme", "wlcrc-16", "--trace", str(trace_file),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["wlcrc-16"]["requests"] == 992  # keyed by scheme

    def test_convert_evaluate_parallel_matches_serial(self, capsys, tmp_path):
        out = tmp_path / "sample.wtrc"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--scheme", "baseline", "--trace", str(out), "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["evaluate", "--scheme", "baseline", "--trace", str(out),
                     "--jobs", "4", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel

    def test_convert_bad_input(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("hello world\n")
        assert main(["trace", "convert", str(bad), "--out", str(tmp_path / "o.wtrc")]) == 2
        assert "cannot detect" in capsys.readouterr().err

    def test_convert_streams_byte_identically(self, capsys, tmp_path):
        """The streamed .wtrc convert path equals the in-memory ingest+save."""
        from repro.traces import ingest_trace_file, save_trace

        out = tmp_path / "streamed.wtrc"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--out", str(out)]) == 0
        reference = save_trace(ingest_trace_file(SAMPLE_TRACE), tmp_path / "ref.wtrc")
        assert out.read_bytes() == reference.read_bytes()

    def test_convert_npz_streams_load_equivalently(self, capsys, tmp_path):
        """The streamed .npz convert path loads equal to in-memory ingest+save."""
        import numpy as np

        from repro.traces import ingest_trace_file
        from repro.workloads import WriteTrace

        out = tmp_path / "streamed.npz"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--out", str(out)]) == 0
        assert "wrote 992 write requests" in capsys.readouterr().out
        reference = ingest_trace_file(SAMPLE_TRACE)
        loaded = WriteTrace.load(out)
        assert np.array_equal(loaded.old.words, reference.old.words)
        assert np.array_equal(loaded.new.words, reference.new.words)
        assert np.array_equal(loaded.addresses, reference.addresses)
        assert loaded.name == reference.name
        assert loaded.metadata == reference.metadata

    def test_convert_npz_appends_suffix(self, capsys, tmp_path):
        out = tmp_path / "plain"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--out", str(out)]) == 0
        assert (tmp_path / "plain.npz").exists()

    def test_evaluate_thread_backend_matches_process(self, capsys, tmp_path):
        out = tmp_path / "sample.wtrc"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--scheme", "wlcrc-16", "--trace", str(out),
                     "--jobs", "3", "--backend", "thread", "--json"]) == 0
        threaded = json.loads(capsys.readouterr().out)
        assert main(["evaluate", "--scheme", "wlcrc-16", "--trace", str(out),
                     "--jobs", "3", "--backend", "process", "--json"]) == 0
        process = json.loads(capsys.readouterr().out)
        assert threaded == process

    def test_convert_ramulator_inst_dialect(self, capsys, tmp_path):
        src = tmp_path / "cpu.trace"
        src.write_text("2 4096\n0 4096 8192\n1 64 0x2040\n")
        out = tmp_path / "cpu.wtrc"
        assert main(["trace", "convert", str(src), "--out", str(out)]) == 0
        assert "wrote 2 write requests" in capsys.readouterr().out

    def test_evaluate_ascii_trace_streams(self, capsys, tmp_path):
        """evaluate --trace on a raw ASCII file == convert-then-evaluate."""
        out = tmp_path / "sample.wtrc"
        assert main(["trace", "convert", str(SAMPLE_TRACE), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--scheme", "baseline", "--trace", str(out), "--json"]) == 0
        converted = json.loads(capsys.readouterr().out)
        assert main(["evaluate", "--scheme", "baseline", "--trace", str(SAMPLE_TRACE),
                     "--json"]) == 0
        direct = json.loads(capsys.readouterr().out)
        assert converted == direct
        assert main(["evaluate", "--scheme", "baseline", "--trace", str(SAMPLE_TRACE),
                     "--jobs", "4", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == direct

    def test_evaluate_ascii_trace_unknown_profile(self, capsys):
        assert main(
            ["evaluate", "--trace", str(SAMPLE_TRACE), "--content-profile", "nope"]
        ) == 2
        assert "unknown profile" in capsys.readouterr().err


class TestTraceGC:
    def _populate(self, tmp_path, benchmarks=("gcc", "lbm")):
        corpus = tmp_path / "corpus"
        for bench in benchmarks:
            assert main(["evaluate", "--scheme", "baseline", "--benchmark", bench,
                         "--trace-length", "60", "--trace-dir", str(corpus)]) == 0
        return corpus

    def test_gc_evicts_to_budget(self, capsys, tmp_path):
        corpus = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["trace", "gc", str(corpus), "--max-bytes", "0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["removed"]) == 2
        assert not list((corpus / "cache").glob("*.wtrc"))

    def test_gc_dry_run(self, capsys, tmp_path):
        corpus = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["trace", "gc", str(corpus), "--max-bytes", "0", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict" in out
        assert len(list((corpus / "cache").glob("*.wtrc"))) == 2

    def test_gc_size_suffixes(self, capsys, tmp_path):
        corpus = self._populate(tmp_path, benchmarks=("gcc",))
        capsys.readouterr()
        assert main(["trace", "gc", str(corpus), "--max-bytes", "1G"]) == 0
        assert "within budget" in capsys.readouterr().out

    def test_gc_missing_corpus(self, capsys, tmp_path):
        assert main(["trace", "gc", str(tmp_path / "nope"), "--max-bytes", "1M"]) == 2
        assert "not a trace corpus" in capsys.readouterr().err

    def test_non_finite_sizes_rejected_cleanly(self, tmp_path):
        for size in ("inf", "nan", "1e400", "-1"):
            with pytest.raises(SystemExit) as excinfo:
                main(["trace", "gc", str(tmp_path), "--max-bytes", size])
            assert excinfo.value.code == 2

    def test_trace_cache_budget_flag_bounds_cache(self, tmp_path):
        corpus = tmp_path / "corpus"
        for bench in ("gcc", "lbm", "mcf"):
            assert main(["evaluate", "--scheme", "baseline", "--benchmark", bench,
                         "--trace-length", "60", "--trace-dir", str(corpus),
                         "--trace-cache-budget", "40K"]) == 0
        total = sum(p.stat().st_size for p in (corpus / "cache").glob("*.wtrc"))
        assert total <= 40 * 1024


class TestCorpusBackedExperiments:
    def test_trace_dir_caches_and_reproduces(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        assert main(["evaluate", "--scheme", "baseline", "--benchmark", "gcc",
                     "--trace-length", "60", "--trace-dir", str(corpus), "--json"]) == 0
        corpus_run = json.loads(capsys.readouterr().out)
        assert (corpus / "cache").exists()
        assert main(["evaluate", "--scheme", "baseline", "--benchmark", "gcc",
                     "--trace-length", "60", "--json"]) == 0
        memory_run = json.loads(capsys.readouterr().out)
        assert corpus_run == memory_run


class TestBenchCommands:
    """CLI surface of the benchmark-orchestration subsystem.

    The heavy lifting (partitioning, byte-identity, gating) is covered in
    tests/bench/; these tests drive the argparse layer end-to-end on a tiny
    fixture suite.
    """

    FIXTURE = (
        "from repro.bench import BenchSpec, run_once, write_result\n"
        "BENCHMARK = BenchSpec(figure='mini', title='Mini', cost=1.0,\n"
        "                      artifacts=('mini.txt',))\n"
        "def bench_mini(benchmark):\n"
        "    write_result('mini', run_once(benchmark, lambda: 'mini-table'))\n"
    )

    def _suite(self, tmp_path):
        directory = tmp_path / "suite"
        directory.mkdir()
        (directory / "bench_mini.py").write_text(self.FIXTURE)
        return directory

    def test_bench_ls_lists_real_registry(self, capsys):
        assert main(["bench", "ls"]) == 0
        out = capsys.readouterr().out
        assert "fig08_write_energy" in out
        assert "streaming_ingest" in out

    def test_bench_ls_json_shard_assignment(self, capsys, tmp_path):
        suite = self._suite(tmp_path)
        assert main(["bench", "ls", "--bench-dir", str(suite), "--shards", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mini"]["figure"] == "mini"
        assert payload["mini"]["shard"] in (1, 2)

    def test_bench_run_merge_compare_roundtrip(self, capsys, tmp_path):
        suite = self._suite(tmp_path)
        results = tmp_path / "results"
        assert main(["bench", "run", "--bench-dir", str(suite),
                     "--results", str(results),
                     "--trajectory-dir", str(tmp_path / "traj")]) == 0
        assert (results / "mini.txt").read_text() == "mini-table\n"
        assert (results / "BENCH_manifest.json").is_file()
        assert (tmp_path / "traj" / "BENCH_manifest.json").is_file()
        capsys.readouterr()
        merged = tmp_path / "merged"
        assert main(["bench", "merge", str(results), "--bench-dir", str(suite),
                     "--out", str(merged), "--no-trajectory"]) == 0
        assert (merged / "BENCH_manifest.json").read_bytes() == (
            results / "BENCH_manifest.json"
        ).read_bytes()
        capsys.readouterr()
        # No gates registered: compare passes and says so.
        assert main(["bench", "compare", "--bench-dir", str(suite),
                     "--results", str(merged),
                     "--baselines", str(tmp_path / "baselines")]) == 0
        assert "no perf gates" in capsys.readouterr().out

    def test_bench_run_bad_shard_selector(self, capsys, tmp_path):
        suite = self._suite(tmp_path)
        assert main(["bench", "run", "--bench-dir", str(suite),
                     "--shard", "5/2"]) == 2
        assert "invalid shard selector" in capsys.readouterr().err

    def test_bench_run_failure_exits_one(self, capsys, tmp_path):
        suite = tmp_path / "boom"
        suite.mkdir()
        (suite / "bench_boom.py").write_text(
            "from repro.bench import BenchSpec\n"
            "BENCHMARK = BenchSpec(figure='boom', title='boom', cost=1.0)\n"
            "def bench_boom(benchmark):\n"
            "    raise RuntimeError('kaboom')\n"
        )
        assert main(["bench", "run", "--bench-dir", str(suite),
                     "--results", str(tmp_path / "results")]) == 1
        assert "kaboom" in capsys.readouterr().err

    def test_bench_merge_missing_dir(self, capsys, tmp_path):
        suite = self._suite(tmp_path)
        assert main(["bench", "merge", str(tmp_path / "nope"),
                     "--bench-dir", str(suite),
                     "--out", str(tmp_path / "merged")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bench_unknown_dir(self, capsys):
        assert main(["bench", "ls", "--bench-dir", "/no/such/dir"]) == 2
        assert "benchmark directory" in capsys.readouterr().err


class TestObservability:
    """--profile / --trace-out plumbing and the `profile` subcommand."""

    def _evaluate(self, extra):
        return main(
            ["evaluate", "--scheme", "baseline", "--benchmark", "gcc",
             "--trace-length", "64", "--json", *extra]
        )

    def test_profile_flag_prints_summary_to_stderr(self, capsys):
        assert self._evaluate(["--profile"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays pure JSON
        assert "Span summary" in captured.err
        assert "evaluate_shard" in captured.err

    def test_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "eval.trace.json"
        assert self._evaluate(["--trace-out", str(out)]) == 0
        document = json.loads(out.read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert events, "trace must contain complete events"
        assert {"evaluate-baseline", "parallel_map"} <= {e["name"] for e in events}

    def test_trace_out_jsonl_suffix_selects_span_log(self, capsys, tmp_path):
        out = tmp_path / "eval.trace.jsonl"
        assert self._evaluate(["--trace-out", str(out)]) == 0
        first = json.loads(out.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_observability_off_is_output_identical(self, capsys, tmp_path):
        assert self._evaluate([]) == 0
        plain = capsys.readouterr()
        assert self._evaluate(["--trace-out", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr()
        assert json.loads(traced.out) == json.loads(plain.out)

    def test_profile_command_reads_both_formats(self, capsys, tmp_path):
        chrome = tmp_path / "eval.trace.json"
        jsonl = tmp_path / "eval.trace.jsonl"
        assert self._evaluate(["--trace-out", str(chrome)]) == 0
        assert self._evaluate(["--trace-out", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["profile", str(chrome)]) == 0
        assert "Span summary" in capsys.readouterr().out
        assert main(["profile", str(jsonl), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "parallel_map" in summary["spans"]
        assert summary["metrics"]["lines_encoded{scheme=baseline}"] == 64

    def test_profile_command_missing_file(self, capsys, tmp_path):
        assert main(["profile", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_profile_command_unparseable_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace.json"
        bad.write_text("not json")
        assert main(["profile", str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_bench_run_profile_emits_trace_artifacts(self, capsys, tmp_path):
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "bench_mini.py").write_text(TestBenchCommands.FIXTURE)
        results = tmp_path / "results"
        assert main(["bench", "run", "--bench-dir", str(suite),
                     "--results", str(results), "--profile", "--json",
                     "--no-trajectory"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == str(results / "BENCH_shard_1of1.trace.jsonl")
        assert "bench_function" in payload["profile"]["spans"]

    def test_bench_compare_diagnostics_go_to_stderr(self, capsys, tmp_path):
        """Gate failure: exit 1, table on stdout, diagnostics on stderr only."""
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "bench_gated.py").write_text(
            "from repro.bench import BenchSpec, Gate, write_json\n"
            "BENCHMARK = BenchSpec(figure='gated', title='Gated', cost=1.0,\n"
            "    perf_artifacts=('BENCH_gated.json',),\n"
            "    gates=(Gate(artifact='BENCH_gated.json', metric='speed',\n"
            "                direction='higher', tolerance_pct=10.0),))\n"
            "def bench_gated(benchmark):\n"
            "    write_json('gated', {'speed': 100.0})\n"
        )
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        assert main(["bench", "run", "--bench-dir", str(suite),
                     "--results", str(results), "--no-trajectory"]) == 0
        assert main(["bench", "compare", "--bench-dir", str(suite),
                     "--results", str(results), "--baselines", str(baselines),
                     "--update"]) == 0
        # fake a regression: halve the recorded metric
        gated = results / "BENCH_gated.json"
        payload = json.loads(gated.read_text())
        payload["speed"] = 10.0
        gated.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["--log-level", "error", "bench", "compare",
                     "--bench-dir", str(suite), "--results", str(results),
                     "--baselines", str(baselines)]) == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out  # status column in the table
        assert "FAILED" not in captured.out  # diagnostics never on stdout


class TestServeSubmitDocs:
    """CLI surface of the serving and docs subsystems.

    The protocol itself is covered in tests/serve/; these tests drive the
    argparse layer, the subprocess server lifecycle and the docs commands.
    """

    REPO = Path(__file__).resolve().parents[1]

    def test_serve_submit_round_trip(self, tmp_path):
        """A real server subprocess: submit twice, second answer cached."""
        import os
        import subprocess
        import sys

        env = {**os.environ, "PYTHONPATH": str(self.REPO / "src")}
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--results-dir", str(tmp_path / "store")],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True, cwd=str(tmp_path),
        )
        try:
            url = server.stdout.readline().strip()
            assert url.startswith("http://127.0.0.1:")
            from repro.serve.service import submit_request

            request = ["submit", "--url", url, "--scheme", "wlcrc-16",
                       "--benchmark", "gcc", "--trace-length", "120", "--json"]
            # Drive the real client main() in-process against the subprocess.
            import contextlib
            import io

            def run(argv):
                out = io.StringIO()
                with contextlib.redirect_stdout(out):
                    assert main(argv) == 0
                return json.loads(out.getvalue())

            first = run(request)
            second = run(request)
            assert first["cached"] is False
            assert second["cached"] is True
            assert second["metrics"] == first["metrics"]
            status, health = submit_request(url, "/healthz")
            assert (status, health["status"]) == (200, "ok")
        finally:
            server.terminate()
            server.wait(timeout=30)

    def test_submit_unreachable_server(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:9",
                     "--timeout", "2"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_rejects_non_wtrc_upload(self, capsys, tmp_path):
        trace = tmp_path / "x.trace"
        trace.write_text("W 0x0 64\n")
        assert main(["submit", "--trace", str(trace)]) == 2
        assert ".wtrc" in capsys.readouterr().err

    def test_evaluate_results_dir_memoises(self, capsys, tmp_path):
        store = tmp_path / "store"
        argv = ["evaluate", "--scheme", "wlcrc-16", "--benchmark", "gcc",
                "--trace-length", "80", "--results-dir", str(store), "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (store / "results").is_dir() and any((store / "results").iterdir())
        experiments.clear_cache()
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_docs_cli_prints_and_checks(self, capsys, tmp_path):
        assert main(["docs", "cli", "--docs-dir", str(tmp_path)]) == 0
        reference = capsys.readouterr().out
        assert reference.startswith("# CLI reference")
        assert main(["docs", "cli", "--write", "--docs-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "cli.md").read_text() == reference
        assert main(["docs", "cli", "--check", "--docs-dir", str(tmp_path)]) == 0
        (tmp_path / "cli.md").write_text("stale\n")
        capsys.readouterr()
        assert main(["docs", "cli", "--check", "--docs-dir", str(tmp_path)]) == 2
        assert "stale" in capsys.readouterr().err

    def test_docs_check_repo_tree_is_clean(self, capsys):
        assert main(["docs", "check", "--docs-dir", str(self.REPO / "docs")]) == 0
        assert "docs ok" in capsys.readouterr().out

    def test_docs_check_reports_broken_links(self, capsys, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "page.md").write_text("[gone](missing.md)\n")
        assert main(["docs", "check", "--docs-dir", str(docs)]) == 1
        err = capsys.readouterr().err
        assert "missing.md" in err
        assert "cli.md" in err  # missing generated reference also reported
