"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.evaluation import experiments


@pytest.fixture(autouse=True)
def _clear_cache():
    experiments.clear_cache()
    yield
    experiments.clear_cache()


class TestListCommand:
    def test_list_prints_experiments_and_schemes(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure8" in output
        assert "wlcrc-16" in output

    def test_every_registered_experiment_is_listed(self, capsys):
        main(["list"])
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output


class TestEvaluateCommand:
    def test_evaluate_text_output(self, capsys):
        code = main(["evaluate", "--scheme", "wlcrc-16", "--benchmark", "libq", "--trace-length", "80"])
        assert code == 0
        output = capsys.readouterr().out
        assert "wlcrc-16" in output
        assert "avg_energy_pj" in output

    def test_evaluate_json_output(self, capsys):
        main(["evaluate", "--scheme", "baseline", "--benchmark", "gcc",
              "--trace-length", "60", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "baseline" in payload
        assert payload["baseline"]["requests"] == 60


class TestExperimentCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "C1" in output and "S4" in output

    def test_hardware_table(self, capsys):
        assert main(["hardware", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "16" in payload

    def test_run_subcommand_equivalent(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "C1" in capsys.readouterr().out

    def test_small_figure_run(self, capsys):
        assert main(["figure4", "--trace-length", "40", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ave." in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])
