"""Tests of the 2-error-correcting BCH code used by DIN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import BCHCode


@pytest.fixture(scope="module")
def code():
    return BCHCode(m=10, t=2, data_bits=492)


class TestStructure:
    def test_parity_width_is_20_bits(self, code):
        assert code.parity_bits == 20
        assert code.codeword_bits == 512

    def test_data_bits_bound(self):
        with pytest.raises(ValueError):
            BCHCode(m=10, t=2, data_bits=1020)

    def test_smaller_field(self):
        small = BCHCode(m=6, t=2, data_bits=20)
        assert small.parity_bits == 12
        assert small.codeword_bits == 32


class TestEncoding:
    def test_encode_shape(self, code, rng):
        data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
        codeword = code.encode(data)
        assert codeword.shape[0] == code.codeword_bits
        assert np.array_equal(codeword[code.parity_bits:], data)

    def test_parity_rejects_wrong_length(self, code):
        with pytest.raises(ValueError):
            code.parity(np.zeros(10, dtype=np.uint8))

    def test_codeword_has_zero_syndromes(self, code, rng):
        data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
        codeword = code.encode(data)
        assert all(s == 0 for s in code.syndromes(codeword))

    def test_zero_data_gives_zero_parity(self, code):
        assert code.parity(np.zeros(code.data_bits, dtype=np.uint8)).sum() == 0


class TestDecoding:
    def test_no_error(self, code, rng):
        data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
        codeword = code.encode(data)
        result = code.decode(codeword)
        assert result.success and result.error_positions == ()

    @pytest.mark.parametrize("position", [0, 19, 20, 255, 511])
    def test_single_error_corrected(self, code, rng, position):
        data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
        codeword = code.encode(data)
        corrupted = codeword.copy()
        corrupted[position] ^= 1
        result = code.decode(corrupted)
        assert result.success
        assert np.array_equal(result.corrected, codeword)
        assert result.error_positions == (position,)

    @pytest.mark.parametrize("positions", [(3, 400), (0, 511), (100, 101), (21, 22)])
    def test_double_error_corrected(self, code, rng, positions):
        data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
        codeword = code.encode(data)
        corrupted = codeword.copy()
        for position in positions:
            corrupted[position] ^= 1
        result = code.decode(corrupted)
        assert result.success
        assert np.array_equal(result.corrected, codeword)
        assert set(result.error_positions) == set(positions)

    def test_wrong_length_rejected(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(100, dtype=np.uint8))

    def test_triple_error_not_silently_accepted(self, code, rng):
        """Three errors exceed t=2: decoding must not claim a clean success
        that still differs from the transmitted codeword in unknown ways."""
        data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
        codeword = code.encode(data)
        corrupted = codeword.copy()
        for position in (5, 200, 410):
            corrupted[position] ^= 1
        result = code.decode(corrupted)
        # Either the decoder flags failure, or it "corrects" to some other valid
        # codeword; it must never return success while leaving syndromes non-zero.
        if result.success:
            assert all(s == 0 for s in code.syndromes(result.corrected))


@given(st.integers(min_value=0, max_value=491), st.integers(min_value=0, max_value=491))
@settings(max_examples=15, deadline=None)
def test_two_error_correction_property(p1, p2):
    """Property: any pair of distinct error positions in the data is corrected."""
    code = BCHCode(m=10, t=2, data_bits=492)
    data = np.zeros(code.data_bits, dtype=np.uint8)
    data[::7] = 1
    codeword = code.encode(data)
    corrupted = codeword.copy()
    corrupted[code.parity_bits + p1] ^= 1
    corrupted[code.parity_bits + p2] ^= 1
    result = code.decode(corrupted)
    assert result.success
    assert np.array_equal(result.corrected, codeword)
