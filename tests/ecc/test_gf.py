"""Tests of the GF(2^m) arithmetic used by the BCH code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import DEFAULT_PRIMITIVE_POLYS, GaloisField


@pytest.fixture(scope="module")
def gf16():
    return GaloisField(4)


@pytest.fixture(scope="module")
def gf1024():
    return GaloisField(10)


class TestConstruction:
    def test_sizes(self, gf16, gf1024):
        assert gf16.size == 16 and gf16.order == 15
        assert gf1024.size == 1024 and gf1024.order == 1023

    def test_default_polys_available(self):
        for m in (3, 4, 8, 10):
            assert m in DEFAULT_PRIMITIVE_POLYS
            GaloisField(m)

    def test_rejects_missing_degree(self):
        with pytest.raises(ValueError):
            GaloisField(7)

    def test_rejects_non_primitive_polynomial(self):
        # x^4 + 1 is not primitive (not even irreducible).
        with pytest.raises(ValueError):
            GaloisField(4, primitive_poly=0b10001)

    def test_rejects_tiny_degree(self):
        with pytest.raises(ValueError):
            GaloisField(1)


class TestArithmetic:
    def test_multiplicative_identity(self, gf16):
        for a in range(16):
            assert gf16.multiply(a, 1) == a

    def test_zero_annihilates(self, gf16):
        for a in range(16):
            assert gf16.multiply(a, 0) == 0

    def test_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.multiply(a, gf16.inverse(a)) == 1

    def test_inverse_of_zero_raises(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inverse(0)

    def test_alpha_powers_cycle(self, gf16):
        assert gf16.alpha_power(0) == 1
        assert gf16.alpha_power(gf16.order) == 1

    def test_log_exp_consistency(self, gf1024):
        for value in (1, 2, 5, 123, 1000):
            assert gf1024.alpha_power(gf1024.log(value)) == value

    def test_power(self, gf16):
        a = 7
        assert gf16.power(a, 0) == 1
        assert gf16.power(a, 3) == gf16.multiply(gf16.multiply(a, a), a)
        assert gf16.power(0, 5) == 0


class TestPolynomials:
    def test_poly_evaluate_constant(self, gf16):
        assert gf16.poly_evaluate([7], 3) == 7

    def test_poly_multiply_degree(self, gf16):
        p = [1, 1]       # x + 1
        q = [2, 0, 1]    # x^2 + 2
        product = gf16.poly_multiply(p, q)
        assert len(product) == 4

    def test_minimal_polynomial_annihilates_element(self, gf1024):
        for exponent in (1, 3, 5):
            mask = gf1024.minimal_polynomial(exponent)
            coefficients = [(mask >> i) & 1 for i in range(mask.bit_length())]
            assert gf1024.poly_evaluate(coefficients, gf1024.alpha_power(exponent)) == 0

    def test_minimal_polynomial_of_alpha_has_field_degree(self, gf1024):
        mask = gf1024.minimal_polynomial(1)
        assert mask.bit_length() - 1 == 10


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15))
@settings(max_examples=60, deadline=None)
def test_field_axioms(a, b, c):
    """Commutativity, associativity and distributivity over GF(16)."""
    gf = GaloisField(4)
    assert gf.multiply(a, b) == gf.multiply(b, a)
    assert gf.multiply(a, gf.multiply(b, c)) == gf.multiply(gf.multiply(a, b), c)
    assert gf.multiply(a, gf.add(b, c)) == gf.add(gf.multiply(a, b), gf.multiply(a, c))
