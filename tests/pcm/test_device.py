"""Tests of the multi-bank PCM device."""
import pytest

from repro.coding import make_scheme
from repro.core.config import PCMOrganization
from repro.core.errors import SimulationError
from repro.pcm.device import PCMDevice


@pytest.fixture()
def device():
    return PCMDevice(make_scheme("baseline"), rows_per_bank=16)


class TestAddressDecoding:
    def test_decode_is_a_bijection_over_banks(self, device):
        seen = set()
        for address in range(device.organization.total_banks):
            decoded = device.decode_address(address)
            seen.add(decoded.flat_bank)
        assert len(seen) == device.organization.total_banks

    def test_channel_interleaving(self, device):
        a = device.decode_address(0)
        b = device.decode_address(1)
        assert a.channel != b.channel

    def test_negative_address_rejected(self, device):
        with pytest.raises(SimulationError):
            device.decode_address(-1)


class TestReadWrite:
    def test_write_read_roundtrip(self, device, biased_lines):
        device.write(1234, biased_lines[0])
        assert device.read(1234) == biased_lines[0]

    def test_distinct_addresses_do_not_interfere(self, device, biased_lines):
        device.write(10, biased_lines[0])
        device.write(11, biased_lines[1])
        assert device.read(10) == biased_lines[0]
        assert device.read(11) == biased_lines[1]

    def test_conflicting_slot_resets_old_row(self, device, biased_lines):
        org = device.organization
        stride = org.channels * org.dimms_per_channel * org.banks_per_dimm * device.rows_per_bank
        device.write(0, biased_lines[0])
        device.write(stride, biased_lines[1])  # same bank slot, different physical row
        assert device.read(stride) == biased_lines[1]

    def test_metrics_and_wear(self, device, biased_lines):
        for i in range(8):
            device.write(i, biased_lines[i])
        metrics = device.total_metrics()
        assert metrics.requests == 8
        assert device.banks_in_use > 1
        assert device.max_cell_wear() >= 1

    def test_rows_per_bank_validation(self):
        with pytest.raises(SimulationError):
            PCMDevice(make_scheme("baseline"), rows_per_bank=0)


class TestOrganizationInteraction:
    def test_custom_organization(self, biased_lines):
        org = PCMOrganization(channels=1, dimms_per_channel=1, banks_per_dimm=4)
        device = PCMDevice(make_scheme("baseline"), organization=org, rows_per_bank=8)
        for i in range(8):
            device.write(i, biased_lines[i])
        assert device.banks_in_use <= org.total_banks
