"""Tests of the single-cell PCM model."""

import pytest

from repro.core.errors import SimulationError
from repro.pcm.cell import PCMCell


class TestProgramming:
    def test_initial_state(self):
        cell = PCMCell()
        assert cell.state == 0
        assert cell.writes == 0

    def test_differential_write_skips_same_state(self):
        cell = PCMCell(state=2)
        assert cell.program(2) == 0.0
        assert cell.writes == 0

    def test_program_charges_state_energy(self):
        cell = PCMCell()
        energy = cell.program(3)
        assert energy == pytest.approx(36.0 + 547.0)
        assert cell.state == 3
        assert cell.writes == 1

    def test_non_differential_rewrites_same_state(self):
        cell = PCMCell(state=1)
        assert cell.program(1, differential=False) == pytest.approx(56.0)
        assert cell.writes == 1

    def test_invalid_states_rejected(self):
        with pytest.raises(SimulationError):
            PCMCell(state=7)
        with pytest.raises(SimulationError):
            PCMCell().program(4)


class TestDisturbance:
    def test_disturb_moves_to_set_state(self):
        cell = PCMCell(state=3)
        cell.disturb()
        assert cell.state == 1

    def test_immunity(self):
        assert PCMCell(state=1).is_disturb_immune
        assert not PCMCell(state=0).is_disturb_immune
