"""Tests of the stateful PCM bank."""
import pytest

from repro.coding import make_scheme
from repro.core.errors import SimulationError
from repro.core.line import LineBatch
from repro.pcm.bank import PCMBank


@pytest.fixture()
def bank():
    return PCMBank(make_scheme("wlcrc-16"), lines=8)


class TestReadWrite:
    def test_write_then_read_roundtrip(self, bank, biased_lines):
        data = biased_lines[3]
        bank.write_line(0, data)
        assert bank.read_line(0) == data

    def test_unwritten_row_reads_zero(self, bank):
        assert bank.read_line(5) == LineBatch.zeros(1)

    def test_row_bounds_checked(self, bank, biased_lines):
        with pytest.raises(SimulationError):
            bank.write_line(99, biased_lines[0])
        with pytest.raises(SimulationError):
            bank.read_line(-1)

    def test_write_requires_single_line(self, bank, biased_lines):
        with pytest.raises(SimulationError):
            bank.write_line(0, biased_lines[:2])

    def test_overwrite_keeps_latest_value(self, bank, biased_lines):
        bank.write_line(2, biased_lines[0])
        bank.write_line(2, biased_lines[1])
        assert bank.read_line(2) == biased_lines[1]


class TestDifferentialBehaviour:
    def test_rewriting_same_data_is_free(self, bank, biased_lines):
        data = biased_lines[7]
        bank.write_line(1, data)
        second = bank.write_line(1, data)
        assert second.avg_energy_pj == 0.0
        assert second.avg_updated_cells == 0.0

    def test_wear_accumulates_only_on_changed_cells(self, bank, biased_lines):
        data = biased_lines[7]
        bank.write_line(1, data)
        wear_after_first = bank.wear.sum()
        bank.write_line(1, data)
        assert bank.wear.sum() == wear_after_first

    def test_metrics_accumulate(self, bank, biased_lines):
        bank.write_line(0, biased_lines[0])
        bank.write_line(1, biased_lines[1])
        assert bank.metrics.requests == 2
        assert bank.stats.writes == 2

    def test_wear_statistics(self, bank, biased_lines):
        bank.write_line(0, biased_lines[0])
        assert bank.max_cell_wear() >= 1
        assert bank.mean_cell_wear() > 0
        counts, edges = bank.wear_histogram(bins=4)
        assert counts.sum() == bank.wear.size


class TestDisturbanceSampling:
    def test_verify_and_restore_repairs_faults(self, biased_lines):
        bank = PCMBank(
            make_scheme("baseline"), lines=4, sample_disturbance=True, seed=3
        )
        for i in range(4):
            bank.write_line(i, biased_lines[i])
        # Regardless of sampled faults, the stored data must decode correctly.
        for i in range(4):
            assert bank.read_line(i) == biased_lines[i]
        assert bank.stats.restore_iterations >= 0

    def test_invalid_bank_size(self):
        with pytest.raises(SimulationError):
            PCMBank(make_scheme("baseline"), lines=0)
