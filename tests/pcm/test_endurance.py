"""Tests of the endurance / lifetime projection helpers."""

import pytest

from repro.pcm.endurance import estimate_lifetime, relative_lifetime


class TestLifetimeEstimate:
    def test_fewer_updated_cells_means_longer_life(self):
        worse = estimate_lifetime(updated_cells_per_write=65.0)
        better = estimate_lifetime(updated_cells_per_write=52.0)
        assert better.lifetime_seconds > worse.lifetime_seconds

    def test_zero_write_rate_is_infinite(self):
        estimate = estimate_lifetime(updated_cells_per_write=52.0, writes_per_second=0.0)
        assert estimate.lifetime_seconds == float("inf")

    def test_zero_updated_cells_is_infinite(self):
        estimate = estimate_lifetime(updated_cells_per_write=0.0)
        assert estimate.line_writes_to_failure == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_lifetime(updated_cells_per_write=-1.0)
        with pytest.raises(ValueError):
            estimate_lifetime(updated_cells_per_write=10.0, wear_leveling_efficiency=0.0)

    def test_lifetime_units(self):
        estimate = estimate_lifetime(updated_cells_per_write=52.0, writes_per_second=1.0)
        assert estimate.lifetime_years == pytest.approx(
            estimate.lifetime_seconds / (365.25 * 24 * 3600)
        )


class TestRelativeLifetime:
    def test_paper_endurance_claim_translation(self):
        """A 20 % reduction in updated cells is a 1.25x lifetime improvement."""
        assert relative_lifetime(65.0, 52.0) == pytest.approx(1.25)

    def test_degenerate_scheme(self):
        assert relative_lifetime(65.0, 0.0) == float("inf")
