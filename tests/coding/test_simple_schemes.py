"""Tests of the baseline, FNW and FlipMin schemes."""

import numpy as np
import pytest

from repro.coding.baseline import BaselineEncoder
from repro.coding.flipmin import FlipMinEncoder
from repro.coding.fnw import FNWEncoder
from repro.core.cosets import DEFAULT_MAPPING
from repro.core.errors import ConfigurationError
from repro.core.line import LineBatch
from repro.evaluation.runner import metrics_from_encoded


class TestBaseline:
    def test_geometry(self):
        encoder = BaselineEncoder()
        assert encoder.aux_cells == 0
        assert encoder.total_cells == 256

    def test_states_follow_default_mapping(self, biased_lines):
        encoder = BaselineEncoder()
        states = encoder.encode_reference(biased_lines[:4])
        expected = DEFAULT_MAPPING[biased_lines[:4].symbols()]
        assert np.array_equal(states, expected)

    def test_roundtrip(self, biased_lines, random_lines):
        encoder = BaselineEncoder()
        assert encoder.roundtrip(biased_lines[:20]) == biased_lines[:20]
        assert encoder.roundtrip(random_lines[:20]) == random_lines[:20]

    def test_identical_write_costs_nothing(self, biased_lines):
        encoder = BaselineEncoder()
        encoded = encoder.encode_batch(biased_lines[:10], biased_lines[:10])
        metrics = metrics_from_encoded(encoded, encoder)
        assert metrics.avg_energy_pj == 0.0
        assert metrics.avg_updated_cells == 0.0
        assert metrics.avg_disturbance_errors == 0.0


class TestFNW:
    def test_geometry(self):
        encoder = FNWEncoder(128)
        assert encoder.num_blocks == 4
        assert encoder.aux_cells == 2
        assert encoder.total_cells == 258

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            FNWEncoder(100)

    def test_roundtrip(self, biased_lines, random_lines):
        encoder = FNWEncoder()
        assert encoder.roundtrip(biased_lines[:20]) == biased_lines[:20]
        assert encoder.roundtrip(random_lines[:10]) == random_lines[:10]

    def test_never_worse_than_baseline_on_data_cells(self, gcc_trace):
        """Per request, FNW's data-cell energy is at most the baseline's.

        FNW can always keep the original block (flip bit 0), so with the same
        stored reference its chosen data encoding can never cost more.
        """
        baseline = BaselineEncoder()
        fnw = FNWEncoder()
        old, new = gcc_trace.old[:64], gcc_trace.new[:64]
        base_ref = baseline.encode_reference(old)
        base = baseline.encode_against_stored(new, base_ref)
        fnw_ref = np.concatenate(
            [base_ref, np.zeros((len(old), fnw.aux_cells), dtype=np.uint8)], axis=1
        )
        encoded = fnw.encode_against_stored(new, fnw_ref)
        base_energy = baseline.energy_model.cell_write_energy(base.states, base.changed).sum(axis=1)
        fnw_data = encoded.states[:, :256]
        fnw_changed = encoded.changed[:, :256]
        fnw_energy = fnw.energy_model.cell_write_energy(fnw_data, fnw_changed).sum(axis=1)
        assert (fnw_energy <= base_energy + 1e-9).all()

    def test_all_ones_line_is_flipped_to_cheap_states(self):
        """Writing an all-ones line onto fresh cells should complement every block."""
        encoder = FNWEncoder()
        ones = LineBatch(np.full((1, 8), 2**64 - 1, dtype=np.uint64))
        states = encoder.encode_reference(ones)
        # Complemented data is all zeros -> state S1 everywhere in the data cells.
        assert (states[0, :256] == 0).all()
        assert encoder.decode_states(states) == ones


class TestFlipMin:
    def test_geometry(self):
        encoder = FlipMinEncoder()
        assert encoder.num_cosets == 16
        assert encoder.aux_cells == 2

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            FlipMinEncoder(num_cosets=1)
        with pytest.raises(ConfigurationError):
            FlipMinEncoder(num_cosets=20)

    def test_roundtrip(self, biased_lines, random_lines):
        encoder = FlipMinEncoder()
        assert encoder.roundtrip(biased_lines[:16]) == biased_lines[:16]
        assert encoder.roundtrip(random_lines[:16]) == random_lines[:16]

    def test_candidate_zero_means_identity(self):
        encoder = FlipMinEncoder()
        assert encoder.vectors[0].sum() == 0

    def test_deterministic_given_seed(self, biased_lines):
        a = FlipMinEncoder(seed=5).encode_reference(biased_lines[:4])
        b = FlipMinEncoder(seed=5).encode_reference(biased_lines[:4])
        assert np.array_equal(a, b)

    def test_fresh_write_never_worse_than_baseline(self, random_lines):
        """Against fresh cells FlipMin can always pick the zero vector."""
        baseline = BaselineEncoder()
        flipmin = FlipMinEncoder()
        base_states = baseline.encode_reference(random_lines[:32])
        flip_states = flipmin.encode_reference(random_lines[:32])[:, :256]
        weights = baseline.energy_model.write_energy_per_state
        base_cost = weights[base_states][base_states != 0].sum()
        flip_cost = weights[flip_states][flip_states != 0].sum()
        assert flip_cost <= base_cost + 1e-9
