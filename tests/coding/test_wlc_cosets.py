"""Tests of the WLC + unrestricted coset encoders (WLC+4cosets / WLC+3cosets)."""
import pytest

from repro.coding.wlc_cosets import WLCNCosetsEncoder, make_wlc_four_cosets, make_wlc_three_cosets
from repro.coding.wlcrc import WLCRCEncoder
from repro.core.cosets import SIX_COSETS
from repro.core.errors import ConfigurationError
from repro.core.symbols import SYMBOLS_PER_LINE
from repro.evaluation.runner import metrics_from_encoded


class TestGeometry:
    @pytest.mark.parametrize("granularity,reclaimed", [(8, 16), (16, 8), (32, 4), (64, 2)])
    def test_reclaimed_bits_match_paper(self, granularity, reclaimed):
        """Section VI: WLC+4cosets must reclaim 16/8/4/2 bits per word."""
        assert make_wlc_four_cosets(granularity).reclaimed_bits == reclaimed

    def test_requires_more_compression_than_wlcrc(self):
        """Section IX-A: at the same granularity the unrestricted scheme needs
        more reclaimed bits than WLCRC, which is why fewer lines compress."""
        for granularity in (8, 16, 32):
            assert (
                make_wlc_four_cosets(granularity).reclaimed_bits
                > WLCRCEncoder(granularity).reclaimed_bits
            )

    def test_rejects_too_many_candidates(self):
        with pytest.raises(ConfigurationError):
            WLCNCosetsEncoder(SIX_COSETS, 32)

    def test_names(self):
        assert make_wlc_four_cosets(32).name == "wlc+4cosets-32"
        assert make_wlc_three_cosets(16).name == "wlc+3cosets-16"


class TestRoundtrip:
    @pytest.mark.parametrize("granularity", [8, 16, 32, 64])
    def test_four_cosets_roundtrip(self, biased_lines, granularity):
        encoder = make_wlc_four_cosets(granularity)
        assert encoder.roundtrip(biased_lines[:20]) == biased_lines[:20]

    @pytest.mark.parametrize("granularity", [16, 32])
    def test_three_cosets_roundtrip(self, biased_lines, granularity):
        encoder = make_wlc_three_cosets(granularity)
        assert encoder.roundtrip(biased_lines[:20]) == biased_lines[:20]

    def test_random_lines_take_raw_path(self, random_lines):
        encoder = make_wlc_four_cosets(32)
        encoded = encoder.encode_batch(random_lines[:16], random_lines[:16])
        assert encoded.compressed.mean() < 0.5
        assert encoder.roundtrip(random_lines[:16]) == random_lines[:16]


class TestCompressibility:
    def test_wlcrc16_compresses_more_lines_than_wlc4cosets16(self, biased_lines):
        """The paper's core argument for the restriction: at 16-bit granularity
        WLCRC needs only 6 identical MSBs while WLC+4cosets needs 9, so WLCRC
        encodes far more lines."""
        wlcrc = WLCRCEncoder(16)
        unrestricted = make_wlc_four_cosets(16)
        wlcrc_cov = wlcrc.wlc.line_compressible(biased_lines).mean()
        unrestricted_cov = unrestricted.wlc.line_compressible(biased_lines).mean()
        assert wlcrc_cov > unrestricted_cov

    def test_same_compressibility_at_32_bits_as_wlcrc_16(self, compressible_lines):
        """Lines compressible at k=6 are compressible for both WLCRC-16 (k=6)
        and WLC+4cosets-32 (k=5)."""
        assert make_wlc_four_cosets(32).wlc.line_compressible(compressible_lines).all()
        assert WLCRCEncoder(16).wlc.line_compressible(compressible_lines).all()


class TestEnergyBehaviour:
    def test_beats_baseline_on_biased_traces(self, gcc_trace):
        from repro.coding.baseline import BaselineEncoder

        baseline = BaselineEncoder()
        encoder = make_wlc_four_cosets(32)
        base = metrics_from_encoded(baseline.encode_batch(gcc_trace.new, gcc_trace.old), baseline)
        ours = metrics_from_encoded(encoder.encode_batch(gcc_trace.new, gcc_trace.old), encoder)
        assert ours.avg_energy_pj < base.avg_energy_pj

    def test_aux_mask_matches_reclaimed_region(self, compressible_lines):
        encoder = make_wlc_four_cosets(32)  # 4 reclaimed bits -> 2 aux cells per word
        encoded = encoder.encode_batch(compressible_lines, compressible_lines)
        assert encoded.aux_mask[0].sum() == 8 * encoder.aux_region_cells + 1
        assert encoded.aux_mask[0, SYMBOLS_PER_LINE]
