"""Tests of the DIN and COC+4cosets baselines."""

import numpy as np

from repro.coding.coc_cosets import COCFourCosetsEncoder, LAYOUT_16, LAYOUT_32
from repro.coding.din import (
    BCH_PARITY_BITS,
    DINEncoder,
    EXPANDED_BITS,
    LENGTH_HEADER_BITS,
    MAX_COMPRESSED_BITS,
    build_din_mapping,
)
from repro.coding.wlc_base import FLAG_COMPRESSED_STATE, FLAG_RAW_STATE
from repro.core.cosets import DEFAULT_MAPPING
from repro.core.symbols import SYMBOLS_PER_LINE


class TestDINMapping:
    def test_mapping_shape_and_inverse(self):
        forward, inverse = build_din_mapping()
        assert forward.shape == (8,)
        assert len(set(forward.tolist())) == 8
        for value, pattern in enumerate(forward):
            assert inverse[pattern] == value

    def test_zero_maps_to_zero(self):
        forward, _ = build_din_mapping()
        assert forward[0] == 0

    def test_codewords_avoid_the_most_expensive_state(self):
        """The eight chosen 4-bit codewords never store a symbol in S4."""
        forward, _ = build_din_mapping()
        for pattern in forward:
            low = DEFAULT_MAPPING[pattern & 0b11]
            high = DEFAULT_MAPPING[(pattern >> 2) & 0b11]
            assert low != 3 and high != 3


class TestDINLayout:
    def test_budget_arithmetic(self):
        """Header + compressed payload expand into exactly 492 bits + 20 BCH bits."""
        payload = LENGTH_HEADER_BITS + MAX_COMPRESSED_BITS
        assert 4 * ((payload + 2) // 3) == EXPANDED_BITS
        assert EXPANDED_BITS + BCH_PARITY_BITS == 512

    def test_geometry(self):
        encoder = DINEncoder()
        assert encoder.aux_cells == 1
        assert encoder.total_cells == SYMBOLS_PER_LINE + 1


class TestDINBehaviour:
    def test_roundtrip_biased(self, biased_lines):
        encoder = DINEncoder()
        subset = biased_lines[:24]
        assert encoder.roundtrip(subset) == subset

    def test_roundtrip_random(self, random_lines):
        encoder = DINEncoder()
        subset = random_lines[:8]
        assert encoder.roundtrip(subset) == subset

    def test_flags_follow_compressibility(self, biased_lines):
        encoder = DINEncoder()
        subset = biased_lines[:24]
        sizes = encoder.compressor.sizes_bits(subset)
        states = encoder.encode_reference(subset)
        flags = states[:, encoder.flag_cell_index]
        expected = np.where(sizes <= MAX_COMPRESSED_BITS, FLAG_COMPRESSED_STATE, FLAG_RAW_STATE)
        assert np.array_equal(flags, expected)

    def test_encoded_payload_avoids_s4(self, biased_lines):
        """The expanded (3-to-4 coded) payload only uses the DIN codeword states.

        The BCH parity bits at the end of the line are excluded: they are not
        produced by the expansion table and may use any state.
        """
        encoder = DINEncoder()
        subset = biased_lines[:24]
        sizes = encoder.compressor.sizes_bits(subset)
        states = encoder.encode_reference(subset)
        encoded_rows = np.nonzero(sizes <= MAX_COMPRESSED_BITS)[0]
        if encoded_rows.size:
            payload_cells = EXPANDED_BITS // 2
            assert states[encoded_rows, :payload_cells].max() <= 2


class TestCOCFourCosets:
    def test_geometry(self):
        encoder = COCFourCosetsEncoder()
        assert encoder.total_cells == SYMBOLS_PER_LINE + 1
        assert LAYOUT_16.data_cells == 224 and LAYOUT_16.num_blocks == 28
        assert LAYOUT_32.data_cells == 240 and LAYOUT_32.num_blocks == 15

    def test_layout_fits_within_line(self):
        for layout in (LAYOUT_16, LAYOUT_32):
            assert layout.data_cells + layout.aux_cells <= SYMBOLS_PER_LINE - 1

    def test_roundtrip_biased(self, biased_lines):
        encoder = COCFourCosetsEncoder()
        subset = biased_lines[:24]
        assert encoder.roundtrip(subset) == subset

    def test_roundtrip_random(self, random_lines):
        encoder = COCFourCosetsEncoder()
        subset = random_lines[:8]
        assert encoder.roundtrip(subset) == subset

    def test_compressed_fraction_high_on_biased_lines(self, biased_lines):
        encoder = COCFourCosetsEncoder()
        subset = biased_lines[:32]
        encoded = encoder.encode_batch(subset, subset)
        assert encoded.compressed.mean() > 0.5

    def test_mode_cell_distinguishes_granularities(self, biased_lines):
        encoder = COCFourCosetsEncoder()
        subset = biased_lines[:32]
        sizes = encoder.compressor.sizes_bits(subset)
        states = encoder.encode_reference(subset)
        for i in range(len(subset)):
            if sizes[i] <= LAYOUT_16.budget_bits:
                assert states[i, encoder.MODE_CELL] == DEFAULT_MAPPING[LAYOUT_16.mode_symbol]
            elif sizes[i] <= LAYOUT_32.budget_bits:
                assert states[i, encoder.MODE_CELL] == DEFAULT_MAPPING[LAYOUT_32.mode_symbol]
