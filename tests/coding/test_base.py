"""Tests of the encoder base class and shared helpers."""

import numpy as np
import pytest

from repro.coding.base import (
    EncodedBatch,
    block_energy_costs,
    block_flip_costs,
    pack_bits_to_states,
    select_states_per_block,
    unpack_states_to_bits,
)
from repro.coding.baseline import BaselineEncoder
from repro.core.energy import DEFAULT_ENERGY_MODEL
from repro.core.errors import EncodingError


class TestBitStatePacking:
    def test_roundtrip(self):
        bits = np.array([[1, 0, 1, 1, 0, 0, 1]], dtype=np.uint8)
        states = pack_bits_to_states(bits)
        assert states.shape == (1, 4)  # 7 bits -> 4 cells (padded)
        recovered = unpack_states_to_bits(states, 7)
        assert np.array_equal(recovered, bits)

    def test_zero_bits_use_cheapest_state(self):
        states = pack_bits_to_states(np.zeros((1, 4), dtype=np.uint8))
        assert (states == 0).all()  # symbol 00 -> S1 under the default mapping

    def test_requires_2d(self):
        with pytest.raises(EncodingError):
            pack_bits_to_states(np.zeros(4, dtype=np.uint8))


class TestBlockSelection:
    def test_select_states_per_block(self):
        candidate_states = np.zeros((2, 1, 8), dtype=np.uint8)
        candidate_states[1] = 3
        choice = np.array([[0, 1, 1, 0]], dtype=np.uint8)  # four 2-cell blocks
        selected = select_states_per_block(candidate_states, choice, 2)
        assert selected[0].tolist() == [0, 0, 3, 3, 3, 3, 0, 0]

    def test_select_rejects_bad_choice_shape(self):
        with pytest.raises(EncodingError):
            select_states_per_block(np.zeros((2, 1, 8), dtype=np.uint8), np.zeros((1, 3), dtype=np.uint8), 2)

    def test_block_energy_costs(self):
        # One line of 4 cells, 2 candidates, block size 2.
        stored = np.zeros((1, 4), dtype=np.uint8)
        candidate_states = np.stack([
            np.array([[0, 0, 3, 3]], dtype=np.uint8),   # candidate 0
            np.array([[1, 1, 0, 0]], dtype=np.uint8),   # candidate 1
        ])
        costs = block_energy_costs(candidate_states, stored, DEFAULT_ENERGY_MODEL, 2)
        assert costs.shape == (2, 1, 2)
        assert costs[0, 0, 0] == 0.0                   # unchanged cells cost nothing
        assert costs[0, 0, 1] == pytest.approx(2 * 583.0)
        assert costs[1, 0, 0] == pytest.approx(2 * 56.0)
        assert costs[1, 0, 1] == 0.0

    def test_block_flip_costs(self):
        stored = np.zeros((1, 4), dtype=np.uint8)
        candidate_states = np.stack([np.array([[0, 1, 2, 0]], dtype=np.uint8)])
        flips = block_flip_costs(candidate_states, stored, 2)
        assert flips[0, 0].tolist() == [1, 1]


class TestEncodedBatch:
    def test_changed_and_total_cells(self):
        states = np.array([[0, 1, 2]], dtype=np.uint8)
        old = np.array([[0, 0, 2]], dtype=np.uint8)
        batch = EncodedBatch(
            states=states,
            old_states=old,
            aux_mask=np.zeros_like(states, dtype=bool),
            compressed=np.zeros(1, dtype=bool),
            encoded=np.zeros(1, dtype=bool),
        )
        assert batch.changed.tolist() == [[False, True, False]]
        assert batch.total_cells == 3

    def test_shape_validation(self):
        with pytest.raises(EncodingError):
            EncodedBatch(
                states=np.zeros((1, 3), dtype=np.uint8),
                old_states=np.zeros((1, 4), dtype=np.uint8),
                aux_mask=np.zeros((1, 3), dtype=bool),
                compressed=np.zeros(1, dtype=bool),
                encoded=np.zeros(1, dtype=bool),
            )


class TestWriteEncoderInterface:
    def test_encode_batch_length_mismatch(self, biased_lines):
        encoder = BaselineEncoder()
        with pytest.raises(EncodingError):
            encoder.encode_batch(biased_lines[:3], biased_lines[:4])

    def test_encode_against_stored_shape_check(self, biased_lines):
        encoder = BaselineEncoder()
        with pytest.raises(EncodingError):
            encoder.encode_against_stored(biased_lines[:2], np.zeros((2, 10), dtype=np.uint8))

    def test_fresh_states_are_reset(self):
        encoder = BaselineEncoder()
        fresh = encoder.fresh_states(3)
        assert fresh.shape == (3, encoder.total_cells)
        assert (fresh == 0).all()

    def test_encode_reference_is_deterministic(self, biased_lines):
        encoder = BaselineEncoder()
        a = encoder.encode_reference(biased_lines[:5])
        b = encoder.encode_reference(biased_lines[:5])
        assert np.array_equal(a, b)
