"""Tests of the unrestricted coset encoders (6cosets / 4cosets / 3cosets)."""

import numpy as np
import pytest

from repro.coding.baseline import BaselineEncoder
from repro.coding.ncosets import (
    NCosetsEncoder,
    PairCellAuxCodec,
    SingleCellAuxCodec,
    make_four_cosets,
    make_six_cosets,
    make_three_cosets,
)
from repro.core.cosets import FOUR_COSETS
from repro.core.errors import ConfigurationError
from repro.core.line import LineBatch
from repro.evaluation.runner import metrics_from_encoded


class TestAuxCodecs:
    def test_single_cell_codec_roundtrip(self):
        codec = SingleCellAuxCodec(4)
        choice = np.array([[0, 3, 2, 1]], dtype=np.uint8)
        states = codec.encode(choice)
        assert states.shape == (1, 4)
        assert np.array_equal(codec.decode(states, 4), choice)

    def test_single_cell_codec_limits(self):
        with pytest.raises(ConfigurationError):
            SingleCellAuxCodec(5)

    def test_pair_cell_codec_uses_cheapest_combos(self):
        codec = PairCellAuxCodec(6)
        # The six cheapest two-cell state combinations never use S4 (state 3).
        assert codec.combos.max() <= 2
        # The very cheapest combination is (S1, S1).
        assert codec.combos[0].tolist() == [0, 0]

    def test_pair_cell_codec_roundtrip(self):
        codec = PairCellAuxCodec(6)
        choice = np.array([[0, 5, 3], [2, 2, 1]], dtype=np.uint8)
        states = codec.encode(choice)
        assert states.shape == (2, 6)
        assert np.array_equal(codec.decode(states, 3), choice)

    def test_pair_cell_codec_limits(self):
        with pytest.raises(ConfigurationError):
            PairCellAuxCodec(17)


class TestGeometry:
    def test_aux_cells_scale_with_granularity(self):
        assert make_four_cosets(512).aux_cells == 1
        assert make_four_cosets(16).aux_cells == 32
        assert make_six_cosets(512).aux_cells == 2
        assert make_six_cosets(16).aux_cells == 64

    def test_paper_overhead_claim(self):
        """4cosets halves the auxiliary overhead of 6cosets at any granularity."""
        for granularity in (8, 16, 32, 64, 128):
            assert make_six_cosets(granularity).aux_cells == 2 * make_four_cosets(granularity).aux_cells

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            NCosetsEncoder(FOUR_COSETS, 48)
        with pytest.raises(ConfigurationError):
            NCosetsEncoder(np.zeros((4, 3), dtype=np.uint8), 16)

    def test_names(self):
        assert make_six_cosets(512).name == "6cosets-512"
        assert make_three_cosets(16).name == "3cosets-16"


class TestRoundtrip:
    @pytest.mark.parametrize("granularity", [8, 16, 32, 64, 128, 256, 512])
    def test_four_cosets_roundtrip(self, biased_lines, granularity):
        encoder = make_four_cosets(granularity)
        assert encoder.roundtrip(biased_lines[:12]) == biased_lines[:12]

    @pytest.mark.parametrize("granularity", [16, 128, 512])
    def test_six_cosets_roundtrip(self, random_lines, granularity):
        encoder = make_six_cosets(granularity)
        assert encoder.roundtrip(random_lines[:12]) == random_lines[:12]

    def test_three_cosets_roundtrip(self, biased_lines):
        encoder = make_three_cosets(16)
        assert encoder.roundtrip(biased_lines[:12]) == biased_lines[:12]


class TestEnergyBehaviour:
    def test_never_worse_than_baseline_on_fresh_cells(self, biased_lines, random_lines):
        """Candidate C1 is always available, so a fresh write costs at most baseline."""
        weights = BaselineEncoder().energy_model.write_energy_per_state
        for lines in (biased_lines[:24], random_lines[:16]):
            base_states = BaselineEncoder().encode_reference(lines)
            base_cost = weights[base_states][base_states != 0].sum()
            for encoder in (make_six_cosets(64), make_four_cosets(64), make_three_cosets(64)):
                states = encoder.encode_reference(lines)[:, :256]
                cost = weights[states][states != 0].sum()
                assert cost <= base_cost + 1e-9

    def test_finer_granularity_reduces_data_energy(self, gcc_trace):
        """Figure 1 trend: smaller blocks give lower data-symbol energy."""
        coarse = make_six_cosets(512)
        fine = make_six_cosets(16)
        old, new = gcc_trace.old[:128], gcc_trace.new[:128]
        coarse_metrics = metrics_from_encoded(coarse.encode_batch(new, old), coarse)
        fine_metrics = metrics_from_encoded(fine.encode_batch(new, old), fine)
        assert fine_metrics.avg_data_energy_pj <= coarse_metrics.avg_data_energy_pj
        # ... while the auxiliary energy grows (the paper's motivation).
        assert fine_metrics.avg_aux_energy_pj >= coarse_metrics.avg_aux_energy_pj

    def test_all_ones_line_uses_cheap_states(self):
        """4cosets maps a run of ones to the cheapest state via C2."""
        encoder = make_four_cosets(64)
        ones = LineBatch(np.full((1, 8), 2**64 - 1, dtype=np.uint64))
        states = encoder.encode_reference(ones)
        assert (states[0, :256] == 0).all()

    def test_aux_mask_marks_only_appended_cells(self, biased_lines):
        encoder = make_four_cosets(32)
        encoded = encoder.encode_batch(biased_lines[:4], biased_lines[:4])
        assert not encoded.aux_mask[:, :256].any()
        assert encoded.aux_mask[:, 256:].all()
