"""Tests of the scheme registry."""

import pytest

from repro.coding import FIGURE8_SCHEMES, available_schemes, make_scheme
from repro.coding.baseline import BaselineEncoder
from repro.coding.wlcrc import WLCRCEncoder
from repro.core.energy import EnergyModel
from repro.core.errors import ConfigurationError


class TestNames:
    def test_all_advertised_schemes_construct(self):
        for name in available_schemes():
            encoder = make_scheme(name)
            assert encoder.total_cells >= 256

    def test_figure8_schemes_construct(self):
        for name in FIGURE8_SCHEMES:
            assert make_scheme(name) is not None

    def test_default_granularities(self):
        assert make_scheme("6cosets").granularity_bits == 512
        assert make_scheme("wlc+4cosets").granularity_bits == 32
        assert make_scheme("wlcrc").granularity_bits == 16
        assert make_scheme("3-r-cosets").granularity_bits == 16

    def test_granularity_suffixes(self):
        assert make_scheme("6cosets-16").granularity_bits == 16
        assert make_scheme("wlcrc-32").granularity_bits == 32
        assert make_scheme("fnw-256").block_bits == 256

    def test_case_insensitive(self):
        assert isinstance(make_scheme("Baseline"), BaselineEncoder)
        assert isinstance(make_scheme("WLCRC-16"), WLCRCEncoder)

    def test_multiobjective_suffix(self):
        encoder = make_scheme("wlcrc-16-mo")
        assert isinstance(encoder, WLCRCEncoder)
        assert encoder.endurance_threshold == pytest.approx(0.01)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_scheme("does-not-exist")
        with pytest.raises(ConfigurationError):
            make_scheme("wlcrc-24")


class TestEnergyModelPlumbing:
    def test_custom_energy_model_is_used(self):
        model = EnergyModel(set_energy_pj=(0.0, 20.0, 75.0, 135.0))
        encoder = make_scheme("wlcrc-16", model)
        assert encoder.energy_model == model

    def test_names_are_preserved(self):
        for name in ("baseline", "flipmin", "din", "coc+4cosets", "wlcrc-16"):
            assert make_scheme(name).name.startswith(name.split("-")[0])
