"""Tests of the line-scope restricted coset encoder (3-r-cosets)."""

import numpy as np
import pytest

from repro.coding.ncosets import make_three_cosets
from repro.coding.restricted import FAMILY_CANDIDATES, RestrictedCosetEncoder
from repro.core.errors import ConfigurationError
from repro.core.line import LineBatch
from repro.evaluation.runner import metrics_from_encoded


class TestGeometry:
    def test_aux_bits_and_cells(self):
        encoder = RestrictedCosetEncoder(16)
        assert encoder.num_blocks == 32
        assert encoder.aux_bits == 33          # 1 family bit + 32 selector bits
        assert encoder.aux_cells == 17         # 33 bits packed two per cell

    def test_fewer_aux_cells_than_unrestricted(self):
        """Section V: restriction roughly halves the auxiliary information."""
        for granularity in (8, 16, 32):
            restricted = RestrictedCosetEncoder(granularity)
            unrestricted = make_three_cosets(granularity)
            assert restricted.aux_cells < unrestricted.aux_cells

    def test_family_candidates_table(self):
        assert FAMILY_CANDIDATES.tolist() == [[0, 1], [0, 2]]

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            RestrictedCosetEncoder(48)


class TestRoundtrip:
    @pytest.mark.parametrize("granularity", [8, 16, 32, 64, 128])
    def test_roundtrip(self, biased_lines, granularity):
        encoder = RestrictedCosetEncoder(granularity)
        assert encoder.roundtrip(biased_lines[:12]) == biased_lines[:12]

    def test_roundtrip_random(self, random_lines):
        encoder = RestrictedCosetEncoder(16)
        assert encoder.roundtrip(random_lines[:12]) == random_lines[:12]


class TestBehaviour:
    def test_blocks_only_use_family_candidates(self, biased_lines):
        """Every block's mapping must come from the single family chosen for the line."""
        encoder = RestrictedCosetEncoder(16)
        lines = biased_lines[:16]
        states = encoder.encode_reference(lines)
        decoded = encoder.decode_states(states)
        assert decoded == lines  # implies the stored family/selector bits are consistent

    def test_restriction_costs_at_most_unrestricted(self, gcc_trace):
        """Figure 5: restricted cosets are only slightly worse than 3cosets."""
        restricted = RestrictedCosetEncoder(16)
        unrestricted = make_three_cosets(16)
        old, new = gcc_trace.old[:128], gcc_trace.new[:128]
        restricted_metrics = metrics_from_encoded(restricted.encode_batch(new, old), restricted)
        unrestricted_metrics = metrics_from_encoded(unrestricted.encode_batch(new, old), unrestricted)
        # The restriction gives up flexibility, so the data energy cannot improve
        # much beyond the unrestricted choice and must stay close to it (Figure 5).
        assert restricted_metrics.avg_data_energy_pj >= 0.95 * unrestricted_metrics.avg_data_energy_pj
        assert restricted_metrics.avg_energy_pj <= 1.15 * unrestricted_metrics.avg_energy_pj

    def test_pure_ones_and_zero_line_prefers_family_c1_c2(self):
        """A line of zero and all-ones words is served perfectly by the {C1, C2} family."""
        encoder = RestrictedCosetEncoder(16)
        words = np.zeros((1, 8), dtype=np.uint64)
        words[0, ::2] = 2**64 - 1
        lines = LineBatch(words)
        states = encoder.encode_reference(lines)
        # All data cells end up in the two cheapest states.
        assert states[0, :256].max() <= 1
        assert encoder.decode_states(states) == lines
