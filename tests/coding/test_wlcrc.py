"""Tests of the WLCRC encoder (the paper's proposal) and its multi-objective mode."""

import numpy as np
import pytest

from repro.coding.wlc_base import FLAG_COMPRESSED_STATE, FLAG_RAW_STATE
from repro.coding.wlcrc import RECLAIMED_BITS_BY_GRANULARITY, WLCRCEncoder
from repro.core.errors import ConfigurationError
from repro.core.line import LineBatch
from repro.core.symbols import SYMBOLS_PER_LINE
from repro.evaluation.runner import metrics_from_encoded


class TestGeometry:
    def test_reclaimed_bits_table(self):
        """Section VI / IX-A: reclaimed bits per word for each granularity."""
        assert RECLAIMED_BITS_BY_GRANULARITY == {8: 8, 16: 5, 32: 3, 64: 2}

    @pytest.mark.parametrize("granularity,k", [(8, 9), (16, 6), (32, 4), (64, 3)])
    def test_wlc_k_requirement(self, granularity, k):
        assert WLCRCEncoder(granularity).wlc.k == k

    def test_total_cells_has_one_flag(self):
        encoder = WLCRCEncoder(16)
        assert encoder.aux_cells == 1
        assert encoder.total_cells == SYMBOLS_PER_LINE + 1

    def test_space_overhead_below_half_percent(self):
        """The paper reports < 0.4 % total encoding space overhead."""
        encoder = WLCRCEncoder(16)
        overhead = encoder.aux_cells / SYMBOLS_PER_LINE
        assert overhead < 0.004

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            WLCRCEncoder(24)
        with pytest.raises(ConfigurationError):
            WLCRCEncoder(16, endurance_threshold=-0.5)

    def test_names(self):
        assert WLCRCEncoder(16).name == "wlcrc-16"
        assert WLCRCEncoder(16, endurance_threshold=0.01).name == "wlcrc-16-mo0.01"


class TestFlagCell:
    def test_compressible_lines_flagged_compressed(self, compressible_lines):
        encoder = WLCRCEncoder(16)
        states = encoder.encode_reference(compressible_lines)
        assert (states[:, encoder.flag_cell_index] == FLAG_COMPRESSED_STATE).all()

    def test_incompressible_lines_flagged_raw(self, incompressible_lines):
        encoder = WLCRCEncoder(16)
        states = encoder.encode_reference(incompressible_lines)
        assert (states[:, encoder.flag_cell_index] == FLAG_RAW_STATE).all()

    def test_flag_uses_two_lowest_energy_states(self):
        assert FLAG_COMPRESSED_STATE == 0
        assert FLAG_RAW_STATE == 1

    def test_compressed_fraction_reported(self, compressible_lines, incompressible_lines):
        encoder = WLCRCEncoder(16)
        both = LineBatch.concatenate([compressible_lines, incompressible_lines])
        encoded = encoder.encode_batch(both, both)
        assert encoded.compressed.sum() == len(compressible_lines)
        assert encoded.encoded.sum() == len(compressible_lines)


class TestRoundtrip:
    @pytest.mark.parametrize("granularity", [8, 16, 32, 64])
    def test_biased_roundtrip(self, biased_lines, granularity):
        encoder = WLCRCEncoder(granularity)
        assert encoder.roundtrip(biased_lines[:24]) == biased_lines[:24]

    @pytest.mark.parametrize("granularity", [8, 16, 32, 64])
    def test_random_roundtrip(self, random_lines, granularity):
        """Random lines are mostly incompressible and take the raw path."""
        encoder = WLCRCEncoder(granularity)
        assert encoder.roundtrip(random_lines[:16]) == random_lines[:16]

    def test_compressible_roundtrip(self, compressible_lines):
        encoder = WLCRCEncoder(16)
        assert encoder.roundtrip(compressible_lines) == compressible_lines

    def test_multiobjective_roundtrip(self, biased_lines):
        encoder = WLCRCEncoder(16, endurance_threshold=0.01)
        assert encoder.roundtrip(biased_lines[:24]) == biased_lines[:24]


class TestAuxLayout:
    def test_aux_mask_covers_reclaimed_region_and_flag(self, compressible_lines):
        encoder = WLCRCEncoder(16)
        encoded = encoder.encode_batch(compressible_lines, compressible_lines)
        aux_mask = encoded.aux_mask[0]
        # Three cells per word (the five reclaimed bits plus the shared cell) + flag.
        assert aux_mask.sum() == 8 * encoder.aux_region_cells + 1
        assert aux_mask[encoder.flag_cell_index]

    def test_raw_lines_have_only_flag_as_aux(self, incompressible_lines):
        encoder = WLCRCEncoder(16)
        encoded = encoder.encode_batch(incompressible_lines, incompressible_lines)
        assert encoded.aux_mask[:, :SYMBOLS_PER_LINE].sum() == 0

    def test_identical_write_costs_nothing(self, compressible_lines):
        encoder = WLCRCEncoder(16)
        encoded = encoder.encode_batch(compressible_lines, compressible_lines)
        metrics = metrics_from_encoded(encoded, encoder)
        assert metrics.avg_energy_pj == 0.0
        assert metrics.avg_updated_cells == 0.0


class TestEnergyBehaviour:
    def test_beats_baseline_on_biased_traces(self, gcc_trace):
        from repro.coding.baseline import BaselineEncoder

        baseline = BaselineEncoder()
        wlcrc = WLCRCEncoder(16)
        old, new = gcc_trace.old, gcc_trace.new
        base = metrics_from_encoded(baseline.encode_batch(new, old), baseline)
        ours = metrics_from_encoded(wlcrc.encode_batch(new, old), wlcrc)
        assert ours.avg_energy_pj < base.avg_energy_pj
        assert ours.avg_updated_cells < base.avg_updated_cells

    def test_all_ones_words_use_cheap_states(self):
        """A compressible line of -1 words maps to the cheapest states via C2."""
        encoder = WLCRCEncoder(16)
        ones = LineBatch(np.full((1, 8), 2**64 - 1, dtype=np.uint64))
        states = encoder.encode_reference(ones)
        data_region = states[0, :SYMBOLS_PER_LINE].reshape(8, 32)[:, :encoder.data_region_cells]
        assert data_region.max() <= 1
        assert encoder.decode_states(states) == ones


class TestMultiObjective:
    def test_trades_little_energy_for_endurance(self, gcc_trace):
        """Section VIII-D: the multi-objective mode trades energy for endurance.

        On a biased trace the rewritten-cell count must not grow meaningfully
        and the write energy give-back must stay small (the paper reports a
        19 % endurance gain for < 2 % extra energy at T = 1 %).
        """
        plain = WLCRCEncoder(16)
        multi = WLCRCEncoder(16, endurance_threshold=0.05)
        old, new = gcc_trace.old, gcc_trace.new
        plain_metrics = metrics_from_encoded(plain.encode_batch(new, old), plain)
        multi_metrics = metrics_from_encoded(multi.encode_batch(new, old), multi)
        assert multi_metrics.avg_updated_cells <= 1.03 * plain_metrics.avg_updated_cells
        assert multi_metrics.avg_energy_pj <= 1.08 * plain_metrics.avg_energy_pj

    def test_zero_threshold_matches_plain_data_energy(self, biased_lines):
        """With T = 0 the family choice only changes on exact cost ties, so the
        data-region energy of a fresh write is identical to the plain encoder."""
        plain = WLCRCEncoder(16)
        zero = WLCRCEncoder(16, endurance_threshold=0.0)
        lines = biased_lines[:32]
        weights = plain.energy_model.write_energy_per_state
        plain_states = plain.encode_reference(lines)
        zero_states = zero.encode_reference(lines)
        mask = ~plain.encode_batch(lines, lines).aux_mask  # data cells only
        plain_cost = (weights[plain_states] * (plain_states != 0) * mask).sum()
        zero_cost = (weights[zero_states] * (zero_states != 0) * mask).sum()
        assert plain_cost == pytest.approx(zero_cost)
