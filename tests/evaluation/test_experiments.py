"""Tests of the per-figure experiment drivers (small configurations)."""

import pytest

from repro.evaluation import experiments
from repro.evaluation.experiments import ExperimentConfig

#: A deliberately tiny configuration so the experiment drivers stay fast.
TINY = ExperimentConfig(trace_length=60, random_lines=80, seed=3, benchmarks=("gcc", "libq"))
#: Schemes kept cheap for the figure 8-10 driver tests.
FAST_SCHEMES = ("baseline", "fnw", "wlcrc-16")


@pytest.fixture(autouse=True, scope="module")
def _clear_cache():
    experiments.clear_cache()
    yield
    experiments.clear_cache()


class TestTraceConstruction:
    def test_benchmark_traces_cached(self):
        first = experiments.benchmark_traces(TINY)
        second = experiments.benchmark_traces(TINY)
        assert first is second
        assert set(first) == {"gcc", "libq"}
        assert len(first["gcc"]) == 60

    def test_random_trace_length(self):
        assert len(experiments.random_trace(TINY)) == 80


class TestMotivationFigures:
    def test_figure1_shapes(self):
        result = experiments.figure1("random", TINY)
        assert set(result) == set(experiments.FIGURE1_GRANULARITIES)
        for row in result.values():
            assert set(row) == {"blk", "aux", "total"}
            assert row["total"] == pytest.approx(row["blk"] + row["aux"])

    def test_figure1_rejects_unknown_workload(self):
        with pytest.raises(ValueError):
            experiments.figure1("bogus", TINY)

    def test_figure2_and_3_have_both_schemes(self):
        for driver in (experiments.figure2, experiments.figure3):
            result = driver(TINY)
            assert set(result) == {"6cosets", "4cosets"}
            assert set(result["6cosets"]) == set(experiments.FIGURE2_GRANULARITIES)

    def test_figure4_rows(self):
        result = experiments.figure4(TINY)
        assert "ave." in result and "gcc" in result

    def test_figure5_includes_restricted(self):
        result = experiments.figure5(TINY)
        assert set(result) == {"4cosets", "3cosets", "3-r-cosets"}

    def test_table1_matches_paper(self):
        table = experiments.table1()
        assert table["S1"]["C1"] == "00"
        assert table["S1"]["C2"] == "11"
        assert table["S4"]["C1"] == "01"
        assert table["S2"]["C3"] == "01"


class TestComparisonFigures:
    def test_figure8_rows_and_averages(self):
        result = experiments.figure8(TINY, FAST_SCHEMES)
        assert set(result) == set(FAST_SCHEMES)
        row = result["baseline"]
        assert {"gcc", "libq", "HMI Ave.", "LMI Ave.", "Ave."} <= set(row)
        assert row["HMI Ave."] == pytest.approx(row["gcc"])
        assert row["LMI Ave."] == pytest.approx(row["libq"])

    def test_wlcrc_beats_baseline_in_figure8(self):
        result = experiments.figure8(TINY, FAST_SCHEMES)
        assert result["wlcrc-16"]["Ave."] < result["baseline"]["Ave."]

    def test_figure9_and_10_share_the_same_evaluation(self):
        energy = experiments.figure8(TINY, FAST_SCHEMES)
        cells = experiments.figure9(TINY, FAST_SCHEMES)
        disturbance = experiments.figure10(TINY, FAST_SCHEMES)
        assert set(energy) == set(cells) == set(disturbance)
        assert all(value >= 0 for row in disturbance.values() for value in row.values())

    def test_section8d_rows(self):
        result = experiments.section8d_multiobjective(TINY)
        assert "Ave." in result
        assert {"energy_plain", "energy_multi", "cells_plain", "cells_multi"} <= set(result["gcc"])


class TestGranularityAndSensitivity:
    def test_figure11_to_13_families(self):
        for driver in (experiments.figure11, experiments.figure12, experiments.figure13):
            result = driver(TINY)
            assert set(result) == {"4cosets", "3cosets", "WLCRC"}
            assert set(result["WLCRC"]) == {8, 16, 32, 64}

    def test_figure14_levels(self):
        result = experiments.figure14(TINY)
        assert len(result) == 4
        for values in result.values():
            assert values["improvement_pct"] <= 100.0
