"""Fused encode+metrics contract tests: fused == materialising, bit for bit.

The fused tiled path (:func:`repro.evaluation.runner.encode_metrics_batch`)
promises the same guarantee the array backends and the parallel engine make:
switching it on can only change peak memory, never a single metric bit.  The
properties here sweep every opted-in encoder family over granularities 8..512,
chunk/tile geometries (including ragged tails and empty groups), Monte-Carlo
disturbance sampling, every registered array backend (skip-with-reason when
the optional dependency is absent), and worker counts 1 and 4 -- always
comparing against the materialising reference path.

The satellite rewrite of :func:`metrics_from_encoded` (single masked-sum pass
replacing the historical pair of ``np.where`` scans) is held to the same
standard against the old formulas directly.
"""

import tracemalloc
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import make_scheme
from repro.coding.coc_cosets import COCFourCosetsEncoder
from repro.coding.din import DINEncoder
from repro.coding.ncosets import make_three_cosets
from repro.coding.restricted import RestrictedCosetEncoder
from repro.coding.wlc_cosets import make_wlc_three_cosets
from repro.coding.wlcrc import WLCRCEncoder
from repro.compression.backend import (
    BackendUnavailableError,
    backend_names,
    get_backend,
    use_array_backend,
)
from repro.core.config import EvaluationConfig
from repro.evaluation.parallel import ParallelRunner, WorkUnit
from repro.evaluation.runner import (
    chunk_streams,
    encode_metrics_batch,
    evaluate_chunk_group,
    evaluate_trace,
    fused_tile_size,
    metrics_from_encoded,
)
from repro.obs import observation
from repro.workloads.generator import generate_benchmark_trace

#: Candidate-sweep encoder families that opt into the fused path, spanning
#: the coset (8..512-bit), restricted-coset, CoC and WLC-word designs.
FUSED_ENCODERS = {
    "3cosets-8": lambda: make_three_cosets(8),
    "3cosets-64": lambda: make_three_cosets(64),
    "3cosets-512": lambda: make_three_cosets(512),
    "restricted-16": lambda: RestrictedCosetEncoder(16),
    "restricted-256": lambda: RestrictedCosetEncoder(256),
    "coc-4cosets": COCFourCosetsEncoder,
    "wlc-3cosets": make_wlc_three_cosets,
    "wlcrc-16": WLCRCEncoder,
}

#: Granularity ladder the dedicated sweep covers (satellite requirement).
GRANULARITIES = (8, 16, 32, 64, 128, 256, 512)


def require_backend(name: str):
    """The named backend, or a skip carrying its unavailability reason."""
    try:
        return get_backend(name)
    except BackendUnavailableError as exc:
        pytest.skip(f"array backend {name!r} unavailable: {exc}")


def both_paths(encoder, trace, chunk_size, tile_lines, sample=False, seed=7):
    """(materialising, fused) per-window metric lists for one chunk group."""
    config = EvaluationConfig(
        chunk_size=chunk_size, seed=seed, sample_disturbance=sample
    )
    streams = chunk_streams(config, -(-len(trace) // chunk_size))
    reference = list(
        evaluate_chunk_group(encoder, trace, streams, chunk_size, tile_lines=None)
    )
    fused = list(
        evaluate_chunk_group(
            encoder, trace, streams, chunk_size, tile_lines=tile_lines
        )
    )
    return reference, fused


class TestTileGeometry:
    def test_disabled_values(self):
        assert fused_tile_size(None, 256) is None
        assert fused_tile_size(0, 256) is None
        assert fused_tile_size(-5, 256) is None

    def test_rounds_up_to_whole_chunks(self):
        assert fused_tile_size(1, 256) == 256
        assert fused_tile_size(256, 256) == 256
        assert fused_tile_size(257, 256) == 512
        assert fused_tile_size(1000, 256) == 1024

    def test_driver_rejects_disabled_tile(self, gcc_trace):
        encoder = make_three_cosets(64)
        with pytest.raises(ValueError):
            list(encode_metrics_batch(encoder, gcc_trace, [None], 64, tile_lines=0))


class TestFusedEquality:
    """Fused == materialising, per window, for every opted-in encoder."""

    @pytest.mark.parametrize("name", sorted(FUSED_ENCODERS))
    @pytest.mark.parametrize("sample", [False, True])
    def test_every_fused_encoder(self, name, sample):
        encoder = FUSED_ENCODERS[name]()
        assert encoder.supports_fused_metrics
        trace = generate_benchmark_trace("mcf", 1100, seed=9)  # ragged tail
        reference, fused = both_paths(
            encoder, trace, chunk_size=128, tile_lines=256, sample=sample
        )
        assert reference == fused

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_granularity_ladder(self, granularity):
        encoder = make_three_cosets(granularity)
        trace = generate_benchmark_trace("gcc", 700, seed=5)
        reference, fused = both_paths(
            encoder, trace, chunk_size=100, tile_lines=200, sample=True
        )
        assert reference == fused

    def test_non_opted_encoder_takes_reference_path(self, gcc_trace):
        encoder = DINEncoder()
        assert not encoder.supports_fused_metrics
        reference, fused = both_paths(encoder, gcc_trace, 64, 64)
        assert reference == fused

    def test_empty_group(self):
        encoder = make_three_cosets(64)
        trace = generate_benchmark_trace("gcc", 100, seed=3)[:0]
        assert list(encode_metrics_batch(encoder, trace, [], 64, tile_lines=64)) == []

    @pytest.mark.parametrize("backend_name", backend_names())
    def test_every_array_backend(self, backend_name):
        require_backend(backend_name)
        encoder = make_three_cosets(128)
        trace = generate_benchmark_trace("libq", 900, seed=13)
        with use_array_backend(backend_name):
            reference, fused = both_paths(
                encoder, trace, chunk_size=128, tile_lines=256, sample=True
            )
        assert reference == fused

    @given(
        length=st.integers(min_value=0, max_value=700),
        chunk_size=st.integers(min_value=16, max_value=192),
        tile_request=st.integers(min_value=1, max_value=400),
        sample=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_geometry_property(self, length, chunk_size, tile_request, sample):
        """Any (trace length, chunk, tile) geometry -- including tiles that
        cover the whole group, single-line tails and empty traces."""
        encoder = make_three_cosets(64)
        trace = generate_benchmark_trace("mcf", max(length, 1), seed=21)[:length]
        reference, fused = both_paths(
            encoder, trace, chunk_size, tile_request, sample=sample
        )
        assert reference == fused


class TestEndToEndEquality:
    """The config knob end to end: serial runner and parallel engine."""

    @pytest.mark.parametrize("n_jobs", [1, 4])
    @pytest.mark.parametrize("pool", ["process", "thread"])
    def test_superbatch_parallel_matrix(self, n_jobs, pool):
        encoder = make_three_cosets(256)
        trace = generate_benchmark_trace("gcc", 1500, seed=17)
        base = EvaluationConfig(chunk_size=128, seed=17, sample_disturbance=True)
        reference = evaluate_trace(
            encoder, trace, replace(base, fused_tile_lines=None)
        )
        fused_config = replace(base, superbatch_size=1024, fused_tile_lines=256)
        result = ParallelRunner(n_jobs, backend=pool).map(
            [WorkUnit("k", encoder, trace, fused_config)]
        )[0]
        assert result == reference

    def test_default_config_tiles_only_above_default_group(self):
        # The shipped defaults (chunk group 2048 <= tile 8192) must keep the
        # single-encode path; explicit superbatching above one tile must not
        # change the numbers.
        encoder = make_three_cosets(64)
        trace = generate_benchmark_trace("libq", 1200, seed=23)
        default = evaluate_trace(encoder, trace, EvaluationConfig(chunk_size=128))
        disabled = evaluate_trace(
            encoder,
            trace,
            EvaluationConfig(chunk_size=128, fused_tile_lines=None),
        )
        tiled = evaluate_trace(
            encoder,
            trace,
            EvaluationConfig(
                chunk_size=128, superbatch_size=1200, fused_tile_lines=256
            ),
        )
        assert default == disabled == tiled


class TestMetricsRewrite:
    """The masked-sum energy split equals the historical np.where formulas."""

    @pytest.mark.parametrize(
        "scheme", ["baseline", "din", "3cosets-16", "wlcrc-16", "coc+4cosets"]
    )
    def test_against_legacy_formulas(self, scheme, gcc_trace):
        encoder = make_scheme(scheme)
        encoded = encoder.encode_batch(gcc_trace.new, gcc_trace.old)
        metrics = metrics_from_encoded(encoded, encoder)
        changed = encoded.changed
        energy = encoder.energy_model.cell_write_energy(encoded.states, changed)
        aux = encoded.aux_mask
        assert metrics.data_energy_pj == float(np.where(aux, 0.0, energy).sum())
        assert metrics.aux_energy_pj == float(np.where(aux, energy, 0.0).sum())
        assert metrics.updated_data_cells == float(
            np.where(aux, False, changed).sum()
        )
        assert metrics.updated_aux_cells == float(
            np.where(aux, changed, False).sum()
        )


class TestObservability:
    def test_peak_memory_gauges_recorded(self):
        encoder = make_three_cosets(64)
        trace = generate_benchmark_trace("gcc", 600, seed=3)
        config = EvaluationConfig(
            chunk_size=64, superbatch_size=600, fused_tile_lines=128
        )
        tracemalloc.start()
        try:
            with observation("fused-test") as session:
                evaluate_trace(encoder, trace, config)
        finally:
            tracemalloc.stop()
        snapshot = session.metrics.snapshot()
        rss = snapshot.get("peak_rss_bytes")
        traced = snapshot.get("tracemalloc_peak_bytes")
        assert rss is not None and rss["type"] == "gauge" and rss["value"] > 0
        assert traced is not None and traced["value"] > 0
        spans = {record.name for record in session.spans}
        assert "encode_metrics_batch" in spans


class TestPeakMemory:
    @pytest.mark.tier2
    def test_fused_512bit_peak_bounded_by_tile(self):
        """CI memory smoke: at 512-bit granularity a superbatched group must
        evaluate with a decisively smaller tracemalloc peak when tiled, and
        with exactly the same metrics."""
        encoder = make_three_cosets(512)
        trace = generate_benchmark_trace("mcf", 8192, seed=29)
        chunk = 512

        def run(tile):
            config = EvaluationConfig(
                chunk_size=chunk,
                superbatch_size=len(trace),
                fused_tile_lines=tile,
                sample_disturbance=True,
                seed=29,
            )
            tracemalloc.start()
            try:
                metrics = evaluate_trace(encoder, trace, config)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return metrics, peak

        fused_metrics, fused_peak = run(chunk)
        full_metrics, full_peak = run(None)
        assert fused_metrics == full_metrics
        ratio = full_peak / fused_peak
        assert ratio >= 2.0, (
            f"fused peak {fused_peak} not >=2x under materialising peak "
            f"{full_peak} (ratio {ratio:.2f})"
        )
