"""Tests of the sweep helpers (granularity, energy levels, compression coverage)."""

from repro.coding.ncosets import make_six_cosets
from repro.coding.wlcrc import WLCRCEncoder
from repro.coding.baseline import BaselineEncoder
from repro.core.config import EvaluationConfig
from repro.core.energy import figure14_energy_models
from repro.evaluation.sweeps import compression_coverage, energy_level_sweep, granularity_sweep

CONFIG = EvaluationConfig(chunk_size=256)


class TestGranularitySweep:
    def test_sweep_keys_and_trend(self, gcc_trace):
        traces = {"gcc": gcc_trace[:96]}
        sweep = granularity_sweep(
            lambda g, em: make_six_cosets(g, em), (16, 512), traces, CONFIG
        )
        assert set(sweep) == {16, 512}
        # Figure 1 trend: finer granularity lowers the data-symbol energy.
        assert sweep[16].avg_data_energy_pj <= sweep[512].avg_data_energy_pj
        assert sweep[16].avg_aux_energy_pj >= sweep[512].avg_aux_energy_pj


class TestEnergyLevelSweep:
    def test_four_levels_and_positive_improvement(self, gcc_trace):
        traces = {"gcc": gcc_trace[:96]}
        sweep = energy_level_sweep(
            factory=lambda em: WLCRCEncoder(16, em),
            baseline_factory=lambda em: BaselineEncoder(em),
            traces=traces,
            config=CONFIG,
        )
        assert len(sweep) == 4
        for values in sweep.values():
            assert values["scheme_energy_pj"] <= values["baseline_energy_pj"]
            assert values["improvement_pct"] >= 0

    def test_improvement_shrinks_with_cheaper_intermediate_states(self, gcc_trace):
        """Figure 14: cheaper S3/S4 reduce (but do not erase) WLCRC's advantage."""
        traces = {"gcc": gcc_trace[:96]}
        sweep = energy_level_sweep(
            factory=lambda em: WLCRCEncoder(16, em),
            baseline_factory=lambda em: BaselineEncoder(em),
            traces=traces,
            config=CONFIG,
        )
        ordered = [sweep[(m.set_energy_pj[2], m.set_energy_pj[3])]["improvement_pct"]
                   for m in figure14_energy_models()]
        assert ordered[-1] <= ordered[0]


class TestCompressionCoverage:
    def test_columns_and_average_row(self, gcc_trace, libq_trace):
        coverage = compression_coverage({"gcc": gcc_trace[:96], "libq": libq_trace[:96]})
        assert "ave." in coverage
        row = coverage["gcc"]
        assert set(row) == {"4-MSBs", "5-MSBs", "6-MSBs", "7-MSBs", "8-MSBs", "9-MSBs", "COC", "FPC+BDI"}
        for value in row.values():
            assert 0.0 <= value <= 100.0

    def test_wlc_coverage_monotone_in_k(self, gcc_trace):
        coverage = compression_coverage({"gcc": gcc_trace[:96]})["gcc"]
        assert coverage["4-MSBs"] >= coverage["6-MSBs"] >= coverage["9-MSBs"]

    def test_empty_input(self):
        assert compression_coverage({}) == {}
