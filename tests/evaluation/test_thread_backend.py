"""Thread-backend contract: bit-identical to the process backend and serial.

The vectorised compression kernels release the GIL, which is what makes
``backend="thread"`` a real alternative to worker processes.  The contract
is the same as for ``n_jobs``: metrics must be *exactly* equal (dataclass
equality, no ``approx``) across serial, thread-pool and process-pool
execution, with and without Monte-Carlo disturbance sampling.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.core.errors import ConfigurationError
from repro.evaluation.experiments import ExperimentConfig
from repro.evaluation.parallel import ParallelRunner, WorkUnit, shared_runner
from repro.evaluation.runner import evaluate_schemes
from repro.evaluation.sweeps import compression_coverage

SCHEMES = ("baseline", "wlcrc-16", "din", "coc+4cosets")


class TestBackendValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(2, backend="fiber")

    def test_shared_runner_keyed_by_backend(self):
        process = shared_runner(2)
        thread = shared_runner(2, backend="thread")
        assert process is not thread
        assert thread.backend == "thread"
        assert shared_runner(2, backend="thread") is thread

    def test_experiment_config_carries_backend(self):
        assert ExperimentConfig().backend == "process"
        assert ExperimentConfig(backend="thread").backend == "thread"


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_thread_equals_process_equals_serial(self, scheme, gcc_trace):
        encoder = make_scheme(scheme)
        config = EvaluationConfig(chunk_size=48)
        serial = evaluate_schemes([encoder], gcc_trace, config, n_jobs=1)
        threaded = evaluate_schemes(
            [encoder], gcc_trace, config, n_jobs=4, backend="thread"
        )
        process = evaluate_schemes(
            [encoder], gcc_trace, config, n_jobs=4, backend="process"
        )
        assert serial == threaded
        assert serial == process

    def test_monte_carlo_sampling_identical(self, gcc_trace):
        encoder = make_scheme("wlcrc-16")
        config = EvaluationConfig(chunk_size=48, sample_disturbance=True, seed=99)
        serial = evaluate_schemes([encoder], gcc_trace, config, n_jobs=1)
        threaded = evaluate_schemes(
            [encoder], gcc_trace, config, n_jobs=4, backend="thread"
        )
        assert serial == threaded

    def test_run_reduction_order_identical(self, gcc_trace, libq_trace):
        encoder = make_scheme("baseline")
        config = EvaluationConfig(chunk_size=64)
        units = [
            WorkUnit("total", encoder, gcc_trace, config),
            WorkUnit("total", encoder, libq_trace, config),
        ]
        serial = ParallelRunner(1).run(units)
        threaded = ParallelRunner(4, backend="thread").run(units)
        assert serial == threaded

    def test_starmap_passes_traces_directly(self, gcc_trace):
        coverage_serial = compression_coverage(
            {"gcc": gcc_trace}, runner=ParallelRunner(1)
        )
        coverage_thread = compression_coverage(
            {"gcc": gcc_trace}, runner=ParallelRunner(4, backend="thread")
        )
        assert coverage_serial == coverage_thread

    def test_persistent_thread_runner_reuses_pool(self, gcc_trace):
        encoder = make_scheme("baseline")
        config = EvaluationConfig(chunk_size=64)
        with ParallelRunner(4, backend="thread") as runner:
            first = runner.map([WorkUnit("t", encoder, gcc_trace, config)])
            pool = runner._executor
            second = runner.map([WorkUnit("t", encoder, gcc_trace, config)])
            assert runner._executor is pool
            # Threads never export traces through the transport layer.
            assert runner._exporter is None
        assert first == second


@given(st.integers(min_value=2, max_value=5), st.sampled_from(SCHEMES))
@settings(max_examples=8, deadline=None)
def test_thread_backend_bit_identity_property(n_jobs, scheme):
    """Property: any thread count reproduces the serial metrics exactly."""
    from repro.workloads.generator import generate_benchmark_trace

    trace = generate_benchmark_trace("gcc", length=96, seed=5)
    encoder = make_scheme(scheme)
    config = EvaluationConfig(chunk_size=17)
    serial = evaluate_schemes([encoder], trace, config, n_jobs=1)
    threaded = evaluate_schemes(
        [encoder], trace, config, n_jobs=n_jobs, backend="thread"
    )
    assert serial == threaded


def test_evaluate_schemes_thread_process_equivalence_full_sweep(gcc_trace):
    """Acceptance: the full scheme sweep is bit-identical across backends."""
    encoders = [make_scheme(s) for s in SCHEMES]
    config = EvaluationConfig(chunk_size=48)
    threaded = evaluate_schemes(encoders, gcc_trace, config, n_jobs=4, backend="thread")
    process = evaluate_schemes(encoders, gcc_trace, config, n_jobs=4, backend="process")
    serial = evaluate_schemes(encoders, gcc_trace, config, n_jobs=1)
    assert threaded == process == serial


def test_streaming_window_thread_backend(gcc_trace):
    """ChunkSource units run the windowed path on threads, bit-identically."""

    class Source:
        name = "src"

        def chunks(self, chunk_size):
            return gcc_trace.chunks(chunk_size)

    encoder = make_scheme("wlcrc-16")
    config = EvaluationConfig(chunk_size=32)
    serial = ParallelRunner(1).map([WorkUnit("s", encoder, Source(), config)])
    threaded = ParallelRunner(3, backend="thread", window=2).map(
        [WorkUnit("s", encoder, Source(), config)]
    )
    assert serial == threaded


def test_numpy_kernels_release_the_gil(biased_lines):
    """Two threads over the batch kernel must overlap (GIL released).

    A strict wall-clock assertion is flaky on loaded CI machines, so this
    only checks the kernels *run* concurrently without error and agree with
    the serial result -- the perf claim itself is measured (not asserted)
    by ``bench_parallel_scaling``.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.compression import COCCompressor

    coc = COCCompressor()
    reference = coc.compress_batch(biased_lines)
    with ThreadPoolExecutor(4) as pool:
        results = list(pool.map(lambda _: coc.compress_batch(biased_lines), range(8)))
    for packed in results:
        assert np.array_equal(packed.bits, reference.bits)
        assert np.array_equal(packed.lengths, reference.lengths)
