"""Tests of the trace-driven evaluation runner."""

import numpy as np
import pytest

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.core.disturbance import DisturbanceModel
from repro.evaluation.runner import (
    average_metrics,
    evaluate_benchmarks,
    evaluate_schemes,
    evaluate_trace,
    metrics_from_encoded,
)


class TestMetricsFromEncoded:
    def test_energy_split_matches_masks(self, gcc_trace):
        encoder = make_scheme("fnw")
        encoded = encoder.encode_batch(gcc_trace.new[:32], gcc_trace.old[:32])
        metrics = metrics_from_encoded(encoded, encoder)
        total = encoder.energy_model.cell_write_energy(encoded.states, encoded.changed).sum()
        assert metrics.total_energy_pj == pytest.approx(total)
        assert metrics.updated_cells == pytest.approx(encoded.changed.sum())

    def test_sampled_disturbance_is_an_integer_count(self, gcc_trace):
        encoder = make_scheme("baseline")
        encoded = encoder.encode_batch(gcc_trace.new[:16], gcc_trace.old[:16])
        metrics = metrics_from_encoded(encoded, encoder, rng=np.random.default_rng(1))
        assert metrics.disturbance_errors == int(metrics.disturbance_errors)

    def test_zero_rate_model_reports_zero(self, gcc_trace):
        encoder = make_scheme("baseline")
        encoded = encoder.encode_batch(gcc_trace.new[:16], gcc_trace.old[:16])
        model = DisturbanceModel(rates=(0.0, 0.0, 0.0, 0.0))
        assert metrics_from_encoded(encoded, encoder, model).disturbance_errors == 0.0


class TestEvaluateTrace:
    def test_counts_every_request(self, gcc_trace):
        metrics = evaluate_trace(make_scheme("baseline"), gcc_trace)
        assert metrics.requests == len(gcc_trace)

    def test_chunking_does_not_change_results(self, gcc_trace):
        encoder = make_scheme("wlcrc-16")
        small_chunks = evaluate_trace(encoder, gcc_trace, EvaluationConfig(chunk_size=17))
        one_chunk = evaluate_trace(encoder, gcc_trace, EvaluationConfig(chunk_size=10_000))
        assert small_chunks.avg_energy_pj == pytest.approx(one_chunk.avg_energy_pj)
        assert small_chunks.avg_updated_cells == pytest.approx(one_chunk.avg_updated_cells)

    def test_deterministic(self, gcc_trace):
        encoder = make_scheme("wlcrc-16")
        a = evaluate_trace(encoder, gcc_trace)
        b = evaluate_trace(encoder, gcc_trace)
        assert a.avg_energy_pj == b.avg_energy_pj

    def test_sampled_disturbance_mode(self, gcc_trace):
        config = EvaluationConfig(sample_disturbance=True, seed=3)
        metrics = evaluate_trace(make_scheme("baseline"), gcc_trace[:64], config)
        assert metrics.disturbance_errors >= 0


class TestMultiSchemeHelpers:
    def test_evaluate_schemes(self, gcc_trace):
        encoders = [make_scheme("baseline"), make_scheme("fnw")]
        results = evaluate_schemes(encoders, gcc_trace[:64])
        assert set(results) == {"baseline", "fnw-128"}

    def test_evaluate_benchmarks_and_average(self, gcc_trace, libq_trace):
        results = evaluate_benchmarks(make_scheme("baseline"), {"gcc": gcc_trace, "libq": libq_trace})
        combined = average_metrics(results)
        assert combined.requests == len(gcc_trace) + len(libq_trace)
        assert combined.total_energy_pj == pytest.approx(
            results["gcc"].total_energy_pj + results["libq"].total_energy_pj
        )

    def test_hmi_benchmark_uses_more_energy_than_lmi(self, gcc_trace, libq_trace):
        """The HMI/LMI grouping of Figure 8 must be visible in the traces."""
        encoder = make_scheme("baseline")
        gcc = evaluate_trace(encoder, gcc_trace)
        libq = evaluate_trace(encoder, libq_trace)
        assert gcc.avg_energy_pj > libq.avg_energy_pj
