"""Tests of the plain-text reporting helpers."""

import pytest

from repro.evaluation.reporting import (
    format_series_table,
    format_table,
    format_value,
    improvement_percent,
)


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(1234.567, precision=1) == "1,234.6"

    def test_int_grouping(self):
        assert format_value(1000000) == "1,000,000"

    def test_string_passthrough(self):
        assert format_value("wlcrc-16") == "wlcrc-16"


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        table = format_table(["scheme", "energy"], [["baseline", 100.0], ["wlcrc", 48.5]])
        assert "scheme" in table and "baseline" in table and "48.5" in table

    def test_title_and_underline(self):
        table = format_table(["a"], [[1]], title="Figure 8")
        assert table.splitlines()[0] == "Figure 8"
        assert set(table.splitlines()[1]) == {"="}

    def test_alignment_width(self):
        table = format_table(["name"], [["abcdefghij"]])
        header, underline, row = table.splitlines()
        assert len(header) == len(row)


class TestFormatSeriesTable:
    def test_rows_and_columns(self):
        series = {"baseline": {"gcc": 1.0, "libq": 2.0}, "wlcrc": {"gcc": 0.5}}
        table = format_series_table(series)
        assert "baseline" in table and "gcc" in table and "libq" in table

    def test_explicit_column_order(self):
        series = {"row": {"b": 1.0, "a": 2.0}}
        table = format_series_table(series, column_order=["a", "b"])
        header = table.splitlines()[0]
        assert header.index("a") < header.index("b")


class TestImprovementPercent:
    def test_improvement(self):
        assert improvement_percent(100.0, 48.0) == pytest.approx(52.0)

    def test_zero_baseline(self):
        assert improvement_percent(0.0, 10.0) == 0.0
