"""Tests of the parallel evaluation engine.

The engine's contract is *bit-identical* results for every ``n_jobs`` value:
chunk metrics are reduced in submission order and Monte-Carlo disturbance
streams are keyed by (seed, unit, chunk), so neither float accumulation nor
sampling may depend on the worker count.  The property tests below assert
exact equality (``WriteMetrics`` dataclass equality, no ``approx``) between
the serial fallback and a four-worker pool for every registered scheme.
"""

import pytest

from repro.coding import available_schemes, make_scheme
from repro.core.config import EvaluationConfig
from repro.core.errors import ConfigurationError
from repro.core.metrics import WriteMetrics
from repro.coding.ncosets import make_six_cosets
from repro.evaluation.parallel import ParallelRunner, WorkUnit, resolve_n_jobs
from repro.evaluation.runner import (
    evaluate_benchmarks,
    evaluate_schemes,
    evaluate_trace,
)
from repro.evaluation.sweeps import compression_coverage, granularity_sweep

#: Small chunks so every work unit splits into several shards.
CONFIG = EvaluationConfig(chunk_size=32)
#: Monte-Carlo disturbance sampling exercises the seeded RNG streams.
MC_CONFIG = EvaluationConfig(chunk_size=32, sample_disturbance=True, seed=3)


def _scheme_units(trace, config):
    return [
        WorkUnit(name, make_scheme(name), trace, config)
        for name in available_schemes()
    ]


class TestResolveNJobs:
    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    @pytest.mark.parametrize("value", [None, 0, -1])
    def test_all_cores_aliases(self, value):
        assert resolve_n_jobs(value) >= 1

    def test_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(-2)


class TestBitIdenticalAcrossWorkers:
    def test_every_registered_scheme(self, gcc_trace):
        """n_jobs=4 must reproduce n_jobs=1 exactly, for all 16 schemes."""
        trace = gcc_trace[:128]
        serial = ParallelRunner(n_jobs=1).run(_scheme_units(trace, CONFIG))
        parallel = ParallelRunner(n_jobs=4).run(_scheme_units(trace, CONFIG))
        assert set(serial) == set(parallel)
        for name in serial:
            assert serial[name] == parallel[name], name

    def test_every_registered_scheme_monte_carlo(self, gcc_trace):
        """The sampled-disturbance path must also be scheduling-independent."""
        trace = gcc_trace[:128]
        serial = ParallelRunner(n_jobs=1).run(_scheme_units(trace, MC_CONFIG))
        parallel = ParallelRunner(n_jobs=4).run(_scheme_units(trace, MC_CONFIG))
        for name in serial:
            assert serial[name] == parallel[name], name
            # Sampling must actually have produced integer error counts.
            assert serial[name].disturbance_errors == int(serial[name].disturbance_errors)

    def test_monte_carlo_streams_differ_per_unit(self, gcc_trace):
        """Distinct work units draw from distinct spawned RNG streams."""
        trace = gcc_trace[:128]
        encoder = make_scheme("baseline")
        units = [WorkUnit(i, encoder, trace, MC_CONFIG) for i in range(2)]
        first, second = ParallelRunner(n_jobs=1).map(units)
        assert first.disturbance_errors != second.disturbance_errors


class TestRunnerSemantics:
    def test_map_matches_evaluate_trace(self, gcc_trace):
        trace = gcc_trace[:96]
        encoders = [make_scheme("baseline"), make_scheme("wlcrc-16")]
        units = [WorkUnit(e.name, e, trace, CONFIG) for e in encoders]
        mapped = ParallelRunner(n_jobs=1).map(units)
        for index, (encoder, metrics) in enumerate(zip(encoders, mapped)):
            assert metrics == evaluate_trace(encoder, trace, CONFIG, unit_index=index)

    def test_shared_keys_are_merged_in_order(self, gcc_trace, libq_trace):
        encoder = make_scheme("baseline")
        units = [
            WorkUnit("total", encoder, gcc_trace[:64], CONFIG),
            WorkUnit("total", encoder, libq_trace[:64], CONFIG),
        ]
        runner = ParallelRunner(n_jobs=1)
        reduced = runner.run(units)
        assert set(reduced) == {"total"}
        expected = WriteMetrics.combine(runner.map(units))
        assert reduced["total"] == expected

    def test_empty_units(self):
        assert ParallelRunner(n_jobs=1).run([]) == {}
        assert ParallelRunner(n_jobs=4).run([]) == {}

    def test_starmap_preserves_order(self):
        tasks = [(i,) for i in range(20)]
        assert ParallelRunner(n_jobs=1).starmap(abs, tasks) == list(range(20))
        assert ParallelRunner(n_jobs=3).starmap(abs, tasks) == list(range(20))

    def test_starmap_ships_traces_by_transport(self, gcc_trace):
        """WriteTrace args ride the zero-copy transport, results unchanged."""
        from repro.evaluation.sweeps import compression_coverage

        traces = {"gcc": gcc_trace[:96]}
        serial = compression_coverage(traces, runner=ParallelRunner(1))
        shm = compression_coverage(traces, runner=ParallelRunner(2, transport="shm"))
        pickled = compression_coverage(
            traces, runner=ParallelRunner(2, transport="pickle")
        )
        assert serial == shm == pickled

    def test_starmap_transport_with_persistent_runner(self, gcc_trace):
        from repro.evaluation.sweeps import compression_coverage

        traces = {"gcc": gcc_trace[:96]}
        serial = compression_coverage(traces, runner=ParallelRunner(1))
        with ParallelRunner(2, transport="shm") as runner:
            first = compression_coverage(traces, runner=runner)
            second = compression_coverage(traces, runner=runner)
        assert serial == first == second


class TestRewiredHelpers:
    def test_evaluate_schemes_jobs_equivalence(self, gcc_trace):
        encoders = [make_scheme("baseline"), make_scheme("fnw")]
        serial = evaluate_schemes(encoders, gcc_trace[:64], CONFIG)
        parallel = evaluate_schemes(encoders, gcc_trace[:64], CONFIG, n_jobs=2)
        assert serial == parallel

    def test_evaluate_benchmarks_jobs_equivalence(self, gcc_trace, libq_trace):
        traces = {"gcc": gcc_trace[:64], "libq": libq_trace[:64]}
        encoder = make_scheme("baseline")
        serial = evaluate_benchmarks(encoder, traces, CONFIG)
        parallel = evaluate_benchmarks(encoder, traces, CONFIG, n_jobs=2)
        assert serial == parallel

    def test_granularity_sweep_jobs_equivalence(self, gcc_trace, libq_trace):
        """Acceptance: >= 4 granularities, parallel identical to serial."""
        traces = {"gcc": gcc_trace[:96], "libq": libq_trace[:96]}
        def factory(g, em):
            return make_six_cosets(g, em)
        granularities = (8, 16, 32, 64)
        serial = granularity_sweep(factory, granularities, traces, CONFIG)
        parallel = granularity_sweep(factory, granularities, traces, CONFIG, n_jobs=4)
        assert list(serial) == list(granularities)
        for granularity in granularities:
            assert serial[granularity] == parallel[granularity]

    def test_granularity_sweep_monte_carlo_equivalence(self, gcc_trace):
        traces = {"gcc": gcc_trace[:96]}
        def factory(g, em):
            return make_six_cosets(g, em)
        serial = granularity_sweep(factory, (16, 32), traces, MC_CONFIG)
        parallel = granularity_sweep(factory, (16, 32), traces, MC_CONFIG, n_jobs=2)
        assert serial == parallel

    def test_compression_coverage_jobs_equivalence(self, gcc_trace):
        traces = {"gcc": gcc_trace[:96]}
        assert compression_coverage(traces) == compression_coverage(traces, n_jobs=2)
