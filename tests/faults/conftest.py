"""Fixtures for the fault-injection tests.

The injector is process-global state (that is the point: one plan governs a
whole run), so every test here gets a clean slate before and after, and the
``REPRO_FAULTS`` environment variable is masked so an ambient plan on the
developer's machine cannot leak into assertions.
"""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()
