"""Fault tolerance of the serve layer: drain supervision, deadlines, retries.

Like ``tests/serve/test_service.py`` these run a real server on an ephemeral
socket and speak actual HTTP, so the 503/504 mapping, ``Retry-After``
propagation and the supervisor's restart path are exercised end to end.
"""

import asyncio
import threading
import time

import pytest

from repro import faults
from repro.evaluation.parallel import shutdown_shared_runners
from repro.serve.results import ResultStore
from repro.serve.service import (
    RETRY_AFTER_S,
    EvaluationService,
    ServiceError,
    submit_request,
)

REQUEST = {
    "scheme": "wlcrc-16",
    "trace": {"profile": "gcc", "length": 150, "seed": 9},
    "config": {"chunk_size": 64},
}


@pytest.fixture()
def server(tmp_path):
    store = ResultStore(tmp_path / "store")
    service = EvaluationService(
        store, n_jobs=1, backend="process", trace_dir=tmp_path / "corpus", queue_size=8
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=30)
    try:
        yield service, f"http://127.0.0.1:{service.port}"
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
        shutdown_shared_runners()


class TestDrainSupervision:
    def test_drain_crash_answers_503_and_restarts(self, server):
        service, url = server
        faults.install("worker-crash@drain:1")
        status, payload = submit_request(url, "/evaluate", payload=REQUEST)
        assert (status, payload["error"]) == (503, "drain_crashed")
        assert faults.injected_counts() == {"drain": 1}
        # The supervisor restarts the worker; the retried request is served
        # normally by the fresh drain.
        deadline = time.monotonic() + 10
        while service.drain_restarts == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.drain_restarts == 1
        status, payload = submit_request(url, "/evaluate", payload=REQUEST)
        assert status == 200 and payload["cached"] is False
        status, metrics = submit_request(url, "/metrics")
        assert status == 200
        assert metrics["drain"]["restarts"] == 1
        assert metrics["drain"]["alive"] == service.drain_workers
        assert metrics["faults_injected"] == {"drain": 1}

    def test_client_retry_rides_through_the_crash(self, server):
        """`repro submit --retries` turns the injected crash into one 200."""
        service, url = server
        faults.install("worker-crash@drain:1")
        status, payload = submit_request(
            url, "/evaluate", payload=REQUEST, retries=3, backoff_s=0.01
        )
        assert status == 200
        assert payload["metrics"]["requests"] == 150
        assert service.drain_restarts == 1


class TestConnectionDrop:
    def test_drop_without_retries_reports_unreachable(self, server):
        _, url = server
        faults.install("conn-drop@evaluate:1")
        status, payload = submit_request(url, "/evaluate", payload=REQUEST)
        assert status == 0
        assert payload["error"] in ("unreachable", "bad_response")

    def test_drop_is_absorbed_by_client_retry(self, server):
        _, url = server
        faults.install("conn-drop@evaluate:1")
        status, payload = submit_request(
            url, "/evaluate", payload=REQUEST, retries=2, backoff_s=0.01
        )
        assert status == 200
        assert faults.injected_counts() == {"evaluate": 1}


class TestDeadlines:
    def test_tiny_deadline_expires_as_504(self, server):
        service, url = server
        request = {**REQUEST, "deadline_ms": 1}
        status, payload = submit_request(url, "/evaluate", payload=request)
        assert (status, payload["error"]) == (504, "deadline_exceeded")
        assert service.expired >= 1
        status, metrics = submit_request(url, "/metrics")
        assert metrics["requests_expired"] >= 1

    def test_generous_deadline_answers_normally(self, server):
        _, url = server
        request = {**REQUEST, "deadline_ms": 60_000}
        status, payload = submit_request(url, "/evaluate", payload=request)
        assert status == 200
        # The deadline is client plumbing, not part of the work: it must not
        # have leaked into the result key.
        status, second = submit_request(url, "/evaluate", payload=REQUEST)
        assert second["cached"] is True and second["key"] == payload["key"]

    @pytest.mark.parametrize("deadline", [0, -3, "soon"])
    def test_invalid_deadline_is_rejected(self, server, deadline):
        _, url = server
        request = {**REQUEST, "deadline_ms": deadline}
        status, payload = submit_request(url, "/evaluate", payload=request)
        assert (status, payload["error"]) == (400, "bad_request")


class TestGracefulShutdown:
    def test_stop_flushes_queued_requests_with_retryable_503(self, tmp_path):
        """Queued-but-unstarted requests are answered, never abandoned."""

        async def scenario():
            store = ResultStore(tmp_path / "store")
            service = EvaluationService(store, trace_dir=tmp_path / "corpus")
            service._queue = asyncio.Queue(maxsize=4)
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in range(3)]
            for future in futures:
                service._queue.put_nowait((dict(REQUEST), future, None))
            await service.stop()
            return futures

        futures = asyncio.run(scenario())
        for future in futures:
            exc = future.exception()
            assert isinstance(exc, ServiceError)
            assert (exc.status, exc.code) == (503, "shutting_down")
            assert exc.retry_after == RETRY_AFTER_S

    def test_stopped_server_refuses_new_requests(self, server):
        service, url = server
        service._stopping = True
        try:
            status, payload = submit_request(url, "/evaluate", payload=REQUEST)
            assert (status, payload["error"]) == (503, "shutting_down")
        finally:
            service._stopping = False


class TestRetryAfterPlumbing:
    def test_queue_full_carries_retry_after(self, tmp_path):
        """The 503 path sets Retry-After; the HTTP layer renders it."""
        exc = ServiceError(503, "queue_full", "busy", retry_after=RETRY_AFTER_S)
        assert exc.retry_after == RETRY_AFTER_S

    def test_submit_gives_up_after_exhausting_retries(self):
        # Nothing listens on this port: every attempt fails, the client
        # backs off `retries` times and then reports unreachable.
        started = time.monotonic()
        status, payload = submit_request(
            "http://127.0.0.1:9", "/evaluate", payload=REQUEST,
            timeout=0.2, retries=2, backoff_s=0.01,
        )
        assert status == 0
        assert payload["error"] == "unreachable"
        assert time.monotonic() - started < 30
