"""Chaos property suite: fault-injected runs recover *bit-identically*.

Every test here runs the same workload twice -- once clean and serial (the
reference), once under an installed fault plan on some ``n_jobs x backend``
combination -- and asserts exact ``WriteMetrics`` equality.  The engine's
recovery machinery (pool rebuild + resubmission, per-task transient retry,
the ``task_timeout`` watchdog) must be invisible in the results: submission
-order reduction and per-(unit, chunk) RNG streams survive any number of
restarts.

The test also asserts the fault really *fired* (``injected_counts``), so a
green run cannot mean "the chaos never happened".
"""

import pytest

from repro import faults
from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.evaluation.parallel import ParallelRunner, WorkUnit
from repro.evaluation.runner import evaluate_schemes
from repro.serve.results import ResultStore

#: chunk_size 32 on a 128-line trace -> four shards per unit, so ordinals
#: beyond 1 exist on every matrix point and crash mid-run, not at the edges.
CONFIG = EvaluationConfig(chunk_size=32)
MC_CONFIG = EvaluationConfig(chunk_size=32, sample_disturbance=True, seed=3)

#: The full recovery matrix the issue demands.
MATRIX = [(1, "process"), (1, "thread"), (4, "process"), (4, "thread")]


def _units(trace, config=CONFIG):
    return [
        WorkUnit(name, make_scheme(name), trace, config)
        for name in ("baseline", "wlcrc-16", "fnw")
    ]


@pytest.fixture(scope="module")
def reference(gcc_trace):
    """Clean serial results every chaos run must reproduce exactly."""
    trace = gcc_trace[:128]
    return {
        "plain": ParallelRunner(n_jobs=1).run(_units(trace)),
        "mc": ParallelRunner(n_jobs=1).run(_units(trace, MC_CONFIG)),
    }


def _chaos_run(trace, plan, n_jobs, backend, config=CONFIG, **runner_kwargs):
    faults.install(plan)
    runner = ParallelRunner(
        n_jobs=n_jobs, backend=backend, retry_backoff_s=0.001, **runner_kwargs
    )
    return runner.run(_units(trace, config))


@pytest.mark.parametrize("n_jobs, backend", MATRIX)
class TestCrashRecovery:
    def test_worker_crash_is_bit_identical(self, gcc_trace, reference, n_jobs, backend):
        result = _chaos_run(gcc_trace[:128], "worker-crash@task:2", n_jobs, backend)
        assert faults.injected_counts() == {"task": 1}
        assert result == reference["plain"]

    def test_crash_preserves_sampled_rng_streams(
        self, gcc_trace, reference, n_jobs, backend
    ):
        """Monte-Carlo disturbance draws must survive a mid-run restart."""
        result = _chaos_run(
            gcc_trace[:128], "worker-crash@task:3", n_jobs, backend, config=MC_CONFIG
        )
        assert faults.injected_counts() == {"task": 1}
        assert result == reference["mc"]

    def test_two_crashes_in_one_run(self, gcc_trace, reference, n_jobs, backend):
        result = _chaos_run(
            gcc_trace[:128], "worker-crash@task:1,worker-crash@task:4", n_jobs, backend
        )
        assert faults.injected_counts() == {"task": 2}
        assert faults.active_injector().pending() == ()
        assert result == reference["plain"]


@pytest.mark.parametrize("n_jobs, backend", MATRIX)
def test_hang_watchdog_recovers_bit_identical(gcc_trace, reference, n_jobs, backend):
    """A stalled worker trips the ``task_timeout`` watchdog; results match.

    Serially there is no watchdog -- the injected 0.4s stall just elapses
    inline -- which is exactly the contract: fault plans may slow a run
    down, never change its output.
    """
    result = _chaos_run(
        gcc_trace[:128],
        "worker-hang@task:2:0.4s",
        n_jobs,
        backend,
        task_timeout=0.15,
    )
    assert faults.injected_counts() == {"task": 1}
    assert result == reference["plain"]


def test_attach_failure_is_retried(gcc_trace, reference):
    """A transient zero-copy attach error costs a retry, not the run."""
    result = _chaos_run(
        gcc_trace[:128], "attach-fail@attach:1", 4, "process", transport="shm"
    )
    assert faults.injected_counts() == {"attach": 1}
    assert result == reference["plain"]


def test_evaluate_schemes_end_to_end_under_chaos(gcc_trace):
    """The public helper recovers too (the CLI path minus argument parsing)."""
    encoders = [make_scheme("baseline"), make_scheme("wlcrc-16")]
    trace = gcc_trace[:128]
    clean = evaluate_schemes(encoders, trace, CONFIG)
    faults.install("worker-crash@task:2")
    injected = evaluate_schemes(encoders, trace, CONFIG, n_jobs=4)
    assert faults.injected_counts() == {"task": 1}
    assert injected == clean


class TestStoreCorruptionChaos:
    def test_corrupt_put_heals_on_recomputation(self, tmp_path, gcc_trace, reference):
        """A record corrupted at write time is quarantined at read time and
        the recomputed replacement is bit-identical."""
        trace = gcc_trace[:128]
        store = ResultStore(tmp_path / "store")
        faults.install("store-corrupt@put:1")
        writer = ParallelRunner(n_jobs=1)
        writer.results_store = store
        assert writer.run(_units(trace)) == reference["plain"]
        assert faults.injected_counts() == {"put": 1}
        faults.clear()
        # First re-read quarantines the scribbled record (a miss), the other
        # two entries hit; the rerun still reproduces the reference exactly.
        reader = ParallelRunner(n_jobs=1)
        reader.results_store = store
        assert reader.run(_units(trace)) == reference["plain"]
        assert store.stats()["corrupted"] == 1
        assert list(store.corrupt_dir().iterdir())
        # The healed entry serves hits again.
        assert store.stats()["hits"] >= 2

    def test_corrupt_get_quarantines_and_recovers(self, tmp_path, gcc_trace, reference):
        trace = gcc_trace[:128]
        store = ResultStore(tmp_path / "store")
        writer = ParallelRunner(n_jobs=1)
        writer.results_store = store
        writer.run(_units(trace))
        faults.install("store-corrupt@get:1")
        reader = ParallelRunner(n_jobs=1)
        reader.results_store = store
        assert reader.run(_units(trace)) == reference["plain"]
        assert faults.injected_counts() == {"get": 1}
        assert store.stats()["corrupted"] == 1


class TestDegradationAndLimits:
    def test_unfired_specs_change_nothing(self, gcc_trace, reference):
        """An ordinal past the run's task count simply never fires."""
        result = _chaos_run(gcc_trace[:128], "worker-crash@task:999", 4, "process")
        assert faults.injected_counts() == {}
        assert faults.active_injector().pending() != ()
        assert result == reference["plain"]

    def test_serial_degradation_still_completes(self, gcc_trace, reference):
        """With a zero rebuild budget the engine degrades to serial inline
        execution -- slower, never wrong."""
        result = _chaos_run(
            gcc_trace[:128],
            "worker-crash@task:2",
            4,
            "process",
            max_pool_rebuilds=0,
        )
        assert faults.injected_counts() == {"task": 1}
        assert result == reference["plain"]

    def test_transient_retries_are_bounded(self, gcc_trace):
        """A task that keeps failing transiently exhausts ``task_retries``
        and surfaces the underlying error instead of looping forever."""
        from repro.faults import InjectedWorkerCrash

        def always_crash(value):
            raise InjectedWorkerCrash("unrecoverable by retry")

        runner = ParallelRunner(n_jobs=1, task_retries=1)
        with pytest.raises(InjectedWorkerCrash):
            runner.starmap(always_crash, [(1,)])
