"""Unit tests of the fault-plan grammar and the deterministic injector."""

import os

import pytest

from repro import faults
from repro.faults import (
    DEFAULT_HANG_S,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedTransportError,
    InjectedWorkerCrash,
    TransientError,
)


class TestGrammar:
    def test_parses_the_docstring_example(self):
        plan = FaultPlan.parse(
            "worker-crash@task:7,worker-hang@task:12:30s,"
            "store-corrupt@put:3,conn-drop@evaluate:2"
        )
        assert plan.specs == (
            FaultSpec("worker-crash", "task", 7),
            FaultSpec("worker-hang", "task", 12, duration_s=30.0),
            FaultSpec("store-corrupt", "put", 3),
            FaultSpec("conn-drop", "evaluate", 2),
        )

    @pytest.mark.parametrize(
        "text, duration_s",
        [("250ms", 0.25), ("30s", 30.0), ("1.5", 1.5), ("0s", 0.0)],
    )
    def test_duration_units(self, text, duration_s):
        plan = FaultPlan.parse(f"worker-hang@task:1:{text}")
        assert plan.specs[0].duration_s == duration_s

    def test_hang_defaults_to_thirty_seconds(self):
        plan = FaultPlan.parse("worker-hang@task:2")
        assert plan.specs[0].duration_s == DEFAULT_HANG_S

    def test_render_round_trips(self):
        text = "worker-crash@task:7,worker-hang@task:12:0.25s,store-corrupt@get:1"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.render()) == plan

    def test_blank_entries_and_whitespace_are_tolerated(self):
        plan = FaultPlan.parse(" worker-crash@task:1 , ,attach-fail@attach:2,")
        assert [spec.kind for spec in plan.specs] == ["worker-crash", "attach-fail"]

    @pytest.mark.parametrize(
        "text",
        [
            "explode@task:1",            # unknown kind
            "worker-crash@put:1",        # site not valid for the kind
            "worker-crash@task",         # no ordinal
            "worker-crash@task:zero",    # non-integer ordinal
            "worker-crash@task:0",       # ordinals are 1-based
            "worker-crash@task:1:5s",    # only hangs take a duration
            "worker-hang@task:1:soon",   # unparseable duration
            "worker-hang@task:1:-2s",    # negative duration
            "worker-crash",              # no site at all
        ],
    )
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(faults.FAULTS_ENV, "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(faults.FAULTS_ENV, "conn-drop@evaluate:1")
        assert FaultPlan.from_env().specs[0].kind == "conn-drop"


class TestInjector:
    def test_fires_at_the_exact_ordinal_and_only_once(self):
        injector = FaultInjector(FaultPlan.parse("worker-crash@task:3"))
        assert injector.take("task") is None
        assert injector.take("task") is None
        action = injector.take("task")
        assert action == FaultAction("worker-crash", 0.0, parent_pid=os.getpid())
        # The spec is consumed: ordinal 3 of a fresh counter cycle never
        # re-fires, no matter how many more invocations happen.
        assert all(injector.take("task") is None for _ in range(10))
        assert injector.pending() == ()
        assert injector.injected_counts() == {"task": 1}

    def test_sites_count_independently(self):
        injector = FaultInjector(FaultPlan.parse("store-corrupt@get:2"))
        assert injector.take("put") is None
        assert injector.take("get") is None
        assert injector.take("put") is None
        assert injector.take("get").kind == "store-corrupt"

    def test_same_schedule_every_time(self):
        plan = FaultPlan.parse("worker-crash@task:2,attach-fail@attach:1")
        schedules = []
        for _ in range(3):
            injector = FaultInjector(plan)
            fired = [
                site
                for site in ("task", "attach", "task", "task")
                if injector.take(site) is not None
            ]
            schedules.append(fired)
        assert schedules == [["attach", "task"]] * 3


class TestInstallation:
    def test_install_and_clear(self):
        injector = faults.install("worker-crash@task:1")
        assert faults.active_injector() is injector
        assert faults.take("task").kind == "worker-crash"
        assert faults.injected_counts() == {"task": 1}
        faults.clear()
        assert faults.take("task") is None
        assert faults.injected_counts() == {}

    def test_env_adopted_lazily_after_clear(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "conn-drop@evaluate:1")
        faults.clear()
        injector = faults.active_injector()
        assert injector is not None
        assert injector.plan.specs[0].kind == "conn-drop"

    def test_explicit_none_beats_the_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "conn-drop@evaluate:1")
        faults.clear()
        faults.install(None)
        assert faults.active_injector() is None

    def test_install_rejects_bad_plans(self):
        with pytest.raises(FaultPlanError):
            faults.install("nonsense")


class TestExecute:
    def test_crash_inline_raises_a_retryable_error(self):
        action = FaultAction("worker-crash", parent_pid=os.getpid())
        with pytest.raises(InjectedWorkerCrash):
            faults.execute(action)
        assert issubclass(InjectedWorkerCrash, TransientError)

    def test_attach_fail_raises_transport_error(self):
        with pytest.raises(InjectedTransportError):
            faults.execute(FaultAction("attach-fail"))

    def test_hang_returns_after_its_duration(self):
        faults.execute(FaultAction("worker-hang", duration_s=0.0))

    def test_corrupt_file_defeats_json(self, tmp_path):
        import json

        path = tmp_path / "record.json"
        path.write_text("{\"fine\": true}")
        faults.corrupt_file(path)
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text(errors="replace"))
