"""Cross-cutting property-based tests over all encoding schemes.

These are the library's core invariants:

* every scheme decodes what it encoded (losslessness);
* differential write never charges energy for an unchanged line;
* energy, updated cells and disturbance errors are never negative;
* the per-request energy equals the sum over rewritten cells of the state
  energies (conservation between the encoder output and the metrics layer).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import available_schemes, make_scheme
from repro.core.line import LineBatch
from repro.evaluation.runner import metrics_from_encoded

#: Schemes cheap enough to exercise inside hypothesis loops.
FAST_SCHEMES = [
    "baseline",
    "fnw",
    "flipmin",
    "6cosets",
    "4cosets",
    "3-r-cosets-16",
    "wlc+4cosets",
    "wlcrc-16",
]
#: All schemes, including the slow per-line ones (used outside hypothesis).
ALL_SCHEMES = available_schemes()


def _compressible_words(rng, n):
    words = rng.integers(0, 2**57, size=(n, 8), dtype=np.uint64)
    negative = rng.random((n, 8)) < 0.5
    return np.where(negative, words | np.uint64(0xFC00_0000_0000_0000), words)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_roundtrip_on_benchmark_lines(scheme, biased_lines):
    """Losslessness: decode(encode(x)) == x on benchmark-like content."""
    encoder = make_scheme(scheme)
    subset = biased_lines[:16]
    assert encoder.roundtrip(subset) == subset


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_roundtrip_on_random_lines(scheme, random_lines):
    """Losslessness on adversarial (incompressible) content."""
    encoder = make_scheme(scheme)
    subset = random_lines[:8]
    assert encoder.roundtrip(subset) == subset


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_rewriting_identical_data_is_free(scheme, biased_lines):
    """Differential write: rewriting the same value must cost nothing."""
    encoder = make_scheme(scheme)
    subset = biased_lines[:12]
    encoded = encoder.encode_batch(subset, subset)
    metrics = metrics_from_encoded(encoded, encoder)
    assert metrics.total_energy_pj == 0.0
    assert metrics.updated_cells == 0.0
    assert metrics.disturbance_errors == 0.0


@pytest.mark.parametrize("scheme", FAST_SCHEMES)
def test_metrics_are_non_negative_and_consistent(scheme, gcc_trace):
    """Energy/endurance/disturbance metrics are non-negative and self-consistent."""
    encoder = make_scheme(scheme)
    encoded = encoder.encode_batch(gcc_trace.new[:48], gcc_trace.old[:48])
    metrics = metrics_from_encoded(encoded, encoder)
    assert metrics.total_energy_pj >= 0
    assert metrics.updated_cells >= 0
    assert metrics.disturbance_errors >= 0
    recomputed = encoder.energy_model.cell_write_energy(encoded.states, encoded.changed).sum()
    assert metrics.total_energy_pj == pytest.approx(recomputed)
    assert metrics.updated_cells <= encoded.total_cells * 48


@pytest.mark.parametrize("scheme", FAST_SCHEMES)
def test_encoding_is_deterministic(scheme, gcc_trace):
    """Encoding the same batch twice produces identical cell states."""
    encoder = make_scheme(scheme)
    first = encoder.encode_batch(gcc_trace.new[:16], gcc_trace.old[:16])
    second = encoder.encode_batch(gcc_trace.new[:16], gcc_trace.old[:16])
    assert np.array_equal(first.states, second.states)


@given(st.integers(min_value=0, max_value=2**63 - 1), st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_wlcrc_roundtrips_arbitrary_compressible_lines(seed, count):
    """Property: WLCRC-16 round-trips any WLC-compressible line content."""
    rng = np.random.default_rng(seed)
    lines = LineBatch(_compressible_words(rng, count))
    encoder = make_scheme("wlcrc-16")
    assert encoder.roundtrip(lines) == lines


@given(st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=20, deadline=None)
def test_fast_schemes_roundtrip_arbitrary_lines(seed):
    """Property: every fast scheme round-trips arbitrary random lines."""
    rng = np.random.default_rng(seed)
    lines = LineBatch(rng.integers(0, 2**64, size=(2, 8), dtype=np.uint64))
    for scheme in ("baseline", "fnw", "flipmin", "4cosets", "3-r-cosets-16", "wlcrc-16"):
        encoder = make_scheme(scheme)
        assert encoder.roundtrip(lines) == lines


@given(st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=10, deadline=None)
def test_wlcrc_data_region_never_exceeds_baseline_on_fresh_writes(seed):
    """Property: on fresh cells WLCRC's data-region energy never exceeds baseline's.

    Candidate C1 (the identity mapping) is always available for every block, so
    the per-block minimum chosen by Algorithm 1 can never cost more than the
    baseline's default mapping over the same (coset-encoded) cells.  The
    reclaimed auxiliary cells are excluded: their content is replaced by the
    selector bits, so they are not comparable cell-for-cell.
    """
    rng = np.random.default_rng(seed)
    lines = LineBatch(_compressible_words(rng, 4))
    baseline = make_scheme("baseline")
    wlcrc = make_scheme("wlcrc-16")
    weights = baseline.energy_model.write_energy_per_state
    base_states = baseline.encode_reference(lines)
    wlcrc_states = wlcrc.encode_reference(lines)[:, :256]
    data_mask = ~np.tile(wlcrc.word_aux_mask(), 8)
    base_cost = (weights[base_states] * (base_states != 0) * data_mask).sum()
    wlcrc_cost = (weights[wlcrc_states] * (wlcrc_states != 0) * data_mask).sum()
    assert wlcrc_cost <= base_cost + 1e-6
