"""Tests of the generated CLI reference and the docs link checker."""

import os

from repro.docsgen import check_links, generate_cli_reference


class TestCliReference:
    def test_deterministic_and_columns_independent(self):
        """Regenerate-and-diff in CI must not flap with terminal width."""
        saved = os.environ.get("COLUMNS")
        try:
            os.environ["COLUMNS"] = "60"
            narrow = generate_cli_reference()
            os.environ["COLUMNS"] = "200"
            wide = generate_cli_reference()
        finally:
            if saved is None:
                os.environ.pop("COLUMNS", None)
            else:
                os.environ["COLUMNS"] = saved
        assert narrow == wide
        assert narrow == generate_cli_reference()

    def test_documents_every_noncollapsed_subcommand(self):
        import argparse

        from repro.cli import EXPERIMENTS, _build_parser

        reference = generate_cli_reference()
        parser = _build_parser()
        action = next(
            a
            for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        for name in action.choices:
            if name in EXPERIMENTS:
                assert f"`wlcrc-repro {name}`" in reference  # listed in the group
            else:
                assert f"## `wlcrc-repro {name}`" in reference, name

    def test_collapses_experiment_aliases_into_one_section(self):
        from repro.cli import EXPERIMENTS

        reference = generate_cli_reference()
        assert "## experiment commands" in reference
        # No alias gets its own section; the shared option table appears once.
        for name in EXPERIMENTS:
            assert f"## `wlcrc-repro {name}`" not in reference

    def test_flags_of_new_subcommands_present(self):
        reference = generate_cli_reference()
        for flag in ("--results-dir", "--queue-size", "--trace-digest", "--check"):
            assert flag in reference

    def test_matches_committed_docs_page(self):
        """``docs/cli.md`` is generated; CI fails when it drifts."""
        from pathlib import Path

        committed = Path(__file__).resolve().parents[1] / "docs" / "cli.md"
        assert committed.read_text() == generate_cli_reference()


class TestLinkChecker:
    def _docs(self, tmp_path, text, name="page.md"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_clean_relative_links_and_anchors(self, tmp_path):
        (tmp_path / "other.md").write_text("# Other Page\n\n## A `code` heading\n")
        page = self._docs(
            tmp_path,
            "# Page\n\n[other](other.md) [deep](other.md#a-code-heading)\n"
            "[self](#page) [ext](https://example.com/x)\n",
        )
        assert check_links([page, tmp_path / "other.md"]) == []

    def test_broken_file_and_anchor_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Other\n")
        page = self._docs(
            tmp_path,
            "[gone](missing.md) [bad](other.md#nope) [worse](#absent)\n",
        )
        problems = check_links([page])
        assert len(problems) == 3
        assert any("missing.md" in p for p in problems)
        assert any("other.md#nope" in p for p in problems)
        assert any("#absent" in p for p in problems)

    def test_links_inside_code_fences_ignored(self, tmp_path):
        page = self._docs(
            tmp_path, "# P\n\n```md\n[fake](not-a-file.md)\n```\n"
        )
        assert check_links([page]) == []

    def test_repo_docs_are_clean(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        paths = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
        assert check_links(paths) == []
