"""Tests of the analytical hardware-overhead model."""

import pytest

from repro.core.errors import ConfigurationError
from repro.hardware.synthesis import (
    REFERENCE_AREA_MM2,
    REFERENCE_READ_DELAY_NS,
    REFERENCE_READ_ENERGY_PJ,
    REFERENCE_WRITE_DELAY_NS,
    REFERENCE_WRITE_ENERGY_PJ,
    WLCRCSynthesisModel,
)


class TestReferencePoint:
    def test_wlcrc16_reproduces_published_numbers(self):
        estimate = WLCRCSynthesisModel().estimate(16)
        assert estimate.area_mm2 == pytest.approx(REFERENCE_AREA_MM2)
        assert estimate.write_delay_ns == pytest.approx(REFERENCE_WRITE_DELAY_NS)
        assert estimate.read_delay_ns == pytest.approx(REFERENCE_READ_DELAY_NS)
        assert estimate.write_energy_pj == pytest.approx(REFERENCE_WRITE_ENERGY_PJ)
        assert estimate.read_energy_pj == pytest.approx(REFERENCE_READ_ENERGY_PJ)

    def test_paper_overhead_claims(self):
        """Section VI-B: area and energy overheads are negligible."""
        estimate = WLCRCSynthesisModel().estimate(16)
        assert estimate.area_overhead_fraction < 0.01
        assert estimate.write_energy_overhead_fraction < 0.001


class TestScaling:
    def test_finer_granularity_costs_more_area_and_energy(self):
        model = WLCRCSynthesisModel()
        estimates = {g: model.estimate(g) for g in (8, 16, 32, 64)}
        assert estimates[8].area_mm2 > estimates[16].area_mm2 > estimates[32].area_mm2
        assert estimates[8].write_energy_pj > estimates[64].write_energy_pj
        assert estimates[8].write_delay_ns >= estimates[64].write_delay_ns

    def test_wlc_front_end_is_constant(self):
        model = WLCRCSynthesisModel()
        for granularity in (8, 16, 32, 64):
            estimate = model.estimate(granularity)
            assert estimate.wlc_area_mm2 == pytest.approx(0.0002)
            assert estimate.wlc_delay_ns == pytest.approx(0.13)

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            WLCRCSynthesisModel().estimate(48)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            WLCRCSynthesisModel(encoder_modules=0)


class TestOverheadTable:
    def test_table_columns(self):
        table = WLCRCSynthesisModel().overhead_table()
        assert set(table) == {8, 16, 32, 64}
        for row in table.values():
            assert {"area_mm2", "write_delay_ns", "write_energy_pj", "area_overhead_pct"} <= set(row)
