"""Shared fixtures for the test suite.

Fixtures keep trace sizes small so the whole suite runs in well under a
minute; the statistical assertions in the evaluation tests are written
against those small sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.line import LineBatch
from repro.workloads.generator import generate_benchmark_trace, generate_random_trace


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def gcc_trace():
    """A small synthetic gcc trace shared by the scheme/evaluation tests."""
    return generate_benchmark_trace("gcc", length=200, seed=7)


@pytest.fixture(scope="session")
def libq_trace():
    """A small synthetic libquantum (LMI) trace."""
    return generate_benchmark_trace("libq", length=200, seed=7)


@pytest.fixture(scope="session")
def random_trace_small():
    """A small uniformly random trace (the paper's random workload)."""
    return generate_random_trace(length=128, seed=11)


@pytest.fixture(scope="session")
def biased_lines(gcc_trace) -> LineBatch:
    """Biased (benchmark-like) memory lines."""
    return gcc_trace.new


@pytest.fixture(scope="session")
def random_lines(random_trace_small) -> LineBatch:
    """Uniformly random memory lines."""
    return random_trace_small.new


@pytest.fixture(scope="session")
def compressible_lines(rng) -> LineBatch:
    """Lines guaranteed to be WLC-compressible at k = 6 (top 6 bits identical)."""
    words = rng.integers(0, 2**57, size=(64, 8), dtype=np.uint64)
    ones = np.uint64(0xFC00_0000_0000_0000)
    make_negative = rng.random((64, 8)) < 0.3
    words = np.where(make_negative, words | ones, words)
    return LineBatch(words)


@pytest.fixture(scope="session")
def incompressible_lines(rng) -> LineBatch:
    """Lines guaranteed NOT to be WLC-compressible at k = 6."""
    words = rng.integers(0, 2**64, size=(32, 8), dtype=np.uint64)
    # Force a '10' pattern into the top bits of word 0 of every line.
    words[:, 0] = (words[:, 0] & np.uint64(0x3FFF_FFFF_FFFF_FFFF)) | np.uint64(
        0x8000_0000_0000_0000
    )
    return LineBatch(words)
