"""Tests of the multi-core cache hierarchy and access-stream generation."""

import numpy as np
import pytest

from repro.cache.hierarchy import (
    CacheHierarchy,
    MemoryAccess,
    generate_access_stream,
    trace_from_profile,
)
from repro.core.config import CPUConfig
from repro.workloads.profiles import get_profile


class TestMemoryAccess:
    def test_store_detection(self):
        load = MemoryAccess(core=0, line_address=1)
        store = MemoryAccess(core=0, line_address=1, write_data=np.zeros(8, dtype=np.uint64))
        assert not load.is_store
        assert store.is_store


class TestHierarchy:
    def test_per_core_routing(self):
        hierarchy = CacheHierarchy(CPUConfig(cores=2, l2_size_kib=8))
        hierarchy.access(MemoryAccess(core=0, line_address=0))
        hierarchy.access(MemoryAccess(core=1, line_address=0))
        stats = hierarchy.statistics()
        assert stats[0].accesses == 1
        assert stats[1].accesses == 1

    def test_invalid_core(self):
        hierarchy = CacheHierarchy(CPUConfig(cores=2, l2_size_kib=8))
        with pytest.raises(ValueError):
            hierarchy.access(MemoryAccess(core=5, line_address=0))

    def test_run_produces_writeback_trace(self):
        config = CPUConfig(cores=2, l2_size_kib=8)
        hierarchy = CacheHierarchy(config)
        profile = get_profile("gcc")
        stream = generate_access_stream(profile, accesses=2000, cores=2, working_set_lines=512, seed=1)
        trace = hierarchy.run(stream)
        assert len(trace) > 0
        assert trace.addresses is not None
        assert len(trace.old) == len(trace.new)

    def test_empty_run(self):
        hierarchy = CacheHierarchy(CPUConfig(cores=1, l2_size_kib=8))
        assert len(hierarchy.run([])) == 0


class TestAccessStream:
    def test_stream_shape_and_determinism(self):
        profile = get_profile("libq")
        a = generate_access_stream(profile, accesses=500, seed=3)
        b = generate_access_stream(profile, accesses=500, seed=3)
        assert len(a) == 500
        assert [x.line_address for x in a] == [x.line_address for x in b]

    def test_store_fraction_respected(self):
        profile = get_profile("libq")
        stream = generate_access_stream(profile, accesses=2000, store_fraction=0.3, seed=5)
        fraction = sum(1 for access in stream if access.is_store) / len(stream)
        assert 0.2 < fraction < 0.4


class TestEndToEnd:
    def test_trace_from_profile(self):
        trace, stats = trace_from_profile("gcc", accesses=3000, seed=2)
        assert len(trace) > 0
        assert any(s.accesses > 0 for s in stats)

    def test_writebacks_feed_the_evaluator(self):
        from repro.coding import make_scheme
        from repro.evaluation.runner import evaluate_trace

        trace, _ = trace_from_profile("libq", accesses=2000, seed=4)
        metrics = evaluate_trace(make_scheme("baseline"), trace)
        assert metrics.requests == len(trace)
