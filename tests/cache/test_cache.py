"""Tests of the write-back cache model."""

import numpy as np
import pytest

from repro.cache.cache import WriteBackCache
from repro.core.errors import SimulationError


def _small_cache():
    # 4 sets x 2 ways x 64-byte lines.
    return WriteBackCache(size_bytes=4 * 2 * 64, ways=2)


def _line(value):
    return np.full(8, value, dtype=np.uint64)


class TestBasics:
    def test_geometry_validation(self):
        with pytest.raises(SimulationError):
            WriteBackCache(size_bytes=1000, ways=3)

    def test_miss_then_hit(self):
        cache = _small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_clean_eviction_produces_no_writeback(self):
        cache = _small_cache()
        # Three loads mapping to the same set evict a clean line.
        for address in (0, 4, 8):
            cache.access(address)
        assert cache.stats.evictions == 1
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_produces_writeback(self):
        cache = _small_cache()
        cache.access(0, _line(7))
        cache.access(4)
        transaction = cache.access(8)
        assert cache.stats.writebacks == 1
        assert transaction is not None
        address, old, new = transaction
        assert address == 0
        assert np.array_equal(new, _line(7))
        assert old.sum() == 0  # memory held zeros before

    def test_silent_store_does_not_dirty_line(self):
        cache = _small_cache()
        cache.access(0, _line(0))     # writing the value memory already holds
        cache.access(4)
        cache.access(8)
        assert cache.stats.writebacks == 0


class TestWritebackData:
    def test_second_eviction_sees_previous_writeback(self):
        cache = _small_cache()
        cache.access(0, _line(7))
        cache.flush()
        cache.access(0, _line(9))
        transactions = cache.flush()
        assert len(transactions) == 1
        _, old, new = transactions[0]
        assert np.array_equal(old, _line(7))
        assert np.array_equal(new, _line(9))

    def test_lru_replacement(self):
        cache = _small_cache()
        cache.access(0, _line(1))
        cache.access(4, _line(2))
        cache.access(0)          # touch address 0 so address 4 becomes LRU
        transaction = cache.access(8, _line(3))
        assert transaction is not None and transaction[0] == 4

    def test_writeback_trace_packaging(self):
        cache = _small_cache()
        cache.access(0, _line(5))
        cache.access(4, _line(6))
        cache.flush()
        trace = cache.writeback_trace()
        assert len(trace) == 2
        assert trace.addresses is not None

    def test_empty_trace(self):
        assert len(_small_cache().writeback_trace()) == 0
