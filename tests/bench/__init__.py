"""Test package (unique basenames require package-qualified module names)."""
