"""Shard runner + merge: discovery, byte-identity, idempotence, failures."""

import json

import pytest

from repro.bench.manifest import MANIFEST_NAME, merge_shards
from repro.bench.registry import discover
from repro.bench.runner import run_shard
from repro.core.errors import BenchError

#: A two-figure fixture suite: deterministic tables plus one perf artifact
#: (whose content differs between runs, like a real wall-clock measurement).
BENCH_ALPHA = '''
from repro.bench import BenchSpec, run_once, write_json, write_result

BENCHMARK = BenchSpec(
    figure="alpha",
    title="Alpha fixture figure",
    cost=2.0,
    artifacts=("alpha.txt",),
    perf_artifacts=("BENCH_alpha.json",),
)

_COUNTER = iter(range(10**9))


def bench_alpha(benchmark):
    table = run_once(benchmark, lambda: "alpha-table")
    write_result("alpha", table)
    write_json("alpha", {"value": 1, "nondeterministic": next(_COUNTER)})
'''

BENCH_BETA = '''
from repro.bench import BenchSpec, run_once, write_result

BENCHMARK = BenchSpec(
    figure="beta",
    title="Beta fixture figure",
    cost=1.0,
    artifacts=("beta.txt",),
)


def bench_beta(benchmark, experiment_config):
    table = run_once(benchmark, lambda: f"beta {experiment_config.trace_length}")
    write_result("beta", table)
'''


@pytest.fixture()
def bench_dir(tmp_path):
    directory = tmp_path / "benchsuite"
    directory.mkdir()
    (directory / "bench_alpha.py").write_text(BENCH_ALPHA)
    (directory / "bench_beta.py").write_text(BENCH_BETA)
    return directory


class TestDiscovery:
    def test_discovers_specs_and_functions(self, bench_dir):
        registry = discover(bench_dir)
        assert list(registry) == ["alpha", "beta"]
        alpha = registry["alpha"].spec
        assert alpha.name == "alpha"
        assert alpha.module == "bench_alpha.py"
        assert alpha.group == "alpha"
        assert alpha.all_artifacts == ("alpha.txt", "BENCH_alpha.json")
        assert [name for name, _ in registry["beta"].functions] == ["bench_beta"]

    def test_module_without_spec_is_rejected(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / "bench_nospec.py").write_text("def bench_x(benchmark): pass\n")
        with pytest.raises(BenchError, match="BENCHMARK"):
            discover(directory)

    def test_duplicate_artifact_owners_rejected(self, tmp_path):
        directory = tmp_path / "dup"
        directory.mkdir()
        module = (
            "from repro.bench import BenchSpec\n"
            "BENCHMARK = BenchSpec(figure='x', title='x', cost=1.0, "
            "artifacts=('same.txt',))\n"
            "def bench_x(benchmark): pass\n"
        )
        (directory / "bench_one.py").write_text(module)
        (directory / "bench_two.py").write_text(module)
        with pytest.raises(BenchError, match="same.txt"):
            discover(directory)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="not found"):
            discover(tmp_path / "nowhere")


class TestRunShard:
    def test_unsharded_run_writes_record_and_manifest(self, bench_dir, tmp_path):
        results = tmp_path / "results"
        report = run_shard(bench_dir=bench_dir, results_dir=results)
        assert not report.failures
        assert sorted(report.names) == ["alpha", "beta"]
        assert (results / "alpha.txt").read_text() == "alpha-table\n"
        assert (results / "BENCH_shard_1of1.json").is_file()
        assert (results / MANIFEST_NAME).is_file()
        record = json.loads((results / "BENCH_shard_1of1.json").read_text())
        assert record["shard"] == {"index": 1, "count": 1}
        assert set(record["benches"]) == {"alpha", "beta"}
        assert all(
            entry["status"] == "passed" for entry in record["benches"].values()
        )

    def test_sharded_run_covers_its_slice_only(self, bench_dir, tmp_path):
        results = tmp_path / "shard1"
        report = run_shard(bench_dir=bench_dir, shard=(1, 2), results_dir=results)
        assert not report.failures
        assert report.names == ["alpha"]  # the heavier bench goes first
        assert (results / "alpha.txt").is_file()
        assert not (results / "beta.txt").exists()
        assert not (results / MANIFEST_NAME).exists()

    def test_failing_bench_is_reported_and_blocks_manifest(self, tmp_path):
        directory = tmp_path / "failing"
        directory.mkdir()
        (directory / "bench_boom.py").write_text(
            "from repro.bench import BenchSpec\n"
            "BENCHMARK = BenchSpec(figure='boom', title='boom', cost=1.0,\n"
            "                      artifacts=('boom.txt',))\n"
            "def bench_boom(benchmark):\n"
            "    raise RuntimeError('kaboom')\n"
        )
        results = tmp_path / "results"
        report = run_shard(bench_dir=directory, results_dir=results)
        assert [outcome.name for outcome in report.failures] == ["boom"]
        assert "kaboom" in report.failures[0].error
        assert not (results / MANIFEST_NAME).exists()

    def test_stale_artifacts_do_not_mask_a_vanished_writer(self, tmp_path):
        # First run writes the artifact; then the module is edited to stop
        # writing it. Discovery must pick up the edited file (no stale module
        # cache) and the rerun must fail instead of passing -- and
        # checksumming -- last run's file.
        directory = tmp_path / "suite"
        directory.mkdir()
        module = directory / "bench_fickle.py"
        module.write_text(
            "from repro.bench import BenchSpec, write_result\n"
            "BENCHMARK = BenchSpec(figure='fickle', title='f', cost=1.0,\n"
            "                      artifacts=('fickle.txt',))\n"
            "def bench_fickle(benchmark):\n"
            "    write_result('fickle', 'table')\n"
        )
        results = tmp_path / "results"
        assert not run_shard(bench_dir=directory, results_dir=results).failures
        assert (results / "fickle.txt").is_file()

        import os
        import time

        module.write_text(
            "from repro.bench import BenchSpec\n"
            "BENCHMARK = BenchSpec(figure='fickle', title='f', cost=1.0,\n"
            "                      artifacts=('fickle.txt',))\n"
            "def bench_fickle(benchmark):\n"
            "    pass\n"
        )
        # Force a distinct mtime even on coarse-grained filesystems.
        stamp = time.time() + 10
        os.utime(module, (stamp, stamp))
        report = run_shard(bench_dir=directory, results_dir=results)
        assert report.failures
        assert "fickle.txt" in report.failures[0].error
        assert not (results / "fickle.txt").exists()

    def test_undeclared_artifact_fails_the_bench(self, tmp_path):
        directory = tmp_path / "liar"
        directory.mkdir()
        (directory / "bench_liar.py").write_text(
            "from repro.bench import BenchSpec\n"
            "BENCHMARK = BenchSpec(figure='liar', title='liar', cost=1.0,\n"
            "                      artifacts=('never_written.txt',))\n"
            "def bench_liar(benchmark): pass\n"
        )
        report = run_shard(bench_dir=directory, results_dir=tmp_path / "results")
        assert report.failures
        assert "never_written.txt" in report.failures[0].error


class TestMergeByteIdentity:
    def test_sharded_merge_equals_unsharded_manifest(self, bench_dir, tmp_path):
        full = tmp_path / "full"
        run_shard(bench_dir=bench_dir, results_dir=full)

        shard_dirs = []
        for index in (1, 2):
            shard_results = tmp_path / f"shard{index}"
            report = run_shard(
                bench_dir=bench_dir, shard=(index, 2), results_dir=shard_results
            )
            assert not report.failures
            shard_dirs.append(shard_results)

        merged = tmp_path / "merged"
        merge_shards(shard_dirs, merged, bench_dir=bench_dir)
        assert (merged / MANIFEST_NAME).read_bytes() == (
            full / MANIFEST_NAME
        ).read_bytes()
        # Perf artifacts travel along but are never checksummed.
        manifest = json.loads((merged / MANIFEST_NAME).read_text())
        artifacts = manifest["benchmarks"]["alpha"]["artifacts"]
        assert artifacts["BENCH_alpha.json"] is None
        assert artifacts["alpha.txt"].startswith("sha256:")

    def test_merge_is_idempotent(self, bench_dir, tmp_path):
        shard_dirs = []
        for index in (1, 2):
            shard_results = tmp_path / f"shard{index}"
            run_shard(bench_dir=bench_dir, shard=(index, 2), results_dir=shard_results)
            shard_dirs.append(shard_results)
        merged = tmp_path / "merged"
        merge_shards(shard_dirs, merged, bench_dir=bench_dir)
        first = (merged / MANIFEST_NAME).read_bytes()

        # Merging the merged directory again reproduces the same bytes,
        # into a fresh directory or onto itself.
        again = tmp_path / "again"
        merge_shards([merged], again, bench_dir=bench_dir)
        assert (again / MANIFEST_NAME).read_bytes() == first
        merge_shards([merged], merged, bench_dir=bench_dir)
        assert (merged / MANIFEST_NAME).read_bytes() == first


class TestMergeValidation:
    def test_incomplete_coverage_rejected(self, bench_dir, tmp_path):
        shard1 = tmp_path / "shard1"
        run_shard(bench_dir=bench_dir, shard=(1, 2), results_dir=shard1)
        with pytest.raises(BenchError, match="missing: beta"):
            merge_shards([shard1], tmp_path / "merged", bench_dir=bench_dir)

    def test_duplicate_bench_rejected(self, bench_dir, tmp_path):
        full1 = tmp_path / "full1"
        full2 = tmp_path / "full2"
        run_shard(bench_dir=bench_dir, results_dir=full1)
        run_shard(bench_dir=bench_dir, results_dir=full2)
        # Rename one record so both survive the glob in distinct files.
        (full2 / "BENCH_shard_1of1.json").rename(full2 / "BENCH_shard_2of2.json")
        with pytest.raises(BenchError, match="more than one shard"):
            merge_shards([full1, full2], tmp_path / "merged", bench_dir=bench_dir)

    def test_config_mismatch_rejected(self, bench_dir, tmp_path, monkeypatch):
        shard1 = tmp_path / "shard1"
        shard2 = tmp_path / "shard2"
        run_shard(bench_dir=bench_dir, shard=(1, 2), results_dir=shard1)
        monkeypatch.setenv("REPRO_BENCH_TRACE_LEN", "77")
        run_shard(bench_dir=bench_dir, shard=(2, 2), results_dir=shard2)
        with pytest.raises(BenchError, match="refusing to merge"):
            merge_shards([shard1, shard2], tmp_path / "merged", bench_dir=bench_dir)

    def test_no_records_rejected(self, bench_dir, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(BenchError, match="no shard records"):
            merge_shards([empty], tmp_path / "merged", bench_dir=bench_dir)
