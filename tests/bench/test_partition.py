"""Tests of the deterministic cost-balanced shard partitioning."""

import pytest

from repro.bench.partition import parse_shard, partition, shard_names
from repro.bench.registry import BenchSpec, DiscoveredBench
from repro.core.errors import BenchError


def _registry(specs):
    return {
        spec.name: DiscoveredBench(spec=spec, path=None, functions=(("bench_x", lambda: None),))
        for spec in specs
    }


def _spec(name, cost, group=""):
    return BenchSpec(
        figure=name,
        title=name,
        cost=cost,
        name=name,
        module=f"bench_{name}.py",
        group=group or name,
    )


REGISTRY = _registry(
    [
        _spec("a", 20.0),
        _spec("b", 9.0),
        _spec("c", 6.0),
        _spec("d", 5.0),
        _spec("e", 4.0),
        _spec("f", 2.0),
        _spec("g", 1.0),
        _spec("h", 0.5),
    ]
)


class TestParseShard:
    def test_parses_valid_selectors(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard(" 3/3 ") == (3, 3)

    @pytest.mark.parametrize("text", ["", "0/4", "5/4", "1/0", "-1/4", "a/b", "1", "1/2/3"])
    def test_rejects_invalid_selectors(self, text):
        with pytest.raises(BenchError):
            parse_shard(text)


class TestPartition:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 5, 8, 11])
    def test_every_bench_in_exactly_one_shard(self, n_shards):
        shards = partition(REGISTRY, n_shards)
        assert len(shards) == n_shards
        flattened = [name for shard in shards for name in shard]
        assert sorted(flattened) == sorted(REGISTRY)
        assert len(flattened) == len(set(flattened))

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7])
    def test_partition_is_deterministic(self, n_shards):
        first = partition(REGISTRY, n_shards)
        for _ in range(3):
            assert partition(REGISTRY, n_shards) == first
        # Insertion order of the registry must not matter.
        reversed_registry = dict(reversed(list(REGISTRY.items())))
        assert partition(reversed_registry, n_shards) == first

    def test_costs_are_balanced(self):
        shards = partition(REGISTRY, 2)
        loads = [
            sum(REGISTRY[name].spec.cost for name in shard) for shard in shards
        ]
        total = sum(loads)
        # Greedy bin-packing on this spread keeps both halves within 30 %.
        assert max(loads) <= 0.65 * total

    def test_groups_stay_together(self):
        registry = _registry(
            [
                _spec("big", 20.0),
                _spec("primer", 10.0, group="family"),
                _spec("reader1", 0.5, group="family"),
                _spec("reader2", 0.5, group="family"),
                _spec("other", 9.0),
            ]
        )
        for n_shards in (2, 3, 4):
            shards = partition(registry, n_shards)
            family_shards = [
                index
                for index, shard in enumerate(shards)
                if any(name in ("primer", "reader1", "reader2") for name in shard)
            ]
            assert len(family_shards) == 1
            # Name order puts the cache-priming member first.
            members = [
                name
                for name in shards[family_shards[0]]
                if name in ("primer", "reader1", "reader2")
            ]
            assert members == ["primer", "reader1", "reader2"]

    def test_more_shards_than_groups_leaves_empty_shards(self):
        shards = partition(REGISTRY, 11)
        assert sum(1 for shard in shards if shard) == len(REGISTRY)
        assert sum(1 for shard in shards if not shard) == 3

    def test_shard_names_matches_partition(self):
        shards = partition(REGISTRY, 3)
        for index in (1, 2, 3):
            assert list(shard_names(REGISTRY, index, 3)) == shards[index - 1]

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(BenchError):
            partition(REGISTRY, 0)
        with pytest.raises(BenchError):
            shard_names(REGISTRY, 4, 3)
