"""Profiled bench runs: per-shard span logs, record sections, merged trace."""

import json

import pytest

from repro.bench.manifest import MANIFEST_NAME, MERGED_TRACE_NAME, merge_shards
from repro.bench.runner import run_shard
from repro.obs import read_jsonl

BENCH_ALPHA = '''
from repro.bench import BenchSpec, run_once, write_result

BENCHMARK = BenchSpec(
    figure="alpha",
    title="Alpha fixture figure",
    cost=2.0,
    artifacts=("alpha.txt",),
)


def bench_alpha(benchmark):
    write_result("alpha", run_once(benchmark, lambda: "alpha-table"))
'''

BENCH_BETA = '''
from repro.bench import BenchSpec, run_once, write_result

BENCHMARK = BenchSpec(
    figure="beta",
    title="Beta fixture figure",
    cost=1.0,
    artifacts=("beta.txt",),
)


def bench_beta(benchmark):
    write_result("beta", run_once(benchmark, lambda: "beta-table"))
'''


@pytest.fixture()
def bench_dir(tmp_path):
    directory = tmp_path / "benchsuite"
    directory.mkdir()
    (directory / "bench_alpha.py").write_text(BENCH_ALPHA)
    (directory / "bench_beta.py").write_text(BENCH_BETA)
    return directory


class TestProfiledShard:
    def test_unprofiled_run_leaves_no_trace_artifacts(self, bench_dir, tmp_path):
        results = tmp_path / "plain"
        report = run_shard(bench_dir=bench_dir, results_dir=results)
        assert report.profile is None
        assert report.trace_path is None
        assert not list(results.glob("*.trace.jsonl"))
        record = json.loads((results / "BENCH_shard_1of1.json").read_text())
        assert "profile" not in record

    def test_profiled_run_writes_span_log_and_record_section(self, bench_dir, tmp_path):
        results = tmp_path / "profiled"
        report = run_shard(bench_dir=bench_dir, results_dir=results, profile=True)
        assert report.trace_path == results / "BENCH_shard_1of1.trace.jsonl"
        spans, metrics, meta = read_jsonl(report.trace_path)
        names = {r.name for r in spans}
        assert "bench-shard-1of1" in names  # the session root
        bench_spans = [r for r in spans if r.name == "bench_function"]
        assert {r.attrs["bench"] for r in bench_spans} == {"alpha", "beta"}
        record = json.loads((results / "BENCH_shard_1of1.json").read_text())
        assert record["profile"] == report.profile
        assert "bench_function" in record["profile"]["spans"]

    def test_trace_out_writes_chrome_trace(self, bench_dir, tmp_path):
        results = tmp_path / "results"
        out = tmp_path / "run.trace.json"
        report = run_shard(bench_dir=bench_dir, results_dir=results, trace_out=out)
        # --trace-out implies profiling
        assert report.profile is not None
        document = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_rerun_unprofiled_removes_stale_span_log(self, bench_dir, tmp_path):
        results = tmp_path / "results"
        run_shard(bench_dir=bench_dir, results_dir=results, profile=True)
        assert (results / "BENCH_shard_1of1.trace.jsonl").is_file()
        run_shard(bench_dir=bench_dir, results_dir=results)
        assert not (results / "BENCH_shard_1of1.trace.jsonl").exists()


class TestMergedTrace:
    def _run_shards(self, bench_dir, tmp_path, profile):
        dirs = []
        for index in (1, 2):
            results = tmp_path / f"shard{index}"
            run_shard(
                bench_dir=bench_dir,
                shard=(index, 2),
                results_dir=results,
                profile=profile,
            )
            dirs.append(results)
        return dirs

    def test_merge_stitches_one_perfetto_trace(self, bench_dir, tmp_path):
        dirs = self._run_shards(bench_dir, tmp_path, profile=True)
        out = tmp_path / "merged"
        merge_shards(dirs, out, bench_dir=bench_dir)
        assert (out / MANIFEST_NAME).is_file()
        document = json.loads((out / MERGED_TRACE_NAME).read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        benches = {
            e["args"]["bench"] for e in events if e["name"] == "bench_function"
        }
        assert benches == {"alpha", "beta"}
        # per-shard logs are copied next to the merged trace
        assert (out / "BENCH_shard_1of2.trace.jsonl").is_file()
        assert (out / "BENCH_shard_2of2.trace.jsonl").is_file()

    def test_merge_without_profiling_writes_no_trace(self, bench_dir, tmp_path):
        dirs = self._run_shards(bench_dir, tmp_path, profile=False)
        out = tmp_path / "merged"
        merge_shards(dirs, out, bench_dir=bench_dir)
        assert not (out / MERGED_TRACE_NAME).exists()

    def test_profiled_manifest_matches_unprofiled(self, bench_dir, tmp_path):
        profiled = self._run_shards(bench_dir, tmp_path / "p", profile=True)
        plain = self._run_shards(bench_dir, tmp_path / "u", profile=False)
        a = merge_shards(profiled, tmp_path / "pm", bench_dir=bench_dir)
        b = merge_shards(plain, tmp_path / "um", bench_dir=bench_dir)
        assert a == b  # observability must not leak into the manifest
