"""Tests of the perf-regression gate (``repro bench compare``)."""

import json

import pytest

from repro.bench.compare import (
    CONTEXT_MISMATCH,
    MISSING_BASELINE,
    MISSING_METRIC,
    MISSING_RESULT,
    OK,
    REGRESSION,
    compare,
    update_baselines,
)
from repro.bench.registry import BenchSpec, Gate
from repro.core.errors import BenchError

ARTIFACT = "BENCH_speed.json"


def _specs(tolerance_pct=20.0):
    return {
        "speed": BenchSpec(
            figure="speed",
            title="Speed fixture",
            cost=1.0,
            name="speed",
            module="bench_speed.py",
            perf_artifacts=(ARTIFACT,),
            gates=(
                Gate(
                    artifact=ARTIFACT,
                    metric="throughput",
                    direction="higher",
                    tolerance_pct=tolerance_pct,
                    context=("lines",),
                ),
                Gate(
                    artifact=ARTIFACT,
                    metric="memory.peak_bytes",
                    direction="lower",
                    tolerance_pct=tolerance_pct,
                    context=("lines",),
                ),
            ),
        )
    }


def _write_result(tmp_path, throughput=1000.0, peak=500.0, lines=60000):
    results = tmp_path / "results"
    results.mkdir(exist_ok=True)
    (results / ARTIFACT).write_text(
        json.dumps(
            {
                "lines": lines,
                "throughput": throughput,
                "memory": {"peak_bytes": peak},
            }
        )
    )
    return results


class TestUpdateBaselines:
    def test_update_writes_values_and_context(self, tmp_path):
        results = _write_result(tmp_path)
        baselines = tmp_path / "baselines"
        written = update_baselines(_specs(), results, baselines)
        assert [path.name for path in written] == ["speed.json"]
        payload = json.loads(written[0].read_text())
        assert payload["metrics"][ARTIFACT]["throughput"] == 1000.0
        assert payload["metrics"][ARTIFACT]["memory.peak_bytes"] == 500.0
        assert payload["context"][ARTIFACT] == {"lines": 60000}

    def test_update_requires_the_artifact(self, tmp_path):
        (tmp_path / "results").mkdir()
        with pytest.raises(BenchError, match="missing"):
            update_baselines(_specs(), tmp_path / "results", tmp_path / "baselines")

    def test_ungated_benches_write_nothing(self, tmp_path):
        specs = {
            "plain": BenchSpec(
                figure="plain", title="plain", cost=1.0, name="plain",
                artifacts=("plain.txt",),
            )
        }
        written = update_baselines(specs, tmp_path, tmp_path / "baselines")
        assert written == []


class TestCompare:
    def _baseline(self, tmp_path, throughput=1000.0, peak=500.0, lines=60000):
        results = _write_result(tmp_path, throughput, peak, lines)
        baselines = tmp_path / "baselines"
        update_baselines(_specs(), results, baselines)
        return baselines

    def test_identical_metrics_pass(self, tmp_path):
        baselines = self._baseline(tmp_path)
        report = compare(_specs(), tmp_path / "results", baselines)
        assert report.ok
        assert {check.status for check in report.checks} == {OK}

    def test_within_tolerance_passes(self, tmp_path):
        baselines = self._baseline(tmp_path)
        _write_result(tmp_path, throughput=850.0, peak=580.0)  # -15 % / +16 %
        report = compare(_specs(tolerance_pct=20.0), tmp_path / "results", baselines)
        assert report.ok

    def test_throughput_drop_past_tolerance_fails(self, tmp_path):
        baselines = self._baseline(tmp_path)
        _write_result(tmp_path, throughput=700.0)  # -30 % < -20 % allowance
        report = compare(_specs(tolerance_pct=20.0), tmp_path / "results", baselines)
        assert not report.ok
        failed = {check.metric: check.status for check in report.failures}
        assert failed == {"throughput": REGRESSION}

    def test_memory_growth_past_tolerance_fails(self, tmp_path):
        baselines = self._baseline(tmp_path)
        _write_result(tmp_path, peak=700.0)  # +40 % > +20 % allowance
        report = compare(_specs(tolerance_pct=20.0), tmp_path / "results", baselines)
        assert [check.metric for check in report.failures] == ["memory.peak_bytes"]

    def test_improvements_always_pass(self, tmp_path):
        baselines = self._baseline(tmp_path)
        _write_result(tmp_path, throughput=5000.0, peak=100.0)
        report = compare(_specs(), tmp_path / "results", baselines)
        assert report.ok

    def test_missing_baseline_warns_but_passes(self, tmp_path):
        results = _write_result(tmp_path)
        report = compare(_specs(), results, tmp_path / "nothing")
        assert report.ok
        assert {check.status for check in report.checks} == {MISSING_BASELINE}

    def test_missing_baseline_fails_in_strict_mode(self, tmp_path):
        results = _write_result(tmp_path)
        report = compare(_specs(), results, tmp_path / "nothing", strict=True)
        assert not report.ok

    def test_missing_result_fails(self, tmp_path):
        baselines = self._baseline(tmp_path)
        (tmp_path / "results" / ARTIFACT).unlink()
        report = compare(_specs(), tmp_path / "results", baselines)
        assert not report.ok
        assert {check.status for check in report.checks} == {MISSING_RESULT}

    def test_missing_metric_fails(self, tmp_path):
        baselines = self._baseline(tmp_path)
        (tmp_path / "results" / ARTIFACT).write_text(json.dumps({"lines": 60000}))
        report = compare(_specs(), tmp_path / "results", baselines)
        assert not report.ok
        assert {check.status for check in report.checks} == {MISSING_METRIC}

    def test_context_mismatch_skips_the_gate(self, tmp_path):
        baselines = self._baseline(tmp_path, lines=60000)
        _write_result(tmp_path, throughput=1.0, peak=10**9, lines=400000)
        report = compare(_specs(), tmp_path / "results", baselines)
        # A huge "regression" at a different input size is not compared ...
        assert report.ok
        assert {check.status for check in report.checks} == {CONTEXT_MISMATCH}
        # ... unless strict mode insists on comparable baselines.
        assert not compare(
            _specs(), tmp_path / "results", baselines, strict=True
        ).ok

    def test_corrupt_baseline_is_an_error(self, tmp_path):
        results = _write_result(tmp_path)
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "speed.json").write_text("{not json")
        with pytest.raises(BenchError, match="baseline"):
            compare(_specs(), results, baselines)
