"""Tests of the WriteTrace container and its file format."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.line import LineBatch
from repro.workloads.trace import WriteTrace


def _trace(n=10, with_addresses=False):
    rng = np.random.default_rng(0)
    addresses = np.arange(n, dtype=np.uint64) if with_addresses else None
    return WriteTrace(
        old=LineBatch.random(n, rng),
        new=LineBatch.random(n, rng),
        addresses=addresses,
        name="unit",
        metadata={"suite": "test"},
    )


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            WriteTrace(old=LineBatch.zeros(2), new=LineBatch.zeros(3))

    def test_address_shape_checked(self):
        with pytest.raises(TraceError):
            WriteTrace(old=LineBatch.zeros(2), new=LineBatch.zeros(2), addresses=np.zeros(3))

    def test_len(self):
        assert len(_trace(7)) == 7


class TestSlicing:
    def test_slice_preserves_metadata(self):
        trace = _trace(10, with_addresses=True)
        part = trace[2:5]
        assert len(part) == 3
        assert part.metadata == trace.metadata
        assert part.addresses.tolist() == [2, 3, 4]

    def test_integer_index(self):
        assert len(_trace(10)[4]) == 1

    def test_chunks_cover_everything(self):
        trace = _trace(10)
        chunks = list(trace.chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_chunks_validation(self):
        with pytest.raises(TraceError):
            list(_trace(4).chunks(0))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = _trace(6, with_addresses=True)
        path = trace.save(tmp_path / "trace.npz")
        loaded = WriteTrace.load(path)
        assert loaded.new == trace.new
        assert loaded.old == trace.old
        assert loaded.name == "unit"
        assert loaded.metadata["suite"] == "test"
        assert np.array_equal(loaded.addresses, trace.addresses)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            WriteTrace.load(tmp_path / "nope.npz")

    def test_load_rejects_non_trace_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            WriteTrace.load(path)

    def test_load_rejects_garbage_file(self, tmp_path):
        """Corrupt/non-archive files raise TraceError, not raw zipfile errors."""
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(TraceError):
            WriteTrace.load(path)

    def test_load_rejects_bare_npy_array(self, tmp_path):
        path = tmp_path / "array.npy"
        np.save(path, np.zeros(4))
        with pytest.raises(TraceError):
            WriteTrace.load(path)

    def test_load_rejects_directory(self, tmp_path):
        with pytest.raises(TraceError):
            WriteTrace.load(tmp_path)

    def test_wtrc_roundtrip(self, tmp_path):
        """The .wtrc suffix selects the raw memory-mappable corpus format."""
        trace = _trace(6, with_addresses=True)
        path = trace.save(tmp_path / "trace.wtrc")
        loaded = WriteTrace.load(path)
        assert loaded.new == trace.new
        assert loaded.old == trace.old
        assert loaded.name == "unit"
        assert loaded.metadata["suite"] == "test"
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.mmap_path == path

    def test_wtrc_load_without_mmap(self, tmp_path):
        trace = _trace(6)
        path = trace.save(tmp_path / "trace.wtrc")
        loaded = WriteTrace.load(path, mmap=False)
        assert loaded.mmap_path is None
        assert loaded.new == trace.new

    def test_save_returns_actual_npz_path_for_other_suffixes(self, tmp_path):
        """numpy appends .npz to foreign suffixes; save() must report it."""
        trace = _trace(4)
        path = trace.save(tmp_path / "trace.txt")
        assert path.name == "trace.txt.npz"
        assert path.exists()
        assert WriteTrace.load(path).new == trace.new

    def test_format_sniffed_by_magic_not_suffix(self, tmp_path):
        """Loading dispatches on file content, so renamed files still load."""
        trace = _trace(4, with_addresses=True)
        original = trace.save(tmp_path / "trace.wtrc")
        renamed = tmp_path / "trace.bin"
        original.rename(renamed)
        loaded = WriteTrace.load(renamed)
        assert loaded.new == trace.new


class TestStatistics:
    def test_changed_bit_fraction_bounds(self):
        trace = _trace(10)
        fraction = trace.changed_bit_fraction()
        assert 0.0 <= fraction <= 1.0

    def test_identical_trace_has_zero_changes(self):
        lines = LineBatch.random(5, np.random.default_rng(1))
        trace = WriteTrace(old=lines, new=lines)
        assert trace.changed_bit_fraction() == 0.0

    def test_empty_trace_statistics(self):
        trace = WriteTrace(old=LineBatch.zeros(0), new=LineBatch.zeros(0))
        assert trace.changed_bit_fraction() == 0.0

    def test_symbol_histogram_total(self):
        trace = _trace(4)
        assert trace.symbol_histogram().sum() == 4 * 256
