"""Tests of the synthetic line / trace generators."""

import numpy as np
import pytest

from repro.compression.wlc import WLCCompressor
from repro.workloads.generator import (
    LineGenerator,
    generate_benchmark_trace,
    generate_random_trace,
)
from repro.workloads.profiles import LINE_TYPES, get_profile


@pytest.fixture()
def generator():
    return LineGenerator(get_profile("gcc"), np.random.default_rng(3))


class TestWordGenerators:
    @pytest.mark.parametrize("line_type", LINE_TYPES)
    def test_every_line_type_generates(self, generator, line_type):
        words = generator.generate_words(line_type, 16)
        assert words.shape == (16, 8)
        assert words.dtype == np.uint64

    def test_unknown_type_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate_words("bogus", 4)

    def test_zero_lines_are_zero(self, generator):
        assert generator.generate_words("zero", 4).sum() == 0

    def test_small_ints_have_leading_zeros(self, generator):
        words = generator.generate_words("small_int", 64)
        assert (words >> np.uint64(59) == 0).all()

    def test_small_negatives_have_leading_ones(self, generator):
        words = generator.generate_words("small_neg_int", 64)
        assert (words >> np.uint64(59) == 0b11111).all()

    def test_pointers_have_canonical_prefix(self, generator):
        words = generator.generate_words("pointer", 32)
        assert ((words >> np.uint64(40)) == np.uint64(0x7F)).all()

    def test_text_is_printable_ascii(self, generator):
        words = generator.generate_words("text", 16)
        for shift in range(0, 64, 8):
            byte = (words >> np.uint64(shift)) & np.uint64(0xFF)
            assert (byte >= 0x20).all() and (byte < 0x7F).all()

    def test_float64_words_are_not_wlc_compressible(self, generator):
        words = generator.generate_words("float64", 32)
        wlc = WLCCompressor(k=6)
        assert not wlc.word_compressible(words).all()

    def test_packed16_words_are_wlc_compressible(self, generator):
        words = generator.generate_words("packed16", 64)
        wlc = WLCCompressor(k=6)
        assert wlc.word_compressible(words).all()


class TestBatchGeneration:
    def test_type_assignment_follows_mix(self, generator):
        types = generator.assign_types(4000)
        mix = get_profile("gcc").line_type_mix
        zero_fraction = float(np.mean(types == "zero"))
        assert zero_fraction == pytest.approx(mix["zero"], abs=0.05)

    def test_generate_lines_respects_types(self, generator):
        types = np.asarray(["zero"] * 4 + ["random"] * 4, dtype=object)
        lines, assigned = generator.generate_lines(8, types)
        assert np.array_equal(assigned, types)
        assert lines.words[:4].sum() == 0

    def test_mutation_changes_some_words(self, generator):
        lines, types = generator.generate_lines(64)
        mutated = generator.mutate_lines(lines, types)
        changed_words = (mutated.words != lines.words).mean()
        fraction = get_profile("gcc").change_word_fraction
        assert 0.3 * fraction < changed_words < 1.5 * fraction


class TestTraceGeneration:
    def test_trace_shape_and_metadata(self):
        trace = generate_benchmark_trace("libq", length=100, seed=5)
        assert len(trace) == 100
        assert trace.name == "libq"
        assert trace.metadata["memory_intensity"] == "low"

    def test_traces_are_reproducible(self):
        a = generate_benchmark_trace("gcc", length=50, seed=9)
        b = generate_benchmark_trace("gcc", length=50, seed=9)
        assert a.new == b.new and a.old == b.old

    def test_different_seeds_differ(self):
        a = generate_benchmark_trace("gcc", length=50, seed=1)
        b = generate_benchmark_trace("gcc", length=50, seed=2)
        assert a.new != b.new

    def test_different_benchmarks_differ(self):
        a = generate_benchmark_trace("gcc", length=50, seed=1)
        b = generate_benchmark_trace("milc", length=50, seed=1)
        assert a.new != b.new

    def test_random_trace_is_unbiased(self):
        trace = generate_random_trace(length=200, seed=1)
        histogram = trace.symbol_histogram()
        assert histogram.sum() == 200 * 256
        assert histogram.min() > 0.2 * histogram.max()

    def test_biased_trace_symbol_histogram_is_skewed(self):
        """Benchmark traces must show the 00/11 bias the paper relies on."""
        trace = generate_benchmark_trace("gcc", length=300, seed=1)
        histogram = trace.symbol_histogram().astype(float)
        zero_fraction = histogram[0] / histogram.sum()
        assert zero_fraction > 0.4

    def test_wlc_coverage_matches_figure4_shape(self):
        """Figure 4: high coverage at k<=6, clearly lower at k=9."""
        trace = generate_benchmark_trace("sopl", length=400, seed=1)
        wlc6 = WLCCompressor(k=6).coverage(trace.new, 511)
        wlc9 = WLCCompressor(k=9).coverage(trace.new, 511)
        assert wlc6 > 0.75
        assert wlc9 < wlc6
