"""Tests of the benchmark profiles."""

import pytest

from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    DEFAULT_MUTATION_MIX,
    HMI_BENCHMARKS,
    LMI_BENCHMARKS,
    MUTATION_ACTIONS,
    PROFILES,
    get_profile,
)


class TestProfileTable:
    def test_thirteen_benchmarks_minus_canneal_overlap(self):
        """The paper evaluates 12 SPEC benchmarks plus canneal (12 named bars)."""
        assert len(ALL_BENCHMARKS) == 12
        assert set(ALL_BENCHMARKS) == set(HMI_BENCHMARKS) | set(LMI_BENCHMARKS)
        assert not set(HMI_BENCHMARKS) & set(LMI_BENCHMARKS)

    def test_canneal_is_the_only_parsec_workload(self):
        parsec = [name for name, profile in PROFILES.items() if profile.suite == "parsec"]
        assert parsec == ["cann"]

    def test_mixes_sum_to_one(self):
        for profile in PROFILES.values():
            assert sum(profile.line_type_mix.values()) == pytest.approx(1.0)
            assert sum(profile.mutation_mix.values()) == pytest.approx(1.0)

    def test_hmi_rewrites_more_than_lmi(self):
        hmi_avg = sum(PROFILES[b].change_word_fraction for b in HMI_BENCHMARKS) / len(HMI_BENCHMARKS)
        lmi_avg = sum(PROFILES[b].change_word_fraction for b in LMI_BENCHMARKS) / len(LMI_BENCHMARKS)
        assert hmi_avg > lmi_avg

    def test_lookup(self):
        assert get_profile("GCC").name == "gcc"
        with pytest.raises(KeyError):
            get_profile("doom")

    def test_default_mutation_mix_is_valid(self):
        assert set(DEFAULT_MUTATION_MIX) <= set(MUTATION_ACTIONS)
        assert sum(DEFAULT_MUTATION_MIX.values()) == pytest.approx(1.0)


class TestProfileValidation:
    def _base_kwargs(self):
        return dict(name="x", suite="spec2006", memory_intensity="high")

    def test_rejects_bad_mix_sum(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(line_type_mix={"zero": 0.5}, **self._base_kwargs())

    def test_rejects_unknown_line_type(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(line_type_mix={"bogus": 1.0}, **self._base_kwargs())

    def test_rejects_unknown_mutation_action(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                line_type_mix={"zero": 1.0}, mutation_mix={"bogus": 1.0}, **self._base_kwargs()
            )

    def test_rejects_bad_intensity(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x", suite="spec2006", memory_intensity="medium", line_type_mix={"zero": 1.0}
            )

    def test_is_high_intensity(self):
        assert PROFILES["lesl"].is_high_intensity
        assert not PROFILES["libq"].is_high_intensity
