"""Tests of the memory-request type."""

import pytest

from repro.core.line import LineBatch
from repro.memory.request import MemoryRequest, RequestType


class TestMemoryRequest:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            MemoryRequest(RequestType.WRITE, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(RequestType.READ, -3)

    def test_is_write(self):
        read = MemoryRequest(RequestType.READ, 1)
        write = MemoryRequest(RequestType.WRITE, 1, data=LineBatch.zeros(1))
        assert not read.is_write
        assert write.is_write

    def test_latency_requires_completion(self):
        request = MemoryRequest(RequestType.READ, 1, issue_cycle=10)
        assert request.latency is None
        request.complete_cycle = 25
        assert request.latency == 15
