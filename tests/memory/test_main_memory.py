"""Tests of the end-to-end PCM main-memory facade."""

import numpy as np

from repro.coding import make_scheme
from repro.memory.main_memory import PCMMainMemory
from repro.workloads.trace import WriteTrace


class TestBasicOperation:
    def test_write_then_read(self, biased_lines):
        memory = PCMMainMemory("wlcrc-16", rows_per_bank=16)
        memory.write(42, biased_lines[0])
        assert memory.read(42) == biased_lines[0]

    def test_scheme_can_be_an_encoder_instance(self, biased_lines):
        memory = PCMMainMemory(make_scheme("fnw"), rows_per_bank=16)
        memory.write(7, biased_lines[1])
        assert memory.read(7) == biased_lines[1]

    def test_summary_fields(self, biased_lines):
        memory = PCMMainMemory("baseline", rows_per_bank=16)
        memory.write(0, biased_lines[0])
        memory.controller.drain()
        summary = memory.summary()
        assert summary["scheme"] == "baseline"
        assert summary["writes"] == 1
        assert summary["avg_write_energy_pj"] >= 0


class TestTraceReplay:
    def test_replay_sequential(self, gcc_trace):
        memory = PCMMainMemory("wlcrc-16", rows_per_bank=64)
        metrics = memory.replay_trace(gcc_trace[:50])
        assert metrics.requests == 50
        assert metrics.avg_energy_pj > 0

    def test_replay_with_addresses_reuses_lines(self, gcc_trace):
        """Writing the same address twice exercises true differential write."""
        subset = gcc_trace[:20]
        addresses = np.zeros(len(subset), dtype=np.uint64)  # all writes to one line
        trace = WriteTrace(old=subset.old, new=subset.new, addresses=addresses, name="hot")
        memory = PCMMainMemory("baseline", rows_per_bank=8)
        metrics = memory.replay_trace(trace)
        assert metrics.requests == len(subset)
        # The stored line must equal the most recently written value.
        assert memory.read(0) == subset.new[len(subset) - 1]

    def test_replay_energy_ordering_between_schemes(self, gcc_trace):
        """WLCRC should spend less energy than the baseline on the same replay."""
        subset = gcc_trace[:60]
        base = PCMMainMemory("baseline", rows_per_bank=64).replay_trace(subset)
        ours = PCMMainMemory("wlcrc-16", rows_per_bank=64).replay_trace(subset)
        assert ours.avg_energy_pj < base.avg_energy_pj
