"""Tests of the memory controller's queueing and scheduling policy."""

from repro.coding import make_scheme
from repro.core.config import PCMOrganization
from repro.memory.controller import MemoryController
from repro.pcm.device import PCMDevice


def _controller(organization=None):
    device = PCMDevice(make_scheme("baseline"), rows_per_bank=16)
    return MemoryController(device, organization=organization or PCMOrganization())


class TestQueueing:
    def test_reads_have_priority_over_writes(self, biased_lines):
        controller = _controller()
        controller.enqueue_write(0, biased_lines[0])
        controller.enqueue_read(1)
        controller.tick()
        assert controller.stats.reads_serviced == 1
        assert controller.stats.writes_serviced == 0

    def test_write_drain_above_high_watermark(self, biased_lines):
        controller = _controller()
        watermark = controller.write_queue_high_watermark
        for i in range(watermark):
            controller.enqueue_write(i, biased_lines[i % len(biased_lines)])
        controller.enqueue_read(100)
        controller.tick()
        # The full write queue forces a write to drain before the read.
        assert controller.stats.write_pause_drains == 1
        assert controller.stats.writes_serviced == 1
        assert controller.stats.reads_serviced == 0

    def test_full_write_queue_stalls(self, biased_lines):
        controller = _controller()
        limit = controller.write_queue_limit
        for i in range(limit + 3):
            controller.enqueue_write(i, biased_lines[i % len(biased_lines)])
        assert controller.stats.stalled_writes == 3
        assert len(controller.write_queue) <= limit

    def test_drain_empties_queues(self, biased_lines):
        controller = _controller()
        for i in range(5):
            controller.enqueue_write(i, biased_lines[i])
        controller.enqueue_read(2)
        controller.drain()
        assert not controller.read_queue and not controller.write_queue
        assert controller.stats.writes_serviced == 5
        assert controller.stats.reads_serviced == 1

    def test_idle_tick_advances_time(self):
        controller = _controller()
        before = controller.cycle
        controller.tick()
        assert controller.cycle == before + 1


class TestLatencies:
    def test_latency_accounting(self, biased_lines):
        controller = _controller()
        controller.enqueue_write(0, biased_lines[0])
        controller.enqueue_read(0)
        controller.drain()
        assert controller.stats.avg_read_latency > 0
        assert controller.stats.avg_write_latency > 0

    def test_write_metrics_exposed(self, biased_lines):
        controller = _controller()
        for i in range(4):
            controller.enqueue_write(i, biased_lines[i])
        controller.drain()
        assert controller.write_metrics().requests == 4
