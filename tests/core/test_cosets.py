"""Tests of the coset candidate definitions (Table I) and helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cosets


class TestTableI:
    """The hand-picked candidates must match Table I of the paper exactly."""

    def test_c1_default_mapping(self):
        # 00->S1, 10->S2, 11->S3, 01->S4
        assert cosets.C1.tolist() == [0, 3, 1, 2]

    def test_c2_maps_ones_and_zeros_to_cheap_states(self):
        # 11->S1, 00->S2
        assert cosets.C2[0b11] == 0
        assert cosets.C2[0b00] == 1

    def test_c3_complements_c1_for_cheap_states(self):
        # Together C1 and C3 place every symbol in a cheap state in one of them.
        cheap_c1 = {s for s in range(4) if cosets.C1[s] <= 1}
        cheap_c3 = {s for s in range(4) if cosets.C3[s] <= 1}
        assert cheap_c1 | cheap_c3 == {0, 1, 2, 3}

    def test_c4_maps_ones_to_cheapest(self):
        assert cosets.C4[0b11] == 0
        assert cosets.C4[0b00] == 1

    def test_all_candidates_are_bijections(self):
        for candidate in (cosets.C1, cosets.C2, cosets.C3, cosets.C4):
            assert cosets.is_valid_mapping(candidate)

    def test_candidates_are_distinct(self):
        stacked = {tuple(c.tolist()) for c in cosets.FOUR_COSETS}
        assert len(stacked) == 4

    def test_three_cosets_prefix_of_four(self):
        assert np.array_equal(cosets.THREE_COSETS, cosets.FOUR_COSETS[:3])

    def test_restricted_groups_share_c1(self):
        group_a, group_b = cosets.RESTRICTED_GROUPS
        assert np.array_equal(group_a[0], cosets.C1)
        assert np.array_equal(group_b[0], cosets.C1)
        assert np.array_equal(group_a[1], cosets.C2)
        assert np.array_equal(group_b[1], cosets.C3)


class TestMappingHelpers:
    def test_apply_and_invert_roundtrip(self, rng):
        symbols = rng.integers(0, 4, size=(5, 32)).astype(np.uint8)
        for candidate in cosets.FOUR_COSETS:
            states = cosets.apply_mapping(candidate, symbols)
            assert np.array_equal(cosets.states_to_symbols(candidate, states), symbols)

    def test_apply_rejects_invalid_mapping(self):
        with pytest.raises(ValueError):
            cosets.apply_mapping(np.array([0, 0, 1, 2], dtype=np.uint8), np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            cosets.invert_mapping(np.array([0, 1, 2], dtype=np.uint8))

    def test_candidate_names(self):
        assert cosets.candidate_names(3) == ["C1", "C2", "C3"]


class TestSixCosets:
    def test_count_and_validity(self):
        six = cosets.six_cosets()
        assert six.shape == (6, 4)
        for candidate in six:
            assert cosets.is_valid_mapping(candidate)

    def test_every_symbol_pair_gets_cheap_states(self):
        """For every pair of symbols there is a candidate mapping both to S1/S2."""
        six = cosets.six_cosets()
        from itertools import combinations

        for a, b in combinations(range(4), 2):
            assert any(candidate[a] <= 1 and candidate[b] <= 1 for candidate in six)

    def test_candidates_distinct(self):
        six = cosets.six_cosets()
        assert len({tuple(c.tolist()) for c in six}) == 6


class TestFlipMinVectors:
    def test_shape_and_zero_vector(self):
        vectors = cosets.flipmin_coset_vectors(16)
        assert vectors.shape == (16, 8)
        assert vectors[0].sum() == 0

    def test_deterministic_for_seed(self):
        assert np.array_equal(
            cosets.flipmin_coset_vectors(8, seed=3), cosets.flipmin_coset_vectors(8, seed=3)
        )
        assert not np.array_equal(
            cosets.flipmin_coset_vectors(8, seed=3), cosets.flipmin_coset_vectors(8, seed=4)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            cosets.flipmin_coset_vectors(0)
        with pytest.raises(ValueError):
            cosets.flipmin_coset_vectors(4, line_bits=100)


@given(st.permutations([0, 1, 2, 3]))
@settings(max_examples=24, deadline=None)
def test_any_permutation_roundtrips(permutation):
    """Property: apply/invert round-trips for every possible coset mapping."""
    mapping = np.array(permutation, dtype=np.uint8)
    symbols = np.arange(4, dtype=np.uint8)
    states = cosets.apply_mapping(mapping, symbols)
    assert np.array_equal(cosets.invert_mapping(mapping)[states], symbols)
