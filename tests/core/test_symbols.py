"""Tests of the word / symbol / byte / bit packing layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import symbols as sym


def _random_words(rng, n=16):
    return rng.integers(0, 2**64, size=(n, sym.WORDS_PER_LINE), dtype=np.uint64)


class TestConstants:
    def test_line_geometry(self):
        assert sym.BITS_PER_LINE == 512
        assert sym.WORDS_PER_LINE * sym.BITS_PER_WORD == sym.BITS_PER_LINE
        assert sym.SYMBOLS_PER_LINE * 2 == sym.BITS_PER_LINE
        assert sym.SYMBOLS_PER_WORD * sym.WORDS_PER_LINE == sym.SYMBOLS_PER_LINE
        assert sym.BYTES_PER_LINE == 64


class TestWordSymbolConversion:
    def test_roundtrip_random(self, rng):
        words = _random_words(rng)
        assert np.array_equal(sym.symbols_to_words(sym.words_to_symbols(words)), words)

    def test_symbol_values_in_range(self, rng):
        symbols = sym.words_to_symbols(_random_words(rng))
        assert symbols.dtype == np.uint8
        assert symbols.min() >= 0 and symbols.max() <= 3

    def test_symbol_ordering_lsb_first(self):
        # Word 0 = 0b...1110 01: symbol 0 holds bits (1, 0) = '01' = 1,
        # symbol 1 holds bits (3, 2) = '11' = 3.
        words = np.zeros((1, 8), dtype=np.uint64)
        words[0, 0] = 0b1101
        symbols = sym.words_to_symbols(words)[0]
        assert symbols[0] == 1
        assert symbols[1] == 3
        assert symbols[2] == 0

    def test_word_major_layout(self):
        words = np.zeros((1, 8), dtype=np.uint64)
        words[0, 3] = 0b10  # symbol 0 of word 3 = '10' = 2
        symbols = sym.words_to_symbols(words)[0]
        assert symbols[3 * sym.SYMBOLS_PER_WORD] == 2
        assert symbols.sum() == 2

    def test_single_line_shape(self):
        words = np.arange(8, dtype=np.uint64)
        symbols = sym.words_to_symbols(words)
        assert symbols.shape == (256,)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            sym.words_to_symbols(np.zeros((4, 7), dtype=np.uint64))
        with pytest.raises(ValueError):
            sym.symbols_to_words(np.zeros((4, 255), dtype=np.uint8))


class TestByteAndBitConversion:
    def test_bytes_roundtrip(self, rng):
        words = _random_words(rng)
        assert np.array_equal(sym.bytes_to_words(sym.words_to_bytes(words)), words)

    def test_bytes_little_endian_within_word(self):
        words = np.zeros((1, 8), dtype=np.uint64)
        words[0, 0] = 0x1122334455667788
        out = sym.words_to_bytes(words)[0]
        assert out[0] == 0x88
        assert out[7] == 0x11

    def test_bits_roundtrip(self, rng):
        words = _random_words(rng, n=4)
        assert np.array_equal(sym.bits_to_words(sym.words_to_bits(words)), words)

    def test_bits_symbols_roundtrip(self, rng):
        words = _random_words(rng, n=4)
        bits = sym.words_to_bits(words)
        symbols = sym.bits_to_symbols(bits)
        assert np.array_equal(sym.words_to_symbols(words), symbols)
        assert np.array_equal(sym.symbols_to_bits(symbols), bits)

    def test_rejects_wrong_bit_width(self):
        with pytest.raises(ValueError):
            sym.bits_to_words(np.zeros((2, 100), dtype=np.uint8))
        with pytest.raises(ValueError):
            sym.bits_to_symbols(np.zeros((2, 100), dtype=np.uint8))
        with pytest.raises(ValueError):
            sym.symbols_to_bits(np.zeros((2, 100), dtype=np.uint8))
        with pytest.raises(ValueError):
            sym.bytes_to_words(np.zeros((2, 63), dtype=np.uint8))


class TestComplement:
    def test_complement_symbols(self):
        values = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert np.array_equal(sym.complement_symbols(values), np.array([3, 2, 1, 0]))

    def test_complement_matches_bitwise_not(self, rng):
        words = _random_words(rng, n=4)
        complemented = sym.words_to_symbols(~words)
        assert np.array_equal(sym.complement_symbols(sym.words_to_symbols(words)), complemented)


class TestIntConversion:
    def test_int_roundtrip(self):
        value = (0xDEADBEEF << 300) | 0x1234567890ABCDEF
        words = sym.line_from_int(value)
        assert sym.line_to_int(words) == value

    def test_low_word_is_least_significant(self):
        words = sym.line_from_int(5)
        assert words[0] == 5
        assert words[1:].sum() == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            sym.line_from_int(-1)
        with pytest.raises(ValueError):
            sym.line_from_int(1 << 512)

    def test_line_to_int_requires_single_line(self):
        with pytest.raises(ValueError):
            sym.line_to_int(np.zeros((2, 8), dtype=np.uint64))


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=8, max_size=8))
@settings(max_examples=50, deadline=None)
def test_symbol_roundtrip_property(word_values):
    """Property: symbol packing is a bijection for any line content."""
    words = np.array([word_values], dtype=np.uint64)
    assert np.array_equal(sym.symbols_to_words(sym.words_to_symbols(words)), words)


@given(st.integers(min_value=0, max_value=(1 << 512) - 1))
@settings(max_examples=30, deadline=None)
def test_int_roundtrip_property(value):
    """Property: integer <-> line conversion is a bijection over 512-bit values."""
    assert sym.line_to_int(sym.line_from_int(value)) == value
