"""Tests of the write-disturbance model."""

import numpy as np
import pytest

from repro.core.disturbance import (
    DEFAULT_DISTURBANCE_MODEL,
    DisturbanceModel,
    neighbor_of_updated,
)


class TestNeighborMask:
    def test_isolated_update_marks_both_neighbors(self):
        changed = np.zeros((1, 6), dtype=bool)
        changed[0, 3] = True
        mask = neighbor_of_updated(changed)
        assert mask[0].tolist() == [False, False, True, False, True, False]

    def test_edge_updates(self):
        changed = np.zeros((1, 4), dtype=bool)
        changed[0, 0] = True
        mask = neighbor_of_updated(changed)
        assert mask[0].tolist() == [False, True, False, False]

    def test_no_updates_no_neighbors(self):
        assert not neighbor_of_updated(np.zeros((2, 8), dtype=bool)).any()


class TestExpectedErrors:
    def test_table2_rates(self):
        assert DEFAULT_DISTURBANCE_MODEL.rates == (0.123, 0.0, 0.276, 0.152)

    def test_s2_is_immune(self):
        states = np.full((1, 3), 1, dtype=np.uint8)  # everything in S2
        changed = np.array([[False, True, False]])
        assert DEFAULT_DISTURBANCE_MODEL.expected_errors(states, changed)[0] == 0.0

    def test_updated_cells_are_not_counted(self):
        states = np.full((1, 3), 2, dtype=np.uint8)
        changed = np.array([[True, True, True]])
        assert DEFAULT_DISTURBANCE_MODEL.expected_errors(states, changed)[0] == 0.0

    def test_expected_value_matches_hand_computation(self):
        # Cells: [S1 idle][updated][S3 idle][S4 idle far away]
        states = np.array([[0, 0, 2, 3]], dtype=np.uint8)
        changed = np.array([[False, True, False, False]])
        expected = 0.123 + 0.276  # the two neighbours of the updated cell
        assert DEFAULT_DISTURBANCE_MODEL.expected_errors(states, changed)[0] == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_DISTURBANCE_MODEL.expected_errors(
                np.zeros((1, 4), dtype=np.uint8), np.zeros((1, 5), dtype=bool)
            )


class TestSampling:
    def test_sampling_respects_vulnerability(self, rng):
        states = np.zeros((10, 64), dtype=np.uint8)
        changed = np.zeros((10, 64), dtype=bool)
        changed[:, ::4] = True
        faults = DEFAULT_DISTURBANCE_MODEL.sample_errors(states, changed, rng)
        vulnerable = DEFAULT_DISTURBANCE_MODEL.vulnerable_mask(states, changed)
        assert not faults[~vulnerable].any()

    def test_sampling_mean_approaches_expectation(self):
        rng = np.random.default_rng(0)
        model = DisturbanceModel()
        states = np.zeros((2000, 16), dtype=np.uint8)  # all S1 (12.3 % DER)
        changed = np.zeros((2000, 16), dtype=bool)
        changed[:, 8] = True
        sampled = model.sample_errors(states, changed, rng).sum(axis=1).mean()
        expected = model.expected_errors(states, changed).mean()
        assert sampled == pytest.approx(expected, rel=0.2)

    def test_zero_rate_model_never_faults(self, rng):
        model = DisturbanceModel(rates=(0.0, 0.0, 0.0, 0.0))
        states = np.zeros((5, 32), dtype=np.uint8)
        changed = np.ones((5, 32), dtype=bool)
        changed[:, ::2] = False
        assert not model.sample_errors(states, changed, rng).any()


class TestValidation:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            DisturbanceModel(rates=(0.1, 0.2, 0.3))
        with pytest.raises(ValueError):
            DisturbanceModel(rates=(0.1, 0.2, 0.3, 1.5))
