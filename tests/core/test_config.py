"""Tests of the system / evaluation configuration objects."""

from repro.core.config import (
    CPUConfig,
    DEFAULT_SYSTEM_CONFIG,
    EvaluationConfig,
    GRANULARITIES_FULL,
    GRANULARITIES_WLC,
    PCMOrganization,
    SystemConfig,
)


class TestPCMOrganization:
    def test_table2_defaults(self):
        org = PCMOrganization()
        assert org.capacity_gib == 32
        assert org.channels == 2
        assert org.dimms_per_channel == 2
        assert org.banks_per_dimm == 16
        assert org.write_queue_entries == 32

    def test_total_banks(self):
        assert PCMOrganization().total_banks == 2 * 2 * 16

    def test_lines_per_bank(self):
        org = PCMOrganization()
        total_lines = 32 * (1 << 30) // 64
        assert org.lines_per_bank == total_lines // org.total_banks


class TestCPUConfig:
    def test_table2_defaults(self):
        cpu = CPUConfig()
        assert cpu.cores == 8
        assert cpu.frequency_ghz == 4.0
        assert cpu.l2_size_kib == 2048
        assert cpu.l2_ways == 8


class TestSystemConfig:
    def test_default_bundles_table2_models(self):
        config = DEFAULT_SYSTEM_CONFIG
        assert config.energy.reset_energy_pj == 36.0
        assert config.disturbance.rates[1] == 0.0

    def test_custom_composition(self):
        config = SystemConfig(cpu=CPUConfig(cores=4))
        assert config.cpu.cores == 4
        assert config.pcm.channels == 2


class TestEvaluationConfig:
    def test_with_trace_length(self):
        config = EvaluationConfig(trace_length=100, seed=9)
        longer = config.with_trace_length(5000)
        assert longer.trace_length == 5000
        assert longer.seed == 9
        assert config.trace_length == 100


class TestGranularities:
    def test_full_range(self):
        assert GRANULARITIES_FULL == (8, 16, 32, 64, 128, 256, 512)

    def test_wlc_subset(self):
        assert set(GRANULARITIES_WLC) <= set(GRANULARITIES_FULL)
        assert GRANULARITIES_WLC == (8, 16, 32, 64)
