"""Tests of the MLC PCM write-energy model."""

import numpy as np
import pytest

from repro.core.energy import (
    DEFAULT_ENERGY_MODEL,
    EnergyModel,
    FIGURE14_ENERGY_LEVELS,
    figure14_energy_models,
)


class TestDefaults:
    def test_table2_values(self):
        model = DEFAULT_ENERGY_MODEL
        assert model.reset_energy_pj == 36.0
        assert model.set_energy_pj == (0.0, 20.0, 307.0, 547.0)

    def test_states_ordered_by_energy(self):
        energies = DEFAULT_ENERGY_MODEL.write_energy_per_state
        assert np.all(np.diff(energies) > 0)

    def test_total_write_energy_includes_reset(self):
        energies = DEFAULT_ENERGY_MODEL.write_energy_per_state
        assert energies[0] == pytest.approx(36.0)
        assert energies[3] == pytest.approx(36.0 + 547.0)


class TestCellWriteEnergy:
    def test_idle_cells_cost_nothing(self):
        states = np.array([[0, 1, 2, 3]])
        changed = np.zeros_like(states, dtype=bool)
        assert DEFAULT_ENERGY_MODEL.cell_write_energy(states, changed).sum() == 0

    def test_changed_cells_cost_state_energy(self):
        states = np.array([[0, 1, 2, 3]])
        changed = np.ones_like(states, dtype=bool)
        energy = DEFAULT_ENERGY_MODEL.cell_write_energy(states, changed)
        assert energy.tolist() == [[36.0, 56.0, 343.0, 583.0]]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_ENERGY_MODEL.cell_write_energy(np.zeros((2, 3)), np.zeros((2, 4), dtype=bool))


class TestValidation:
    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(reset_energy_pj=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(set_energy_pj=(0.0, -1.0, 2.0, 3.0))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(set_energy_pj=(0.0, 1.0, 2.0))


class TestScaling:
    def test_scaled_intermediate_states(self):
        scaled = DEFAULT_ENERGY_MODEL.scaled_intermediate_states(75.0, 135.0)
        assert scaled.set_energy_pj == (0.0, 20.0, 75.0, 135.0)
        assert scaled.reset_energy_pj == DEFAULT_ENERGY_MODEL.reset_energy_pj
        # The original model is unchanged (frozen dataclass).
        assert DEFAULT_ENERGY_MODEL.set_energy_pj[2] == 307.0

    def test_figure14_models(self):
        models = figure14_energy_models()
        assert len(models) == len(FIGURE14_ENERGY_LEVELS)
        assert models[0] == DEFAULT_ENERGY_MODEL
        # Figure 14 only reduces intermediate-state energies.
        for model in models:
            assert model.set_energy_pj[0] == 0.0
            assert model.set_energy_pj[1] == 20.0
            assert model.set_energy_pj[2] <= 307.0
            assert model.set_energy_pj[3] <= 547.0

    def test_models_are_hashable(self):
        assert len({m for m in figure14_energy_models()}) == 4
