"""Tests of the LineBatch container."""

import numpy as np
import pytest

from repro.core.line import LineBatch
from repro.core.symbols import SYMBOLS_PER_LINE, WORDS_PER_LINE


class TestConstruction:
    def test_zeros(self):
        batch = LineBatch.zeros(5)
        assert len(batch) == 5
        assert batch.words.shape == (5, WORDS_PER_LINE)
        assert batch.words.sum() == 0

    def test_single_line_is_promoted_to_batch(self):
        batch = LineBatch(np.arange(8, dtype=np.uint64))
        assert len(batch) == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            LineBatch(np.zeros((3, 7), dtype=np.uint64))

    def test_random_is_reproducible(self):
        a = LineBatch.random(4, np.random.default_rng(3))
        b = LineBatch.random(4, np.random.default_rng(3))
        assert a == b

    def test_from_symbols_roundtrip(self, random_lines):
        assert LineBatch.from_symbols(random_lines.symbols()) == random_lines

    def test_from_bytes_roundtrip(self, random_lines):
        assert LineBatch.from_bytes(random_lines.bytes()) == random_lines

    def test_from_ints_roundtrip(self):
        values = [0, 1, (1 << 511) | 7]
        batch = LineBatch.from_ints(values)
        assert batch.to_ints() == values

    def test_from_ints_empty(self):
        assert len(LineBatch.from_ints([])) == 0

    def test_concatenate(self):
        a = LineBatch.zeros(2)
        b = LineBatch.random(3, np.random.default_rng(1))
        merged = LineBatch.concatenate([a, b])
        assert len(merged) == 5
        assert merged[2:] == b

    def test_concatenate_empty_list(self):
        assert len(LineBatch.concatenate([])) == 0


class TestViews:
    def test_symbols_shape(self, random_lines):
        assert random_lines.symbols().shape == (len(random_lines), SYMBOLS_PER_LINE)

    def test_bits_shape(self, random_lines):
        assert random_lines.bits().shape == (len(random_lines), 512)

    def test_views_are_consistent(self, random_lines):
        bits = random_lines.bits()
        symbols = random_lines.symbols()
        low = bits[:, 0::2]
        high = bits[:, 1::2]
        assert np.array_equal(low | (high << 1), symbols)


class TestSequenceProtocol:
    def test_indexing_returns_batches(self, random_lines):
        single = random_lines[0]
        assert isinstance(single, LineBatch)
        assert len(single) == 1

    def test_slicing(self, random_lines):
        assert len(random_lines[2:6]) == 4

    def test_iteration(self, random_lines):
        count = sum(1 for _ in random_lines[:5])
        assert count == 5

    def test_equality_and_inequality(self):
        a = LineBatch.zeros(2)
        b = LineBatch.zeros(2)
        c = LineBatch.random(2, np.random.default_rng(0))
        assert a == b
        assert a != c
        assert a != "not a batch"

    def test_equals_elementwise(self):
        a = LineBatch.zeros(3)
        b = LineBatch.zeros(3)
        b.words[1, 0] = 9
        mask = a.equals_elementwise(b)
        assert mask.tolist() == [True, False, True]

    def test_equals_elementwise_length_mismatch(self):
        with pytest.raises(ValueError):
            LineBatch.zeros(2).equals_elementwise(LineBatch.zeros(3))

    def test_chunks(self, random_lines):
        chunks = list(random_lines.chunks(50))
        assert sum(len(c) for c in chunks) == len(random_lines)
        assert all(len(c) <= 50 for c in chunks)

    def test_chunks_rejects_non_positive(self, random_lines):
        with pytest.raises(ValueError):
            list(random_lines.chunks(0))
