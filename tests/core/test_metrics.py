"""Tests of the WriteMetrics accumulator."""

import pytest

from repro.core.metrics import WriteMetrics, relative_improvement


def _sample(requests=10, data=1000.0, aux=100.0, cells=50.0, aux_cells=5.0, dist=3.0):
    return WriteMetrics(
        requests=requests,
        data_energy_pj=data,
        aux_energy_pj=aux,
        updated_data_cells=cells,
        updated_aux_cells=aux_cells,
        disturbance_errors=dist,
        compressed_lines=6,
        encoded_lines=8,
    )


class TestAverages:
    def test_total_energy(self):
        assert _sample().total_energy_pj == 1100.0

    def test_per_request_averages(self):
        metrics = _sample()
        assert metrics.avg_energy_pj == pytest.approx(110.0)
        assert metrics.avg_data_energy_pj == pytest.approx(100.0)
        assert metrics.avg_aux_energy_pj == pytest.approx(10.0)
        assert metrics.avg_updated_cells == pytest.approx(5.5)
        assert metrics.avg_disturbance_errors == pytest.approx(0.3)
        assert metrics.compressed_fraction == pytest.approx(0.6)
        assert metrics.encoded_fraction == pytest.approx(0.8)

    def test_empty_metrics_average_to_zero(self):
        empty = WriteMetrics()
        assert empty.avg_energy_pj == 0.0
        assert empty.avg_updated_cells == 0.0
        assert empty.compressed_fraction == 0.0


class TestCombination:
    def test_merge_accumulates(self):
        a = _sample()
        b = _sample(requests=5, data=500.0)
        a.merge(b)
        assert a.requests == 15
        assert a.data_energy_pj == 1500.0

    def test_add_does_not_mutate(self):
        a = _sample()
        b = _sample()
        c = a + b
        assert c.requests == 20
        assert a.requests == 10

    def test_combine(self):
        total = WriteMetrics.combine([_sample(), _sample(), WriteMetrics()])
        assert total.requests == 20
        assert total.total_energy_pj == 2200.0

    def test_averages_are_weighted_by_requests(self):
        heavy = _sample(requests=90, data=9000.0, aux=0.0)
        light = _sample(requests=10, data=2000.0, aux=0.0)
        merged = heavy + light
        assert merged.avg_energy_pj == pytest.approx(11000.0 / 100)


class TestPresentation:
    def test_as_dict_keys(self):
        data = _sample().as_dict()
        assert set(data) == {
            "requests",
            "avg_energy_pj",
            "avg_data_energy_pj",
            "avg_aux_energy_pj",
            "avg_updated_cells",
            "avg_disturbance_errors",
            "compressed_fraction",
            "encoded_fraction",
        }


class TestRelativeImprovement:
    def test_improvement(self):
        assert relative_improvement(100.0, 60.0) == pytest.approx(0.4)

    def test_regression_is_negative(self):
        assert relative_improvement(100.0, 120.0) == pytest.approx(-0.2)

    def test_zero_baseline(self):
        assert relative_improvement(0.0, 10.0) == 0.0
