"""Shared configuration of the figure/table reproduction benchmarks.

Each ``bench_*`` module regenerates one figure or table of the paper's
evaluation section: it runs the corresponding experiment driver under
``pytest-benchmark`` (a single round -- the value of these benchmarks is the
regenerated table, not micro-timing), writes the table to
``benchmarks/results/`` and asserts the qualitative claims of the paper
(who wins, and roughly by how much).

Environment knobs:

``REPRO_BENCH_TRACE_LEN``
    Write requests per benchmark trace (default 1200).  Larger values give
    smoother numbers at proportionally higher runtime.
``REPRO_BENCH_SEED``
    Seed of the synthetic trace generator (default 2018).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.evaluation.experiments import ExperimentConfig

#: Directory where every benchmark writes its regenerated table.
RESULTS_DIR = Path(__file__).parent / "results"


def bench_config() -> ExperimentConfig:
    """Experiment configuration shared by all figure benchmarks."""
    return ExperimentConfig(
        trace_length=int(os.environ.get("REPRO_BENCH_TRACE_LEN", "1200")),
        random_lines=int(os.environ.get("REPRO_BENCH_RANDOM_LINES", "4000")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "2018")),
    )


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Session-wide experiment configuration (see module docstring)."""
    return bench_config()


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated figure/table under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def write_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark result as ``BENCH_<name>.json``.

    CI uploads every ``BENCH_*.json`` under ``benchmarks/results`` as a build
    artifact, so these files are the accumulating perf trajectory of the
    project; keep their schemas append-only.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
