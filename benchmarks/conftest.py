"""Pytest glue of the figure/table reproduction benchmarks.

Each ``bench_*`` module regenerates one figure or table of the paper's
evaluation section and declares a module-level ``BENCHMARK = BenchSpec(...)``
registering it with the benchmark-orchestration subsystem
(:mod:`repro.bench`): figure id, shard-balancing cost, environment knobs,
produced artifacts, and perf-regression gates.

The modules run two ways off one registry:

* ``pytest benchmarks -o python_files='bench_*.py' -o python_functions='bench_*'``
  collects them as tests (``benchmark`` is the pytest-benchmark fixture);
* ``repro bench run [--shard K/N]`` executes them in-process on a single
  shared worker pool, with ``repro bench merge`` / ``repro bench compare``
  downstream (see README, "Benchmark harness & perf gate").

Environment knobs:

``REPRO_BENCH_TRACE_LEN``
    Write requests per benchmark trace (default 1200).  Larger values give
    smoother numbers at proportionally higher runtime.
``REPRO_BENCH_SEED``
    Seed of the synthetic trace generator (default 2018).
``REPRO_BENCH_JOBS``
    Worker processes of the shared evaluation pool (default 1).
``REPRO_BENCH_RESULTS_DIR``
    Artifact directory (default ``benchmarks/results``).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_config
from repro.evaluation.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Session-wide experiment configuration (see module docstring)."""
    return bench_config()
