"""Figure 3: 6cosets vs 4cosets on the SPEC2006/PARSEC benchmark traces.

Reproduced claim: on real (biased) workloads the advantage of 6cosets
vanishes -- 4cosets matches its total energy while using half the auxiliary
symbols, because its candidates were picked for the 00/11 bias of real data
and its single auxiliary cell stays in a low-energy state.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="figure3",
    title="6cosets vs 4cosets on the benchmark traces",
    cost=5.3,
    artifacts=("figure03_biased_4cosets_vs_6cosets.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure3(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure3, experiment_config)

    rows = {}
    for scheme, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{scheme} @ {granularity}-bit"] = values
    table = format_series_table(rows, title="Figure 3: biased data (pJ/write)", row_header="series")
    write_result("figure03_biased_4cosets_vs_6cosets", table)

    for granularity in (16, 32, 64):
        six = result["6cosets"][granularity]
        four = result["4cosets"][granularity]
        # The actionable claim of Figure 3: on biased data 4cosets gives up
        # nothing in total energy relative to 6cosets (on the synthetic traces
        # it is in fact slightly better), which is what justifies halving the
        # auxiliary symbols.  See EXPERIMENTS.md for the measured numbers.
        assert four["total"] <= six["total"] * 1.05
    # 4cosets structurally halves the auxiliary storage at every granularity.
    from repro.coding import make_scheme

    for granularity in (16, 32, 64):
        assert (
            make_scheme(f"6cosets-{granularity}").aux_cells
            == 2 * make_scheme(f"4cosets-{granularity}").aux_cells
        )
