"""Figure 11: write energy vs data-block granularity for the WLC-based schemes.

Reproduced claims:

* WLCRC's energy optimum is at 16-bit blocks (the paper's WLCRC-16 design
  point), because its restricted coset coding needs only six identical MSBs;
* the unrestricted WLC+4cosets / WLC+3cosets schemes bottom out at 32-bit
  blocks -- at 16 bits they would need nine identical MSBs and lose half the
  compressible lines;
* at 64-bit granularity all three families converge.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

# Figures 11, 12 and 13 share one granularity sweep; co-scheduling the group
# lets this bench prime the cache for the other two.
BENCHMARK = BenchSpec(
    figure="figure11",
    title="WLC-based schemes: energy vs granularity",
    cost=9.3,
    group="figure11-family",
    artifacts=("figure11_granularity_energy.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure11(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure11, experiment_config)

    rows = {}
    for family, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{family} @ {granularity}-bit"] = values
    table = format_series_table(rows, title="Figure 11: WLC-based schemes, energy (pJ/write)",
                                row_header="series")
    write_result("figure11_granularity_energy", table)

    wlcrc = {g: v["total"] for g, v in result["WLCRC"].items()}
    four = {g: v["total"] for g, v in result["4cosets"].items()}

    # WLCRC's best granularity is 16 bits.
    assert min(wlcrc, key=wlcrc.get) == 16
    # The unrestricted scheme cannot do better below 32-bit blocks.
    assert min(four, key=four.get) in (32, 64)
    assert four[16] > four[32]
    # WLCRC-16 is the overall minimum-energy configuration (within 2 %).
    overall_best = min(min(values["total"] for values in family.values()) for family in result.values())
    assert wlcrc[16] <= overall_best * 1.02
    # At 64-bit blocks the three families converge (within 5 %).
    three = result["3cosets"][64]["total"]
    assert abs(wlcrc[64] - three) <= 0.05 * three
