"""Serial-vs-parallel wall-clock of the granularity sweep.

Runs the Figure 11-style granularity sweep once on the serial path
(``n_jobs=1``) and once on the process-pool path (``n_jobs`` = all cores),
records both wall-clock times and the speedup to ``benchmarks/results/``, and
asserts the engine's core contract: the two runs produce *identical* metrics.

No minimum speedup is asserted -- on a single-core machine the pool can only
add overhead; the recorded table is the artefact of interest.
"""

import os
import time

from repro.coding.ncosets import make_six_cosets
from repro.evaluation import format_series_table
from repro.evaluation.experiments import benchmark_traces
from repro.evaluation.sweeps import granularity_sweep

from conftest import run_once, write_result

GRANULARITIES = (8, 16, 32, 64)


def _timed_sweep(traces, config, n_jobs):
    start = time.perf_counter()
    sweep = granularity_sweep(
        lambda g, em: make_six_cosets(g, em),
        GRANULARITIES,
        traces,
        config.evaluation,
        n_jobs=n_jobs,
    )
    return sweep, time.perf_counter() - start


def bench_parallel_scaling(benchmark, experiment_config):
    traces = benchmark_traces(experiment_config)
    all_cores = os.cpu_count() or 1

    def measure():
        serial, serial_s = _timed_sweep(traces, experiment_config, n_jobs=1)
        parallel, parallel_s = _timed_sweep(traces, experiment_config, n_jobs=all_cores)
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = run_once(benchmark, measure)

    rows = {
        "serial (n_jobs=1)": {"wall_clock_s": serial_s, "workers": 1},
        f"parallel (n_jobs={all_cores})": {"wall_clock_s": parallel_s, "workers": all_cores},
        "speedup": {"wall_clock_s": serial_s / parallel_s if parallel_s else 0.0, "workers": all_cores},
    }
    table = format_series_table(
        rows,
        title=f"Parallel scaling: granularity sweep {GRANULARITIES}, "
        f"{len(traces)} traces, {all_cores} cores",
        row_header="run",
    )
    write_result("parallel_scaling", table)

    # The engine's contract: identical metrics for any worker count.
    assert list(serial) == list(GRANULARITIES)
    for granularity in GRANULARITIES:
        assert serial[granularity] == parallel[granularity]
