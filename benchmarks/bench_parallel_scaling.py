"""Wall-clock benchmarks of the parallel engine: scaling and trace transport.

``bench_parallel_scaling`` runs the Figure 11-style granularity sweep once on
the serial path (``n_jobs=1``) and once on the process-pool path (``n_jobs``
= all cores), records both wall-clock times and the speedup to
``benchmarks/results/``, and asserts the engine's core contract: the two runs
produce *identical* metrics.

``bench_trace_transport`` compares how chunk data reaches the workers --
pickled arrays (the legacy path), a shared-memory segment, and an mmap'd
corpus file -- on one long random trace: per-chunk IPC payload bytes, end-to-
end wall clock, and (again) exact metric equality.  Results land in
``BENCH_trace_transport.json``, which CI uploads as an artifact.

No minimum speedup is asserted -- on a single-core machine the pool can only
add overhead; the recorded tables are the artefact of interest.

Environment knobs (on top of conftest's): ``REPRO_BENCH_TRANSPORT_LINES``
sets the transport benchmark's trace length (default one million lines).
"""

import os
import pickle
import tempfile
import time
from pathlib import Path

from repro.bench import BenchSpec, Gate, run_once, write_json, write_result
from repro.coding import make_scheme
from repro.coding.ncosets import make_six_cosets
from repro.core.config import EvaluationConfig
from repro.evaluation import format_series_table
from repro.evaluation.experiments import benchmark_traces
from repro.evaluation.parallel import ParallelRunner, WorkUnit
from repro.evaluation.sweeps import granularity_sweep
from repro.traces.store import load_trace, save_trace
from repro.traces.transport import TraceExporter
from repro.workloads.generator import generate_random_trace

# The per-chunk IPC payload sizes are deterministic for a given trace length
# and chunk size, so their gates are tight; wall clocks are machine noise and
# deliberately ungated.
BENCHMARK = BenchSpec(
    figure="parallel",
    title="Parallel-engine scaling and zero-copy trace transport",
    cost=5.4,
    perf_artifacts=(
        "parallel_scaling.txt",
        "BENCH_parallel_scaling.json",
        "trace_transport.txt",
        "BENCH_trace_transport.json",
    ),
    env=(
        "REPRO_BENCH_TRACE_LEN",
        "REPRO_BENCH_SEED",
        "REPRO_BENCH_TRANSPORT_LINES",
    ),
    gates=(
        Gate(
            artifact="BENCH_trace_transport.json",
            metric="per_chunk_ipc_bytes.mmap",
            direction="lower",
            tolerance_pct=10.0,
            context=("lines", "chunk_size"),
        ),
        Gate(
            artifact="BENCH_trace_transport.json",
            metric="per_chunk_ipc_bytes.shm",
            direction="lower",
            tolerance_pct=10.0,
            context=("lines", "chunk_size"),
        ),
        Gate(
            artifact="BENCH_trace_transport.json",
            metric="ipc_reduction_vs_pickle.mmap",
            direction="higher",
            tolerance_pct=10.0,
            context=("lines", "chunk_size"),
        ),
    ),
)

GRANULARITIES = (8, 16, 32, 64)


def _timed_sweep(traces, config, n_jobs):
    start = time.perf_counter()
    sweep = granularity_sweep(
        lambda g, em: make_six_cosets(g, em),
        GRANULARITIES,
        traces,
        config.evaluation,
        n_jobs=n_jobs,
    )
    return sweep, time.perf_counter() - start


def bench_parallel_scaling(benchmark, experiment_config):
    traces = benchmark_traces(experiment_config)
    all_cores = os.cpu_count() or 1

    def measure():
        serial, serial_s = _timed_sweep(traces, experiment_config, n_jobs=1)
        parallel, parallel_s = _timed_sweep(traces, experiment_config, n_jobs=all_cores)
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = run_once(benchmark, measure)

    rows = {
        "serial (n_jobs=1)": {"wall_clock_s": serial_s, "workers": 1},
        f"parallel (n_jobs={all_cores})": {"wall_clock_s": parallel_s, "workers": all_cores},
        "speedup": {"wall_clock_s": serial_s / parallel_s if parallel_s else 0.0, "workers": all_cores},
    }
    table = format_series_table(
        rows,
        title=f"Parallel scaling: granularity sweep {GRANULARITIES}, "
        f"{len(traces)} traces, {all_cores} cores",
        row_header="run",
    )
    write_result("parallel_scaling", table)

    # The engine's contract: identical metrics for any worker count.
    assert list(serial) == list(GRANULARITIES)
    for granularity in GRANULARITIES:
        assert serial[granularity] == parallel[granularity]

    write_json(
        "parallel_scaling",
        {
            "granularities": list(GRANULARITIES),
            "traces": len(traces),
            "workers": all_cores,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else 0.0,
        },
    )


def bench_trace_transport(benchmark):
    """Per-chunk IPC and wall clock: pickled vs shared-memory vs mmap transport."""
    lines = int(os.environ.get("REPRO_BENCH_TRANSPORT_LINES", "1000000"))
    n_jobs = os.cpu_count() or 1
    config = EvaluationConfig(chunk_size=2048)
    encoder = make_scheme("baseline")

    def measure():
        trace = generate_random_trace(lines, seed=2018)
        results = {}
        with tempfile.TemporaryDirectory() as tmp:
            corpus_trace = load_trace(save_trace(trace, Path(tmp) / "random.wtrc"))

            # Per-chunk IPC payload: the pickled size of one dispatched shard.
            runner = ParallelRunner(n_jobs)
            unit_mem = [WorkUnit("t", encoder, trace, config)]
            unit_mmap = [WorkUnit("t", encoder, corpus_trace, config)]
            per_chunk = {
                "pickle": len(pickle.dumps(next(runner._shards(unit_mem))))
            }
            with TraceExporter("shm") as exporter:
                descriptor = exporter.export(trace)
                if descriptor is not None:
                    per_chunk["shm"] = len(
                        pickle.dumps(next(runner._shards(unit_mem, [descriptor])))
                    )
            with TraceExporter("mmap") as exporter:
                descriptor = exporter.export(corpus_trace)
                per_chunk["mmap"] = len(
                    pickle.dumps(next(runner._shards(unit_mmap, [descriptor])))
                )

            # End-to-end wall clock per transport (metrics must be identical).
            wall = {}
            metrics = {}
            for transport, units in (
                ("pickle", unit_mem),
                ("shm", unit_mem),
                ("mmap", unit_mmap),
            ):
                start = time.perf_counter()
                metrics[transport] = ParallelRunner(n_jobs, transport=transport).map(units)[0]
                wall[transport] = time.perf_counter() - start
            results["per_chunk_ipc_bytes"] = per_chunk
            results["wall_clock_s"] = wall
            results["metrics"] = metrics
        return results

    results = run_once(benchmark, measure)
    per_chunk = results["per_chunk_ipc_bytes"]
    wall = results["wall_clock_s"]
    metrics = results["metrics"]

    payload = {
        "lines": lines,
        "chunk_size": config.chunk_size,
        "n_jobs": n_jobs,
        "per_chunk_ipc_bytes": per_chunk,
        "ipc_reduction_vs_pickle": {
            name: per_chunk["pickle"] / size
            for name, size in per_chunk.items()
            if name != "pickle" and size
        },
        "wall_clock_s": wall,
    }
    write_json("trace_transport", payload)
    rows = {
        name: {
            "per_chunk_bytes": per_chunk.get(name, 0),
            "wall_clock_s": wall[name],
            "ipc_reduction": payload["ipc_reduction_vs_pickle"].get(name, 1.0),
        }
        for name in wall
    }
    write_result(
        "trace_transport",
        format_series_table(
            rows,
            title=f"Trace transport: {lines} lines, chunk {config.chunk_size}, "
            f"{n_jobs} workers",
            row_header="transport",
        ),
    )

    # Contract: identical metrics on every transport, and descriptor dispatch
    # must shrink the per-chunk IPC payload vs pickled arrays.
    assert metrics["mmap"] == metrics["pickle"]
    assert metrics["shm"] == metrics["pickle"]
    assert per_chunk["mmap"] < per_chunk["pickle"]
    if "shm" in per_chunk:
        assert per_chunk["shm"] < per_chunk["pickle"]
