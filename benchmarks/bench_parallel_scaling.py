"""Wall-clock benchmark of the parallel engine's scaling and backends.

``bench_parallel_scaling`` runs the Figure 11-style granularity sweep once
on the serial path (``n_jobs=1``), once on the process-pool path and once on
the thread-pool path (``n_jobs`` = all cores), records the wall-clock times
and speedups to ``benchmarks/results/``, and asserts the engine's core
contract: all three runs produce *identical* metrics.

No minimum speedup is asserted -- on a single-core machine a pool can only
add overhead; the recorded tables are the artefact of interest.  The
transport comparison that used to live here moved to
``bench_trace_transport.py`` when it gained its own perf baseline.
"""

import os
import time

from repro.bench import BenchSpec, run_once, write_json, write_result
from repro.coding.ncosets import make_six_cosets
from repro.evaluation import format_series_table
from repro.evaluation.experiments import benchmark_traces
from repro.evaluation.sweeps import granularity_sweep

BENCHMARK = BenchSpec(
    figure="parallel",
    title="Parallel-engine scaling: serial vs process pool vs thread pool",
    cost=3.6,
    perf_artifacts=(
        "parallel_scaling.txt",
        "BENCH_parallel_scaling.json",
    ),
    env=(
        "REPRO_BENCH_TRACE_LEN",
        "REPRO_BENCH_SEED",
    ),
)

GRANULARITIES = (8, 16, 32, 64)


def _timed_sweep(traces, config, n_jobs, backend="process"):
    from repro.evaluation.parallel import ParallelRunner

    runner = ParallelRunner(n_jobs, backend=backend)
    start = time.perf_counter()
    sweep = granularity_sweep(
        lambda g, em: make_six_cosets(g, em),
        GRANULARITIES,
        traces,
        config.evaluation,
        runner=runner,
    )
    return sweep, time.perf_counter() - start


def bench_parallel_scaling(benchmark, experiment_config):
    traces = benchmark_traces(experiment_config)
    all_cores = os.cpu_count() or 1

    def measure():
        serial, serial_s = _timed_sweep(traces, experiment_config, n_jobs=1)
        process, process_s = _timed_sweep(traces, experiment_config, n_jobs=all_cores)
        thread, thread_s = _timed_sweep(
            traces, experiment_config, n_jobs=all_cores, backend="thread"
        )
        return serial, serial_s, process, process_s, thread, thread_s

    serial, serial_s, process, process_s, thread, thread_s = run_once(benchmark, measure)

    rows = {
        "serial (n_jobs=1)": {"wall_clock_s": serial_s, "workers": 1},
        f"process pool (n_jobs={all_cores})": {"wall_clock_s": process_s, "workers": all_cores},
        f"thread pool (n_jobs={all_cores})": {"wall_clock_s": thread_s, "workers": all_cores},
        "process speedup": {
            "wall_clock_s": serial_s / process_s if process_s else 0.0,
            "workers": all_cores,
        },
        "thread speedup": {
            "wall_clock_s": serial_s / thread_s if thread_s else 0.0,
            "workers": all_cores,
        },
    }
    table = format_series_table(
        rows,
        title=f"Parallel scaling: granularity sweep {GRANULARITIES}, "
        f"{len(traces)} traces, {all_cores} cores",
        row_header="run",
    )
    write_result("parallel_scaling", table)

    # The engine's contract: identical metrics for any worker count and for
    # either executor backend.
    assert list(serial) == list(GRANULARITIES)
    for granularity in GRANULARITIES:
        assert serial[granularity] == process[granularity]
        assert serial[granularity] == thread[granularity]

    write_json(
        "parallel_scaling",
        {
            "granularities": list(GRANULARITIES),
            "traces": len(traces),
            "workers": all_cores,
            "serial_s": serial_s,
            "parallel_s": process_s,
            "thread_s": thread_s,
            "speedup": serial_s / process_s if process_s else 0.0,
            "thread_speedup": serial_s / thread_s if thread_s else 0.0,
        },
    )
