"""Encode-throughput benchmark: scalar per-line loops vs the batch kernels.

Every compression front-end now exposes a vectorised ``compress_batch`` /
``decompress_batch`` pair (``src/repro/compression/kernels.py``) that the
encoders consume whole layout groups at a time; the scalar
``compress_line`` path survives as a thin per-line wrapper for the PCM
device model and the round-trip tests.  This benchmark measures both paths
on the same biased-content lines -- lines/s per scheme plus the
batch-over-scalar speedup -- and asserts the kernel contract:

* the batch streams are bit-identical to the scalar streams;
* ``decompress_batch`` round-trips the original lines;
* at the default 4096-line batch, BDI, FPC and the DIN payload encoder
  (whose BCH parity is one batched GF(2) reduction, not a per-line
  polynomial carry chain) run at least **5x** faster through the batch
  paths than through the per-line loops; and
* every *available* array backend (numpy reference, numba-compiled, cupy)
  produces bit-identical batch streams, with a per-backend throughput
  column recorded for the perf gate.  Backends whose optional dependency is
  not installed are skipped; their gates are declared ``optional`` so a
  runner without the extra warns instead of failing.

``REPRO_BENCH_KERNEL_LINES`` overrides the batch size (the speedup assert
only applies from 2048 lines up, where kernel start-up cost is amortised).
Results land in ``BENCH_encoder_throughput.json``; the perf gate tracks the
BDI/FPC/DIN speedups and the FPC batch throughput against
``benchmarks/baselines/encoder_throughput.json``.
"""

import os
import time

import numpy as np

from repro.bench import BenchSpec, Gate, run_once, write_json, write_result
from repro.coding.din import MAX_COMPRESSED_BITS, DINEncoder
from repro.compression import (
    BDICompressor,
    COCCompressor,
    FPCBDICompressor,
    FPCCompressor,
    WLCCompressor,
)
from repro.compression.backend import available_backends, use_array_backend
from repro.core.line import LineBatch
from repro.core.symbols import BITS_PER_LINE
from repro.evaluation import format_series_table
from repro.workloads.generator import generate_benchmark_trace

BENCHMARK = BenchSpec(
    figure="kernels",
    title="Vectorised compression kernels: batch vs scalar encode throughput",
    cost=4.0,
    perf_artifacts=(
        "encoder_throughput.txt",
        "BENCH_encoder_throughput.json",
    ),
    env=("REPRO_BENCH_KERNEL_LINES", "REPRO_BENCH_SEED"),
    backend_sensitive=True,
    gates=(
        Gate(
            artifact="BENCH_encoder_throughput.json",
            metric="speedup.bdi",
            direction="higher",
            tolerance_pct=60.0,
            context=("lines",),
        ),
        Gate(
            artifact="BENCH_encoder_throughput.json",
            metric="speedup.fpc",
            direction="higher",
            tolerance_pct=60.0,
            context=("lines",),
        ),
        Gate(
            artifact="BENCH_encoder_throughput.json",
            metric="speedup.din",
            direction="higher",
            tolerance_pct=60.0,
            context=("lines",),
        ),
        Gate(
            artifact="BENCH_encoder_throughput.json",
            metric="batch_lines_per_s.fpc",
            direction="higher",
            tolerance_pct=75.0,
            context=("lines",),
        ),
        # Per-backend columns only exist when the optional dependency is
        # installed, so their gates warn (not fail) when the metric or its
        # baseline is absent.
        Gate(
            artifact="BENCH_encoder_throughput.json",
            metric="backend_lines_per_s.numba.fpc",
            direction="higher",
            tolerance_pct=75.0,
            context=("lines",),
            optional=True,
        ),
        Gate(
            artifact="BENCH_encoder_throughput.json",
            metric="backend_lines_per_s.numba.bdi",
            direction="higher",
            tolerance_pct=75.0,
            context=("lines",),
            optional=True,
        ),
    ),
)

#: Batch size at and above which the >=5x speedup contract is asserted.
SPEEDUP_ASSERT_LINES = 2048
#: Minimum batch-over-scalar speedup required of BDI and FPC.
MIN_SPEEDUP = 5.0
#: Streams cross-checked bit-for-bit between the scalar and batch paths.
VERIFY_LINES = 64


def _compressors():
    return (
        ("bdi", BDICompressor()),
        ("fpc", FPCCompressor()),
        ("fpc+bdi", FPCBDICompressor()),
        ("coc", COCCompressor()),
        ("wlc-6msb", WLCCompressor(k=6)),
    )


def _eligible_lines(name, compressor, batch, lines):
    """``lines`` compressor-eligible words, tiling the pool when short.

    BDI and WLC raise on lines outside their coverage (matching the scalar
    contract), so their pools are the compressible subset of the trace; the
    always-applicable compressors measure on the raw line mix.
    """
    if name == "bdi":
        words = batch.words[compressor.sizes_bits(batch) < BITS_PER_LINE]
    elif name.startswith("wlc"):
        words = batch.words[compressor.line_compressible(batch)]
    else:
        words = batch.words
    reps = -(-lines // max(1, words.shape[0]))
    return np.tile(words, (reps, 1))[:lines]


def _din_eligible_lines(encoder, batch, lines):
    """``lines`` DIN-encodable words (FPC+BDI output within the 360-bit budget)."""
    words = batch.words[encoder.compressor.sizes_bits(batch) <= MAX_COMPRESSED_BITS]
    reps = -(-lines // max(1, words.shape[0]))
    return np.tile(words, (reps, 1))[:lines]


def bench_encoder_throughput(benchmark):
    lines = int(os.environ.get("REPRO_BENCH_KERNEL_LINES", "4096"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2018"))
    pool = generate_benchmark_trace("gcc", max(lines, 4096), seed).new

    def measure():
        results = {}
        for name, compressor in _compressors():
            words = _eligible_lines(name, compressor, pool, lines)
            sub = LineBatch(words)

            start = time.perf_counter()
            packed = compressor.compress_batch(sub)
            batch_s = time.perf_counter() - start

            start = time.perf_counter()
            scalar_streams = [
                compressor.compress_line(words[i]) for i in range(len(sub))
            ]
            scalar_s = time.perf_counter() - start

            # Contract: batch streams == scalar streams, and the batch
            # decode round-trips the original lines.
            for i in range(0, len(sub), max(1, len(sub) // VERIFY_LINES)):
                assert np.array_equal(packed.line(i).bits, scalar_streams[i].bits)
            assert np.array_equal(compressor.decompress_batch(packed), words)

            backends = {}
            for backend_name in available_backends():
                with use_array_backend(backend_name):
                    compressor.compress_batch(sub)  # warm-up (numba JIT, GPU init)
                    start = time.perf_counter()
                    per_backend = compressor.compress_batch(sub)
                    backends[backend_name] = time.perf_counter() - start
                assert np.array_equal(per_backend.bits, packed.bits)
                assert np.array_equal(per_backend.lengths, packed.lengths)

            results[name] = {
                "lines": len(sub),
                "scalar_s": scalar_s,
                "batch_s": batch_s,
                "backend_s": backends,
            }

        # DIN payload encode: the 3-to-4 expansion plus the batched BCH
        # parity (one GF(2) reduction over the whole batch) against the
        # per-line wrapper.  DIN has no public scalar API -- the wrapper is
        # what the PCM device model uses for single-line writes.
        encoder = DINEncoder()
        words = _din_eligible_lines(encoder, pool, lines)
        sub = LineBatch(words)
        start = time.perf_counter()
        batch_bits = encoder._encode_lines_bits(sub)
        batch_s = time.perf_counter() - start
        scalar_count = max(1, len(sub) // 8)  # per-line path is slow; sample
        start = time.perf_counter()
        scalar_bits = [encoder._encode_line_bits(words[i]) for i in range(scalar_count)]
        scalar_s = (time.perf_counter() - start) * (len(sub) / scalar_count)
        for i in range(0, scalar_count, max(1, scalar_count // VERIFY_LINES)):
            assert np.array_equal(batch_bits[i], scalar_bits[i])
        results["din"] = {
            "lines": len(sub),
            "scalar_s": scalar_s,
            "batch_s": batch_s,
            "backend_s": {},
        }
        return results

    results = run_once(benchmark, measure)

    payload = {
        "lines": lines,
        "array_backends": sorted(available_backends()),
        "scalar_lines_per_s": {},
        "batch_lines_per_s": {},
        "backend_lines_per_s": {},
        "speedup": {},
    }
    rows = {}
    for name, cell in results.items():
        scalar_rate = cell["lines"] / cell["scalar_s"] if cell["scalar_s"] else 0.0
        batch_rate = cell["lines"] / cell["batch_s"] if cell["batch_s"] else 0.0
        speedup = scalar_rate and batch_rate / scalar_rate
        payload["scalar_lines_per_s"][name] = scalar_rate
        payload["batch_lines_per_s"][name] = batch_rate
        payload["speedup"][name] = speedup
        rows[name] = {
            "scalar_lines_per_s": scalar_rate,
            "batch_lines_per_s": batch_rate,
            "speedup": speedup,
        }
        for backend_name, seconds in cell["backend_s"].items():
            rate = cell["lines"] / seconds if seconds else 0.0
            payload["backend_lines_per_s"].setdefault(backend_name, {})[name] = rate
            rows[name][f"{backend_name}_lines_per_s"] = rate
    write_json("encoder_throughput", payload)
    write_result(
        "encoder_throughput",
        format_series_table(
            rows,
            title=f"Encoder throughput: {lines}-line batches, biased content",
            row_header="compressor",
        ),
    )

    if lines >= SPEEDUP_ASSERT_LINES:
        assert payload["speedup"]["bdi"] >= MIN_SPEEDUP, payload["speedup"]
        assert payload["speedup"]["fpc"] >= MIN_SPEEDUP, payload["speedup"]
        assert payload["speedup"]["din"] >= MIN_SPEEDUP, payload["speedup"]
