"""Figure 2: 6cosets vs 4cosets on random data.

Reproduced claim: on random (unbiased) data the six-candidate encoding beats
the four hand-picked candidates on data-symbol energy, because any pair of
symbols may dominate a random block.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="figure2",
    title="6cosets vs 4cosets on random data",
    cost=1.5,
    artifacts=("figure02_random_4cosets_vs_6cosets.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_RANDOM_LINES", "REPRO_BENCH_SEED"),
)


def bench_figure2(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure2, experiment_config)

    rows = {}
    for scheme, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{scheme} @ {granularity}-bit"] = values
    table = format_series_table(rows, title="Figure 2: random data (pJ/write)", row_header="series")
    write_result("figure02_random_4cosets_vs_6cosets", table)

    # 6cosets' flexibility wins on the data symbols for random content.
    for granularity in experiments.FIGURE2_GRANULARITIES:
        assert result["6cosets"][granularity]["blk"] <= result["4cosets"][granularity]["blk"] * 1.02
    # Total energy: 6cosets keeps a visible advantage on random data (Fig. 2c).
    assert result["6cosets"][16]["total"] < result["4cosets"][16]["total"]
