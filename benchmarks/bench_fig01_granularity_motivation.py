"""Figure 1: 6cosets write energy vs data-block granularity (random and biased data).

Reproduced claim: as the encoding granularity shrinks from 512 to 8 bits the
data-symbol energy falls while the auxiliary-symbol energy rises, so the total
has a sweet spot well below the line size -- the observation that motivates
fine-grain encoding with cheaper auxiliary storage.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="figure1",
    title="6cosets write energy vs data-block granularity (random and biased)",
    cost=6.3,
    artifacts=("figure01a_random.txt", "figure01b_biased.txt"),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_RANDOM_LINES", "REPRO_BENCH_SEED"),
)


def bench_figure1_random(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure1, "random", experiment_config)
    rows = {f"{g}-bit": values for g, values in result.items()}
    table = format_series_table(rows, title="Figure 1(a): 6cosets on random data (pJ/write)",
                                row_header="granularity")
    write_result("figure01a_random", table)

    # Data-symbol energy decreases monotonically-ish with granularity.
    assert result[8]["blk"] < result[512]["blk"]
    # Auxiliary energy grows as blocks shrink and peaks at 8-bit blocks.
    assert result[8]["aux"] == max(values["aux"] for values in result.values())
    assert result[512]["aux"] == min(values["aux"] for values in result.values())


def bench_figure1_biased(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure1, "biased", experiment_config)
    rows = {f"{g}-bit": values for g, values in result.items()}
    table = format_series_table(rows, title="Figure 1(b): 6cosets on biased data (pJ/write)",
                                row_header="granularity")
    write_result("figure01b_biased", table)

    # Biased (benchmark) data uses considerably less energy than random data
    # (the random-workload result is cached from the previous benchmark).
    random_result = experiments.figure1("random", experiment_config)
    assert result[64]["total"] < random_result[64]["total"]
    assert result[8]["blk"] < result[512]["blk"]
    assert result[8]["aux"] > result[512]["aux"]
