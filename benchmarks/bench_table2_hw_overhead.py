"""Section VI-B / Table II context: WLCRC hardware overhead.

Regenerates the hardware-overhead numbers (area, delay, energy of the on-chip
WLCRC modules) from the analytical synthesis model calibrated to the paper's
45 nm Design Compiler results, for all four supported granularities, and
verifies the paper's "negligible overhead" claims at the WLCRC-16 design point.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import format_series_table
from repro.hardware import WLCRCSynthesisModel

BENCHMARK = BenchSpec(
    figure="table2",
    title="WLCRC hardware overhead (45 nm synthesis model)",
    cost=0.2,
    artifacts=("table2_hw_overhead.txt",),
)


def bench_hardware_overhead(benchmark):
    model = WLCRCSynthesisModel()
    table_data = run_once(benchmark, model.overhead_table)

    rows = {f"WLCRC-{granularity}": values for granularity, values in table_data.items()}
    table = format_series_table(rows, precision=4, title="WLCRC hardware overhead (45 nm)",
                                row_header="configuration")
    write_result("table2_hw_overhead", table)

    wlcrc16 = table_data[16]
    # Published reference numbers (Section VI-B).
    assert abs(wlcrc16["area_mm2"] - 0.0498) < 1e-6
    assert abs(wlcrc16["write_delay_ns"] - 2.63) < 1e-6
    assert abs(wlcrc16["read_delay_ns"] - 0.89) < 1e-6
    assert abs(wlcrc16["write_energy_pj"] - 0.94) < 1e-6
    # Negligible relative to the PCM die and to the cell-programming energy.
    assert wlcrc16["area_overhead_pct"] < 1.0
    assert wlcrc16["write_energy_overhead_pct"] < 0.1
