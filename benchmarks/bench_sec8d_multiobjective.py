"""Section VIII-D: multi-objective optimisation (energy vs endurance).

Reproduced claim: when the two coset families are within a small threshold of
each other in energy, choosing the family that rewrites fewer cells improves
endurance at a negligible energy cost.  The magnitude of the gain depends on
how often the two families tie, which is workload-dependent; the benchmark
asserts the direction (no meaningful endurance or energy regression) and
records the measured trade-off in the results table.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="section8d",
    title="Multi-objective optimisation: energy vs endurance",
    cost=1.6,
    artifacts=("section8d_multiobjective.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_section8d_multiobjective(benchmark, experiment_config):
    result = run_once(
        benchmark, experiments.section8d_multiobjective, experiment_config, 0.01
    )

    table = format_series_table(result, precision=2,
                                title="Section VIII-D: WLCRC-16 vs multi-objective WLCRC-16 (T=1%)",
                                row_header="benchmark")
    write_result("section8d_multiobjective", table)

    average = result["Ave."]
    # The multi-objective mode must not regress endurance and may only give
    # back a tiny amount of energy (the paper: +1.6 % energy for -19 % cells).
    assert average["cells_multi"] <= average["cells_plain"] * 1.01
    assert average["energy_multi"] <= average["energy_plain"] * 1.03
    # Both variants stay far below the baseline's updated-cell count.
    assert average["cells_multi"] < average["baseline_cells"]
    assert average["energy_multi"] < average["baseline_energy"]
