"""Zero-copy trace transport benchmark: pickled vs shared-memory vs mmap.

``bench_trace_transport`` compares how chunk data reaches the workers --
pickled arrays (the legacy path), a shared-memory segment, and an mmap'd
corpus file -- on one long random trace: per-chunk IPC payload bytes,
end-to-end wall clock, and exact metric equality across transports.
Results land in ``BENCH_trace_transport.json``, which CI uploads as an
artifact and ``repro bench compare`` gates against
``benchmarks/baselines/trace_transport.json``.

The per-chunk IPC payload sizes are deterministic for a given trace length
and chunk size, so their gates are tight; wall clocks are machine noise and
deliberately ungated.  ``REPRO_BENCH_TRANSPORT_LINES`` sets the trace
length (default one million lines).

This lived in ``bench_parallel_scaling.py`` until the transport gates got
their own checked-in baseline; as its own bench it partitions, merges and
gates independently of the scaling study.
"""

import os
import pickle
import tempfile
import time
from pathlib import Path

from repro.bench import BenchSpec, Gate, run_once, write_json, write_result
from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.evaluation import format_series_table
from repro.evaluation.parallel import ParallelRunner, WorkUnit
from repro.traces.store import load_trace, save_trace
from repro.traces.transport import TraceExporter
from repro.workloads.generator import generate_random_trace

BENCHMARK = BenchSpec(
    figure="transport",
    title="Zero-copy trace transport: per-chunk IPC and wall clock",
    cost=2.6,
    perf_artifacts=(
        "trace_transport.txt",
        "BENCH_trace_transport.json",
    ),
    env=(
        "REPRO_BENCH_TRANSPORT_LINES",
        "REPRO_BENCH_SEED",
    ),
    gates=(
        Gate(
            artifact="BENCH_trace_transport.json",
            metric="per_chunk_ipc_bytes.mmap",
            direction="lower",
            tolerance_pct=10.0,
            context=("lines", "chunk_size"),
        ),
        Gate(
            artifact="BENCH_trace_transport.json",
            metric="per_chunk_ipc_bytes.shm",
            direction="lower",
            tolerance_pct=10.0,
            context=("lines", "chunk_size"),
        ),
        Gate(
            artifact="BENCH_trace_transport.json",
            metric="ipc_reduction_vs_pickle.mmap",
            direction="higher",
            tolerance_pct=10.0,
            context=("lines", "chunk_size"),
        ),
    ),
)


def bench_trace_transport(benchmark):
    """Per-chunk IPC and wall clock: pickled vs shared-memory vs mmap transport."""
    lines = int(os.environ.get("REPRO_BENCH_TRANSPORT_LINES", "1000000"))
    n_jobs = os.cpu_count() or 1
    config = EvaluationConfig(chunk_size=2048)
    encoder = make_scheme("baseline")

    def measure():
        trace = generate_random_trace(lines, seed=2018)
        results = {}
        with tempfile.TemporaryDirectory() as tmp:
            corpus_trace = load_trace(save_trace(trace, Path(tmp) / "random.wtrc"))

            # Per-chunk IPC payload: the pickled size of one dispatched shard.
            runner = ParallelRunner(n_jobs)
            unit_mem = [WorkUnit("t", encoder, trace, config)]
            unit_mmap = [WorkUnit("t", encoder, corpus_trace, config)]
            per_chunk = {
                "pickle": len(pickle.dumps(next(runner._shards(unit_mem))))
            }
            with TraceExporter("shm") as exporter:
                descriptor = exporter.export(trace)
                if descriptor is not None:
                    per_chunk["shm"] = len(
                        pickle.dumps(next(runner._shards(unit_mem, [descriptor])))
                    )
            with TraceExporter("mmap") as exporter:
                descriptor = exporter.export(corpus_trace)
                per_chunk["mmap"] = len(
                    pickle.dumps(next(runner._shards(unit_mmap, [descriptor])))
                )

            # End-to-end wall clock per transport (metrics must be identical).
            wall = {}
            metrics = {}
            for transport, units in (
                ("pickle", unit_mem),
                ("shm", unit_mem),
                ("mmap", unit_mmap),
            ):
                start = time.perf_counter()
                metrics[transport] = ParallelRunner(n_jobs, transport=transport).map(units)[0]
                wall[transport] = time.perf_counter() - start
            results["per_chunk_ipc_bytes"] = per_chunk
            results["wall_clock_s"] = wall
            results["metrics"] = metrics
        return results

    results = run_once(benchmark, measure)
    per_chunk = results["per_chunk_ipc_bytes"]
    wall = results["wall_clock_s"]
    metrics = results["metrics"]

    payload = {
        "lines": lines,
        "chunk_size": config.chunk_size,
        "n_jobs": n_jobs,
        "per_chunk_ipc_bytes": per_chunk,
        "ipc_reduction_vs_pickle": {
            name: per_chunk["pickle"] / size
            for name, size in per_chunk.items()
            if name != "pickle" and size
        },
        "wall_clock_s": wall,
    }
    write_json("trace_transport", payload)
    rows = {
        name: {
            "per_chunk_bytes": per_chunk.get(name, 0),
            "wall_clock_s": wall[name],
            "ipc_reduction": payload["ipc_reduction_vs_pickle"].get(name, 1.0),
        }
        for name in wall
    }
    write_result(
        "trace_transport",
        format_series_table(
            rows,
            title=f"Trace transport: {lines} lines, chunk {config.chunk_size}, "
            f"{n_jobs} workers",
            row_header="transport",
        ),
    )

    # Contract: identical metrics on every transport, and descriptor dispatch
    # must shrink the per-chunk IPC payload vs pickled arrays.
    assert metrics["mmap"] == metrics["pickle"]
    assert metrics["shm"] == metrics["pickle"]
    assert per_chunk["mmap"] < per_chunk["pickle"]
    if "shm" in per_chunk:
        assert per_chunk["shm"] < per_chunk["pickle"]
