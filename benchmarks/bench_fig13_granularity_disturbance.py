"""Figure 13: write-disturbance errors vs granularity for the WLC-based schemes.

Reproduced claim: disturbance stays at a few errors per request for every
configuration and decreases as the granularity becomes coarser (fewer symbol
flips per request).
"""

from repro.evaluation import experiments, format_series_table

from conftest import run_once, write_result


def bench_figure13(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure13, experiment_config)

    rows = {}
    for family, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{family} @ {granularity}-bit"] = values
    table = format_series_table(rows, precision=2,
                                title="Figure 13: WLC-based schemes, disturbance errors",
                                row_header="series")
    write_result("figure13_granularity_disturbance", table)

    for family, per_granularity in result.items():
        values = {g: v["total"] for g, v in per_granularity.items()}
        # A few errors per request for every configuration.
        for granularity, value in values.items():
            assert 0.3 < value < 10.0, (family, granularity, value)
        # Coarser granularity never increases disturbance by much.
        assert values[64] <= values[8] * 1.10, family
