"""Figure 13: write-disturbance errors vs granularity for the WLC-based schemes.

Reproduced claim: disturbance stays at a few errors per request for every
configuration and decreases as the granularity becomes coarser (fewer symbol
flips per request).
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

# Cost assumes co-location with bench_fig11 (shared granularity sweep).
BENCHMARK = BenchSpec(
    figure="figure13",
    title="WLC-based schemes: disturbance vs granularity",
    cost=0.2,
    group="figure11-family",
    artifacts=("figure13_granularity_disturbance.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure13(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure13, experiment_config)

    rows = {}
    for family, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{family} @ {granularity}-bit"] = values
    table = format_series_table(rows, precision=2,
                                title="Figure 13: WLC-based schemes, disturbance errors",
                                row_header="series")
    write_result("figure13_granularity_disturbance", table)

    for family, per_granularity in result.items():
        values = {g: v["total"] for g, v in per_granularity.items()}
        # A few errors per request for every configuration.
        for granularity, value in values.items():
            assert 0.3 < value < 10.0, (family, granularity, value)
        # Coarser granularity never increases disturbance by much.
        assert values[64] <= values[8] * 1.10, family
