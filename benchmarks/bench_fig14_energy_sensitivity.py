"""Figure 14: sensitivity of WLCRC-16 to the intermediate-state write energies.

Reproduced claim: even when the SET energies of the two expensive states are
reduced by more than 6x (reflecting future device/programming improvements),
WLCRC-16 still delivers a substantial write-energy improvement over the
differential-write baseline (the paper reports >= 32 %, down from ~52 %).
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="figure14",
    title="WLCRC-16 sensitivity to intermediate-state write energies",
    cost=3.2,
    artifacts=("figure14_energy_sensitivity.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure14(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure14, experiment_config)

    table = format_series_table(result, precision=2,
                                title="Figure 14: WLCRC-16 improvement vs intermediate-state energy",
                                row_header="energy level")
    write_result("figure14_energy_sensitivity", table)

    improvements = {level: values["improvement_pct"] for level, values in result.items()}
    ordered_levels = list(result.keys())
    # The default energy level gives the largest improvement ...
    default_level = ordered_levels[0]
    assert improvements[default_level] == max(improvements.values())
    # ... and even the cheapest intermediate states keep a double-digit
    # improvement (paper: >= 32 % on its traces; the synthetic traces retain
    # a smaller but still substantial margin).
    assert min(improvements.values()) >= 10.0
    # Improvement decreases monotonically as intermediate states get cheaper.
    values = [improvements[level] for level in ordered_levels]
    assert all(a >= b - 1.0 for a, b in zip(values, values[1:]))
