"""Figure 4: percentage of compressed memory lines (WLC k=4..9, COC, FPC+BDI).

Reproduced claim: WLC with up to 6 reclaimed+1 MSBs compresses the vast
majority of memory lines, far more than FPC+BDI manages within the DIN budget,
while requiring more than 6 identical MSBs (k = 7..9) costs a large fraction
of the coverage -- the reason WLCRC is designed around <= 5 reclaimed bits.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="figure4",
    title="Percentage of compressed memory lines (WLC, COC, FPC+BDI)",
    cost=1.5,
    artifacts=("figure04_compression_coverage.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure4(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure4, experiment_config)

    table = format_series_table(result, title="Figure 4: % of compressed memory lines",
                                row_header="benchmark")
    write_result("figure04_compression_coverage", table)

    average = result["ave."]
    # WLC coverage at k <= 6 is high on every benchmark and ~85-95 % on average.
    assert average["6-MSBs"] > 75.0
    # Coverage shrinks sharply when more MSBs must match (k = 9).
    assert average["9-MSBs"] < average["6-MSBs"] - 15.0
    # WLC (k<=6) covers far more lines than FPC+BDI within the DIN budget.
    assert average["6-MSBs"] > average["FPC+BDI"] + 15.0
    # COC compresses most lines (it optimises coverage), like the paper reports.
    assert average["COC"] > 70.0
