"""Figure 5: 4cosets vs 3cosets vs restricted 3-r-cosets on benchmark traces.

Reproduced claim: dropping candidate C4 (3cosets) costs almost nothing on
biased data, and restricting the per-block choice to the {C1,C2} / {C1,C3}
families (3-r-cosets) costs only a little more while roughly halving the
auxiliary information -- the key enabler for embedding the auxiliary bits in
WLC's reclaimed space.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="figure5",
    title="4cosets vs 3cosets vs restricted 3-r-cosets",
    cost=6.5,
    artifacts=("figure05_restricted_cosets.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure5(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure5, experiment_config)

    rows = {}
    for scheme, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{scheme} @ {granularity}-bit"] = values
    table = format_series_table(rows, title="Figure 5: restricted coset coding (pJ/write)",
                                row_header="series")
    write_result("figure05_restricted_cosets", table)

    for granularity in (16, 32):
        four = result["4cosets"][granularity]["total"]
        three = result["3cosets"][granularity]["total"]
        restricted = result["3-r-cosets"][granularity]["total"]
        # 3cosets gives up only a little relative to 4cosets ...
        assert three <= four * 1.10
        # ... and the restricted variant stays close to the unrestricted one.
        assert restricted <= three * 1.12
