"""Figure 12: updated cells per request vs granularity for the WLC-based schemes.

Reproduced claim: at 16-bit granularity the restricted coset coding rewrites
fewer (or at worst the same number of) cells than the unrestricted WLC
schemes, and the auxiliary part contributes only a small share of the updates.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

# Cost assumes co-location with bench_fig11 (shared granularity sweep).
BENCHMARK = BenchSpec(
    figure="figure12",
    title="WLC-based schemes: updated cells vs granularity",
    cost=0.2,
    group="figure11-family",
    artifacts=("figure12_granularity_endurance.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure12(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure12, experiment_config)

    rows = {}
    for family, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            rows[f"{family} @ {granularity}-bit"] = values
    table = format_series_table(rows, title="Figure 12: WLC-based schemes, updated cells",
                                row_header="series")
    write_result("figure12_granularity_endurance", table)

    wlcrc16 = result["WLCRC"][16]["total"]
    four16 = result["4cosets"][16]["total"]
    three16 = result["3cosets"][16]["total"]
    assert wlcrc16 <= four16 * 1.05
    assert wlcrc16 <= three16 * 1.05
    # The auxiliary part is a minor share of the updated cells everywhere.
    for family, per_granularity in result.items():
        for granularity, values in per_granularity.items():
            assert values["aux"] <= 0.5 * values["blk"], (family, granularity)
