"""Table I: the four proposed coset candidates (symbol-to-state mappings).

This benchmark verifies that the implemented candidates match the published
table cell-for-cell and regenerates it as text.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.evaluation import experiments, format_series_table

BENCHMARK = BenchSpec(
    figure="table1",
    title="The four proposed coset candidates",
    cost=0.1,
    artifacts=("table1_coset_candidates.txt",),
)

#: Table I of the paper: state -> {candidate -> bit pattern}.
PAPER_TABLE1 = {
    "S1": {"C1": "00", "C2": "11", "C3": "11", "C4": "11"},
    "S2": {"C1": "10", "C2": "00", "C3": "01", "C4": "00"},
    "S3": {"C1": "11", "C2": "10", "C3": "00", "C4": "01"},
    "S4": {"C1": "01", "C2": "01", "C3": "10", "C4": "10"},
}


def bench_table1(benchmark):
    result = run_once(benchmark, experiments.table1)
    table = format_series_table(result, title="Table I: coset candidates", row_header="state")
    write_result("table1_coset_candidates", table)
    assert result == PAPER_TABLE1
