"""Peak-memory and throughput benchmark of the streaming trace ingest.

Converts one synthetic ramulator2-style ASCII trace to ``.wtrc`` twice --
through the in-memory path (``ingest_trace_file`` + ``save_trace``, the
pre-streaming behaviour) and through the bounded-memory streaming path
(``stream_ingest_to_wtrc``) -- and records, for each, the wall clock, the
ingest throughput (input lines per second) and the tracemalloc peak.  The
two output files must be byte-identical; the streamed peak must not scale
with the trace (it is bounded by the synthesis quantum plus the unique-line
state).

Results land in ``BENCH_streaming_ingest.json``, which CI uploads as an
artifact alongside the other ``BENCH_*.json`` perf trajectories.

Both paths share one synthesis quantum (``REPRO_BENCH_INGEST_CHUNK_LINES``,
default 8192 -- smaller than the library default so the quantum's fixed
scratch does not mask the trace-proportional cost being measured; the
outputs stay byte-identical because the quantum is the same on both sides).

Environment knobs: ``REPRO_BENCH_INGEST_LINES`` sets the input trace's
access count (default 150000).
"""

import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.bench import BenchSpec, Gate, run_once, write_json, write_result
from repro.coding.ncosets import make_three_cosets
from repro.core.config import EvaluationConfig
from repro.evaluation import format_series_table
from repro.evaluation.runner import evaluate_trace
from repro.traces.ingest import ingest_trace_file, stream_ingest_to_wtrc
from repro.traces.store import load_trace, read_trace_header, save_trace

# tracemalloc peaks are near-deterministic for a fixed input size (40 %
# headroom covers Python/numpy version drift); throughput only gates
# catastrophic slowdowns -- CI runner hardware varies.
BENCHMARK = BenchSpec(
    figure="streaming",
    title="Streaming vs in-memory trace ingest (peak memory + throughput)",
    cost=4.6,
    perf_artifacts=("streaming_ingest.txt", "BENCH_streaming_ingest.json"),
    env=("REPRO_BENCH_INGEST_LINES", "REPRO_BENCH_INGEST_CHUNK_LINES"),
    gates=(
        Gate(
            artifact="BENCH_streaming_ingest.json",
            metric="streamed_peak_bytes",
            direction="lower",
            tolerance_pct=40.0,
            context=("input_lines", "synthesis_chunk_lines"),
        ),
        Gate(
            artifact="BENCH_streaming_ingest.json",
            metric="peak_ratio",
            direction="higher",
            tolerance_pct=30.0,
            context=("input_lines", "synthesis_chunk_lines"),
        ),
        Gate(
            artifact="BENCH_streaming_ingest.json",
            metric="streamed_lines_per_s",
            direction="higher",
            tolerance_pct=75.0,
            context=("input_lines", "synthesis_chunk_lines"),
        ),
        Gate(
            artifact="BENCH_streaming_ingest.json",
            metric="fused512_peak_ratio",
            direction="higher",
            tolerance_pct=40.0,
            context=("input_lines", "synthesis_chunk_lines"),
        ),
    ),
)

#: Lines of the 512-bit fused-evaluation column (capped so the bench stays
#: bounded); the tile is deliberately much smaller than the super-batch so
#: the peak-memory contrast measures the tiling, not the trace size.
FUSED_EVAL_LINES = 24_576
FUSED_TILE_LINES = 2_048
FUSED_CHUNK_LINES = 512


def _synthetic_ascii_trace(path: Path, n_lines: int, seed: int) -> Path:
    """A ramulator2-style trace with a skewed (reuse-heavy) address mix."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 1 << 10, n_lines) * 64
    cold = rng.integers(0, 1 << 22, n_lines) * 64
    addresses = np.where(rng.random(n_lines) < 0.5, hot, cold)
    is_write = rng.random(n_lines) < 0.7
    with open(path, "w") as fh:
        for address, write in zip(addresses, is_write):
            fh.write(f"{'W' if write else 'R'} 0x{int(address):X} 0x40\n")
    return path


def _traced(func):
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = func()
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, elapsed, peak


def bench_streaming_ingest(benchmark, tmp_path_factory):
    n_lines = int(os.environ.get("REPRO_BENCH_INGEST_LINES", "150000"))
    quantum = int(os.environ.get("REPRO_BENCH_INGEST_CHUNK_LINES", "8192"))
    tmp = tmp_path_factory.mktemp("streaming-ingest")
    source = _synthetic_ascii_trace(tmp / "input.trace", n_lines, seed=2018)

    def measure():
        trace, memory_s, memory_peak = _traced(
            lambda: ingest_trace_file(source, chunk_lines=quantum)
        )
        save_trace(trace, tmp / "memory.wtrc")
        del trace
        streamed, stream_s, stream_peak = _traced(
            lambda: stream_ingest_to_wtrc(
                source, tmp / "streamed.wtrc", chunk_lines=quantum
            )
        )
        return memory_s, memory_peak, stream_s, stream_peak

    memory_s, memory_peak, stream_s, stream_peak = run_once(benchmark, measure)

    # The two paths must agree bit for bit -- the benchmark doubles as the
    # full-size identity check -- and streaming must never cost more memory
    # than materialising (the win grows with trace length: the in-memory
    # peak scales with the trace, the streamed peak with the quantum).
    assert (tmp / "memory.wtrc").read_bytes() == (tmp / "streamed.wtrc").read_bytes()
    assert stream_peak <= memory_peak * 1.2

    # 512-bit fused encode+metrics column: evaluate the ingested trace with
    # a whole-trace super-batch at the paper's largest granularity, tiled vs
    # materialising.  The fused path must peak >= 2x lower while producing
    # bit-identical metrics -- the repo-level gate of the fused subsystem.
    eval_lines = min(read_trace_header(tmp / "streamed.wtrc").n_lines, FUSED_EVAL_LINES)
    trace512 = load_trace(tmp / "streamed.wtrc")[:eval_lines]
    encoder512 = make_three_cosets(512)

    def evaluate512(tile):
        config = EvaluationConfig(
            chunk_size=FUSED_CHUNK_LINES,
            superbatch_size=eval_lines,
            fused_tile_lines=tile,
            sample_disturbance=True,
            seed=2018,
        )
        return evaluate_trace(encoder512, trace512, config)

    fused_metrics, fused_s, fused_peak = _traced(lambda: evaluate512(FUSED_TILE_LINES))
    full_metrics, full_s, full_peak = _traced(lambda: evaluate512(None))
    assert fused_metrics == full_metrics, "fused metrics diverged from reference"
    fused_ratio = full_peak / fused_peak if fused_peak else 0.0
    assert fused_ratio >= 2.0, (
        f"fused 512-bit peak {fused_peak} not >=2x under materialising "
        f"peak {full_peak} (ratio {fused_ratio:.2f})"
    )

    rows = {
        "in-memory": {
            "wall_clock_s": memory_s,
            "lines_per_s": n_lines / memory_s if memory_s else 0.0,
            "tracemalloc_peak_mib": memory_peak / (1 << 20),
        },
        "streamed": {
            "wall_clock_s": stream_s,
            "lines_per_s": n_lines / stream_s if stream_s else 0.0,
            "tracemalloc_peak_mib": stream_peak / (1 << 20),
        },
        "peak ratio (mem/stream)": {
            "wall_clock_s": 0.0,
            "lines_per_s": 0.0,
            "tracemalloc_peak_mib": memory_peak / stream_peak if stream_peak else 0.0,
        },
        "512b eval, materialised": {
            "wall_clock_s": full_s,
            "lines_per_s": eval_lines / full_s if full_s else 0.0,
            "tracemalloc_peak_mib": full_peak / (1 << 20),
        },
        "512b eval, fused tiles": {
            "wall_clock_s": fused_s,
            "lines_per_s": eval_lines / fused_s if fused_s else 0.0,
            "tracemalloc_peak_mib": fused_peak / (1 << 20),
        },
        "peak ratio (full/fused)": {
            "wall_clock_s": 0.0,
            "lines_per_s": 0.0,
            "tracemalloc_peak_mib": fused_ratio,
        },
    }
    write_result(
        "streaming_ingest",
        format_series_table(
            rows,
            title=f"Streaming vs in-memory ingest, {n_lines} input accesses",
            row_header="path",
        ),
    )
    write_json(
        "streaming_ingest",
        {
            "input_lines": n_lines,
            "synthesis_chunk_lines": quantum,
            "write_requests": read_trace_header(tmp / "streamed.wtrc").n_lines,
            "in_memory_s": memory_s,
            "in_memory_peak_bytes": memory_peak,
            "streamed_s": stream_s,
            "streamed_peak_bytes": stream_peak,
            "in_memory_lines_per_s": n_lines / memory_s if memory_s else 0.0,
            "streamed_lines_per_s": n_lines / stream_s if stream_s else 0.0,
            "peak_ratio": memory_peak / stream_peak if stream_peak else 0.0,
            "fused512_eval_lines": eval_lines,
            "fused512_tile_lines": FUSED_TILE_LINES,
            "fused512_peak_bytes": fused_peak,
            "fused512_full_peak_bytes": full_peak,
            "fused512_peak_ratio": fused_ratio,
            "fused512_s": fused_s,
            "fused512_full_s": full_s,
        },
    )
