"""Figure 8: average write energy per request for all schemes and benchmarks.

Reproduced claims:

* WLCRC-16 has the lowest average write energy of all evaluated schemes;
* it reduces energy substantially versus the differential-write baseline
  (the paper reports ~52 %; the synthetic traces land in the 35-50 % range);
* it clearly beats the leading prior line-level scheme (6cosets) and FlipMin;
* WLC-based schemes are effective on both HMI and LMI benchmark groups.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.coding import FIGURE8_SCHEMES
from repro.evaluation import experiments, format_series_table

# Figures 8, 9 and 10 read three metrics of one all-schemes evaluation; the
# shared group co-schedules them into the same shard, where this bench runs
# first (name order) and primes the in-process experiment cache.
BENCHMARK = BenchSpec(
    figure="figure8",
    title="Average write energy per request, all schemes",
    cost=20.0,
    group="figure8-family",
    artifacts=("figure08_write_energy.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure8(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure8, experiment_config, FIGURE8_SCHEMES)

    table = format_series_table(result, title="Figure 8: write energy (pJ per request)",
                                row_header="scheme")
    write_result("figure08_write_energy", table)

    averages = {scheme: rows["Ave."] for scheme, rows in result.items()}
    best = min(averages, key=averages.get)
    # The best scheme is one of the two WLC-based designs, and WLCRC-16 is
    # within a whisker (2 %) of the minimum.  The paper additionally measures
    # a ~10 % edge of WLCRC-16 over WLC+4cosets; on the synthetic traces the
    # two are statistically tied (see EXPERIMENTS.md).
    assert best in ("wlcrc-16", "wlc+4cosets"), f"unexpected best scheme: {best}"

    baseline = averages["baseline"]
    wlcrc = averages["wlcrc-16"]
    assert wlcrc < 0.70 * baseline, "WLCRC-16 should save well over 30% vs the baseline"
    assert wlcrc < averages["6cosets"], "WLCRC-16 must beat the leading 6cosets scheme"
    assert wlcrc < averages["flipmin"], "WLCRC-16 must beat FlipMin"
    assert wlcrc < averages["din"], "WLCRC-16 must beat DIN"
    assert wlcrc < averages["coc+4cosets"], "WLCRC-16 must beat COC+4cosets"
    assert wlcrc <= averages["wlc+4cosets"] * 1.02, "WLCRC-16 should match or beat WLC+4cosets"

    # The improvement holds for both memory-intensity groups.
    for group in ("HMI Ave.", "LMI Ave."):
        assert result["wlcrc-16"][group] < result["baseline"][group]
