"""Figure 10: average write-disturbance errors per write request.

Reproduced claims:

* every scheme sees a few disturbance errors per 512-bit line write;
* DIN has the highest disturbance (it rewrites the most cells);
* WLCRC-16 stays in the same range as the baseline and the other low-overhead
  schemes (the paper: between three and four errors per request on average,
  with WLC-based schemes near the minimum).
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.coding import FIGURE8_SCHEMES
from repro.evaluation import experiments, format_series_table

# Cost assumes co-location with bench_fig08 (shared evaluation cache).
BENCHMARK = BenchSpec(
    figure="figure10",
    title="Write-disturbance errors per request",
    cost=0.5,
    group="figure8-family",
    artifacts=("figure10_disturbance.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure10(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure10, experiment_config, FIGURE8_SCHEMES)

    table = format_series_table(result, precision=2,
                                title="Figure 10: write-disturbance errors per request",
                                row_header="scheme")
    write_result("figure10_disturbance", table)

    averages = {scheme: rows["Ave."] for scheme, rows in result.items()}
    # All schemes land in the "a few errors per request" regime.
    for scheme, value in averages.items():
        assert 0.5 < value < 10.0, f"{scheme} disturbance out of expected range: {value}"
    # DIN's aggressive re-layout puts it near the top of the disturbance range
    # (the paper ranks it worst; on the synthetic traces COC+4cosets, which
    # re-layouts lines just as aggressively, can edge past it).
    assert averages["din"] >= 0.90 * max(averages.values())
    assert averages["din"] > averages["wlcrc-16"]
    # WLCRC stays close to the baseline (within ~35 %).
    assert averages["wlcrc-16"] < 1.35 * averages["baseline"]
