"""Figure 9: average number of updated cells per write request (endurance).

Reproduced claims:

* WLCRC-16 rewrites noticeably fewer cells than the baseline (paper: ~20 %);
* it is at least as gentle as the line-level coset schemes (6cosets, FlipMin);
* DIN / COC-based schemes rewrite more cells because their compressed layouts
  shift bit positions between consecutive writes.
"""

from repro.bench import BenchSpec, run_once, write_result
from repro.coding import FIGURE8_SCHEMES
from repro.evaluation import experiments, format_series_table

# Cost assumes co-location with bench_fig08 (shared evaluation cache).
BENCHMARK = BenchSpec(
    figure="figure9",
    title="Updated cells per write request (endurance)",
    cost=0.5,
    group="figure8-family",
    artifacts=("figure09_endurance.txt",),
    env=("REPRO_BENCH_TRACE_LEN", "REPRO_BENCH_SEED"),
)


def bench_figure9(benchmark, experiment_config):
    result = run_once(benchmark, experiments.figure9, experiment_config, FIGURE8_SCHEMES)

    table = format_series_table(result, title="Figure 9: updated cells per request",
                                row_header="scheme")
    write_result("figure09_endurance", table)

    averages = {scheme: rows["Ave."] for scheme, rows in result.items()}
    assert averages["wlcrc-16"] < 0.95 * averages["baseline"]
    assert averages["wlcrc-16"] < averages["6cosets"]
    assert averages["wlcrc-16"] < averages["flipmin"]
    assert averages["din"] > averages["wlcrc-16"]
    assert averages["coc+4cosets"] > averages["wlcrc-16"]
