#!/usr/bin/env python
"""Granularity study: why the paper settles on 16-bit blocks (Figures 1, 5, 11).

The script sweeps the data-block granularity for three scheme families and
prints the data/auxiliary energy breakdown, showing the two competing forces
the paper describes:

* finer blocks reduce the data-symbol energy (more flexibility per block);
* finer blocks need more auxiliary bits, and for the WLC-based schemes they
  also need more reclaimed bits per word, which reduces how many lines can be
  compressed at all.

WLCRC's restricted coset coding needs fewer auxiliary bits per block, so its
optimum sits at 16-bit blocks while the unrestricted WLC+4cosets bottoms out
at 32-bit blocks.

Run with::

    python examples/granularity_study.py [trace_length_per_benchmark]
"""

import sys

from repro.coding import make_scheme
from repro.core.config import EvaluationConfig
from repro.evaluation import format_series_table, granularity_sweep
from repro.workloads import generate_benchmark_trace


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    benchmarks = ("gcc", "sopl", "libq", "mcf")
    config = EvaluationConfig(trace_length=trace_length)

    print(f"Generating {len(benchmarks)} benchmark traces x {trace_length} requests...")
    traces = {name: generate_benchmark_trace(name, trace_length, seed=2018) for name in benchmarks}

    families = {
        "6cosets (no compression)": lambda g, em: make_scheme(f"6cosets-{g}", em),
        "WLC+4cosets": lambda g, em: make_scheme(f"wlc+4cosets-{g}", em),
        "WLCRC (restricted)": lambda g, em: make_scheme(f"wlcrc-{g}", em),
    }
    granularities = {
        "6cosets (no compression)": (16, 32, 64, 128, 512),
        "WLC+4cosets": (8, 16, 32, 64),
        "WLCRC (restricted)": (8, 16, 32, 64),
    }

    for label, factory in families.items():
        sweep = granularity_sweep(factory, granularities[label], traces, config)
        rows = {
            f"{granularity}-bit blocks": {
                "data energy (pJ)": metrics.avg_data_energy_pj,
                "aux energy (pJ)": metrics.avg_aux_energy_pj,
                "total (pJ)": metrics.avg_energy_pj,
                "compressed %": 100 * metrics.compressed_fraction,
            }
            for granularity, metrics in sweep.items()
        }
        print()
        print(format_series_table(rows, precision=1, title=label, row_header="granularity"))

    print(
        "\nNote how WLCRC keeps >85% of lines compressible down to 16-bit blocks, "
        "while WLC+4cosets loses compression coverage below 32-bit blocks."
    )


if __name__ == "__main__":
    main()
