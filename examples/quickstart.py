#!/usr/bin/env python
"""Quickstart: evaluate WLCRC-16 against the differential-write baseline.

This is the smallest end-to-end use of the library's public API:

1. generate a synthetic write trace for one benchmark profile;
2. build two write-encoding schemes from the registry;
3. run the trace-driven evaluator and compare the paper's three metrics
   (write energy, updated cells, write-disturbance errors).

Run with::

    python examples/quickstart.py [benchmark] [trace_length]
"""

import sys

from repro import evaluate_trace, make_scheme
from repro.evaluation import format_series_table, improvement_percent
from repro.workloads import generate_benchmark_trace


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    trace_length = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000

    print(f"Generating a synthetic '{benchmark}' write trace ({trace_length} requests)...")
    trace = generate_benchmark_trace(benchmark, length=trace_length, seed=2018)
    print(f"  {100 * trace.changed_bit_fraction():.1f}% of line bits change per write request\n")

    results = {}
    for name in ("baseline", "6cosets", "wlc+4cosets", "wlcrc-16"):
        scheme = make_scheme(name)
        metrics = evaluate_trace(scheme, trace)
        results[name] = {
            "energy (pJ)": metrics.avg_energy_pj,
            "data (pJ)": metrics.avg_data_energy_pj,
            "aux (pJ)": metrics.avg_aux_energy_pj,
            "updated cells": metrics.avg_updated_cells,
            "disturb errors": metrics.avg_disturbance_errors,
            "compressed %": 100 * metrics.compressed_fraction,
        }

    print(format_series_table(results, precision=1, title=f"Write-encoding schemes on '{benchmark}'",
                              row_header="scheme"))

    baseline = results["baseline"]["energy (pJ)"]
    wlcrc = results["wlcrc-16"]["energy (pJ)"]
    print(
        f"\nWLCRC-16 reduces write energy by "
        f"{improvement_percent(baseline, wlcrc):.1f}% versus the baseline "
        f"(the paper reports ~52% on its Simics traces)."
    )


if __name__ == "__main__":
    main()
