#!/usr/bin/env python
"""Full-system path: cache hierarchy -> memory controller -> encoded PCM device.

The paper's traces come from the write-backs of per-core L2 caches feeding a
PCM main memory behind a read-priority controller with write pausing.  This
example wires those substrates together end-to-end:

1. a synthetic per-core access stream drives the 8 private L2 caches;
2. the dirty-line write-backs become the PCM write trace;
3. the trace is replayed into two :class:`~repro.memory.PCMMainMemory`
   instances (baseline vs WLCRC-16), whose devices track the actual stored
   cell states, per-cell wear and controller queue statistics;
4. the stored data is read back and verified against the cache's view.

Run with::

    python examples/memory_system_simulation.py [accesses]
"""

import sys

import numpy as np

from repro.cache import CacheHierarchy, generate_access_stream
from repro.core.config import CPUConfig
from repro.evaluation import format_series_table
from repro.memory import PCMMainMemory
from repro.workloads import get_profile


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    profile = get_profile("gcc")
    cpu = CPUConfig(cores=4, l2_size_kib=256)

    print(f"Driving {cpu.cores} private L2 caches with {accesses} accesses of a "
          f"'{profile.name}'-like stream...")
    hierarchy = CacheHierarchy(cpu)
    stream = generate_access_stream(
        profile, accesses=accesses, cores=cpu.cores, working_set_lines=8_192, seed=7
    )
    trace = hierarchy.run(stream)
    stats = hierarchy.statistics()
    print(f"  write-backs reaching PCM: {len(trace)}")
    print(f"  average L2 hit rate: {np.mean([s.hit_rate for s in stats]):.2%}\n")

    rows = {}
    memories = {}
    for scheme in ("baseline", "wlcrc-16"):
        memory = PCMMainMemory(scheme, rows_per_bank=512)
        memory.replay_trace(trace)
        memories[scheme] = memory
        summary = memory.summary()
        rows[scheme] = {
            "writes": summary["writes"],
            "energy/write (pJ)": summary["avg_write_energy_pj"],
            "updated cells": summary["avg_updated_cells"],
            "disturb errors": summary["avg_disturbance_errors"],
            "compressed %": 100 * summary["compressed_fraction"],
            "max cell wear": summary["max_cell_wear"],
        }

    print(format_series_table(rows, precision=1, title="PCM main memory replay", row_header="scheme"))

    # Verify that the encoded memory still returns the data the caches wrote.
    print("\nVerifying read-back of the 20 hottest lines...")
    addresses, counts = np.unique(trace.addresses, return_counts=True)
    hottest = addresses[np.argsort(counts)][-20:]
    expected = {}
    for index in range(len(trace)):
        expected[int(trace.addresses[index])] = trace.new[index]
    mismatches = 0
    for address in hottest:
        stored = memories["wlcrc-16"].read(int(address))
        if stored != expected[int(address)]:
            mismatches += 1
    print(f"  mismatches: {mismatches} (expected 0)")


if __name__ == "__main__":
    main()
