#!/usr/bin/env python
"""Endurance study: updated cells, lifetime projection and the multi-objective mode.

Figure 9 of the paper uses *updated cells per write request* as its endurance
proxy; Section VIII-D shows that WLCRC can trade a negligible amount of energy
for substantially fewer updated cells by switching its coset-family choice to
a flip-count comparison whenever the two families are within a threshold ``T``
of each other.

This example reproduces that trade-off on synthetic traces and converts the
endurance proxy into a relative lifetime estimate using the
:mod:`repro.pcm.endurance` helpers.

Run with::

    python examples/endurance_lifetime.py [trace_length_per_benchmark]
"""

import sys

from repro import evaluate_trace, make_scheme
from repro.coding.wlcrc import WLCRCEncoder
from repro.core.metrics import WriteMetrics
from repro.evaluation import format_series_table
from repro.pcm import estimate_lifetime, relative_lifetime
from repro.workloads import HMI_BENCHMARKS, LMI_BENCHMARKS, generate_benchmark_trace


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    benchmarks = HMI_BENCHMARKS[:3] + LMI_BENCHMARKS[:2]

    schemes = {
        "baseline": make_scheme("baseline"),
        "fnw": make_scheme("fnw"),
        "wlcrc-16": WLCRCEncoder(16),
        "wlcrc-16 multi-objective (T=1%)": WLCRCEncoder(16, endurance_threshold=0.01),
    }

    print(f"Evaluating {len(schemes)} schemes on {len(benchmarks)} benchmarks "
          f"({trace_length} writes each)...\n")
    totals = {name: WriteMetrics() for name in schemes}
    for benchmark in benchmarks:
        trace = generate_benchmark_trace(benchmark, trace_length, seed=2018)
        for name, scheme in schemes.items():
            totals[name].merge(evaluate_trace(scheme, trace))

    baseline_cells = totals["baseline"].avg_updated_cells
    rows = {}
    for name, metrics in totals.items():
        lifetime = estimate_lifetime(metrics.avg_updated_cells, writes_per_second=1e6)
        rows[name] = {
            "energy (pJ)": metrics.avg_energy_pj,
            "updated cells": metrics.avg_updated_cells,
            "vs baseline": relative_lifetime(baseline_cells, metrics.avg_updated_cells),
            "line writes to failure (M)": lifetime.line_writes_to_failure / 1e6,
        }

    print(format_series_table(rows, precision=2, title="Endurance comparison", row_header="scheme"))

    plain = totals["wlcrc-16"]
    multi = totals["wlcrc-16 multi-objective (T=1%)"]
    delta_cells = 100 * (plain.avg_updated_cells - multi.avg_updated_cells) / plain.avg_updated_cells
    delta_energy = 100 * (multi.avg_energy_pj - plain.avg_energy_pj) / plain.avg_energy_pj
    print(
        f"\nThe multi-objective mode rewrites {delta_cells:.1f}% fewer cells than plain "
        f"WLCRC-16 at the cost of {delta_energy:+.2f}% write energy "
        "(the paper reports 19% fewer cells for +1.6% energy)."
    )


if __name__ == "__main__":
    main()
