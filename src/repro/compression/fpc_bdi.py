"""FPC+BDI: pick the better of FPC and BDI per line.

The DIN baseline [Jiang et al., DSN 2014] compresses memory lines with the
combination of FPC and BDI and only encodes the lines that shrink to at most
369 bits; the paper's Figure 4 reports the coverage of this combination at
about 30 % of memory lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, WORDS_PER_LINE
from .base import CompressedLine, Compressor
from .bdi import BDICompressor
from .fpc import FPCCompressor
from .kernels import PackedBits, hstack_bits, single_line_batch, single_stream

#: Compression budget (bits) that DIN requires to apply its 3-to-4-bit expansion.
DIN_COMPRESSION_BUDGET_BITS = 369


@dataclass(frozen=True)
class FPCBDICompressor(Compressor):
    """Best-of FPC and BDI, with a 1-bit selector tag on the compressed stream."""

    name: str = "fpc+bdi"
    fpc: FPCCompressor = field(default_factory=FPCCompressor)
    bdi: BDICompressor = field(default_factory=BDICompressor)

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Per-line minimum of the FPC and BDI sizes (plus the selector bit)."""
        fpc_sizes = self.fpc.sizes_bits(batch)
        bdi_sizes = self.bdi.sizes_bits(batch)
        best = np.minimum(fpc_sizes, bdi_sizes)
        return np.minimum(best + 1, BITS_PER_LINE).astype(np.int64)

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        """Vectorised best-of: classify both once, compress each sub-batch once."""
        n = len(batch)
        fpc_sizes = self.fpc.sizes_bits(batch)
        bdi_sizes = self.bdi.sizes_bits(batch)
        use_bdi = (bdi_sizes < fpc_sizes) & (bdi_sizes < BITS_PER_LINE)
        inner_bits = np.zeros((n, 0), dtype=np.uint8)
        inner_lengths = np.zeros(n, dtype=np.int64)
        for selector, compressor in ((0, self.fpc), (1, self.bdi)):
            rows = np.nonzero(use_bdi == bool(selector))[0]
            if rows.size == 0:
                continue
            part = compressor.compress_batch(LineBatch(batch.words[rows]), validated=True)
            if part.bits.shape[1] > inner_bits.shape[1]:
                grown = np.zeros((n, part.bits.shape[1]), dtype=np.uint8)
                grown[:, : inner_bits.shape[1]] = inner_bits
                inner_bits = grown
            inner_bits[rows, : part.bits.shape[1]] = part.bits
            inner_lengths[rows] = part.lengths
        tag = PackedBits(
            use_bdi.astype(np.uint8).reshape(n, 1),
            np.ones(n, dtype=np.int64),
            self.name,
        )
        inner = PackedBits(inner_bits, inner_lengths, self.name)
        return hstack_bits([tag, inner], self.name)

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        if np.any(packed.lengths < 1):
            raise CompressionError("empty FPC+BDI stream")
        if len(packed) == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        selector = packed.bits[:, 0]
        words = np.zeros((len(packed), WORDS_PER_LINE), dtype=np.uint64)
        for value, compressor in ((0, self.fpc), (1, self.bdi)):
            rows = np.nonzero(selector == value)[0]
            if rows.size == 0:
                continue
            inner = PackedBits(
                packed.bits[rows, 1:], packed.lengths[rows] - 1, compressor.name
            )
            words[rows] = compressor.decompress_batch(inner)
        return words

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        """Compress a single line with whichever of FPC / BDI is smaller."""
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        """Recover the line; the first stream bit selects the inner compressor."""
        return self.decompress_batch(single_stream(compressed, self.name))[0]
