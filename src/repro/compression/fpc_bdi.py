"""FPC+BDI: pick the better of FPC and BDI per line.

The DIN baseline [Jiang et al., DSN 2014] compresses memory lines with the
combination of FPC and BDI and only encodes the lines that shrink to at most
369 bits; the paper's Figure 4 reports the coverage of this combination at
about 30 % of memory lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, WORDS_PER_LINE
from .base import CompressedLine, Compressor
from .bdi import BDICompressor
from .fpc import FPCCompressor

#: Compression budget (bits) that DIN requires to apply its 3-to-4-bit expansion.
DIN_COMPRESSION_BUDGET_BITS = 369


@dataclass(frozen=True)
class FPCBDICompressor(Compressor):
    """Best-of FPC and BDI, with a 1-bit selector tag on the compressed stream."""

    name: str = "fpc+bdi"
    fpc: FPCCompressor = field(default_factory=FPCCompressor)
    bdi: BDICompressor = field(default_factory=BDICompressor)

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Per-line minimum of the FPC and BDI sizes (plus the selector bit)."""
        fpc_sizes = self.fpc.sizes_bits(batch)
        bdi_sizes = self.bdi.sizes_bits(batch)
        best = np.minimum(fpc_sizes, bdi_sizes)
        return np.minimum(best + 1, BITS_PER_LINE).astype(np.int64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        """Compress a single line with whichever of FPC / BDI is smaller."""
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        batch = LineBatch(words.reshape(1, -1))
        fpc_size = int(self.fpc.sizes_bits(batch)[0])
        bdi_size = int(self.bdi.sizes_bits(batch)[0])
        if bdi_size < fpc_size and bdi_size < BITS_PER_LINE:
            inner = self.bdi.compress_line(words)
            selector = 1
        else:
            inner = self.fpc.compress_line(words)
            selector = 0
        bits = np.concatenate([np.array([selector], dtype=np.uint8), inner.bits])
        return CompressedLine(bits=bits, compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        """Recover the line; the first stream bit selects the inner compressor."""
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < 1:
            raise CompressionError("empty FPC+BDI stream")
        inner = CompressedLine(bits=bits[1:], compressor="inner")
        if int(bits[0]) == 1:
            return self.bdi.decompress_line(inner)
        return self.fpc.decompress_line(inner)
