"""Coverage-Oriented Compression (COC) [Kim et al., SC 2015].

COC maximises the *fraction of compressible lines* rather than the compression
ratio: it runs a large bank of simple variable-length compressors and keeps
whichever one succeeds with the smallest output.  The paper uses COC as the
compression front-end of the ``COC+4cosets`` baseline: a line compressed to at
most 448 bits hosts the auxiliary bits of 16-bit-granularity coset coding, a
line compressed to at most 480 bits hosts 32-bit-granularity auxiliary bits,
and everything else is written raw.

Because every COC member re-packs the line into a dense variable-length
stream, the encoded bits of consecutive writes to the same address rarely line
up -- which is exactly the property (loss of bit locality under differential
write) that makes COC+4cosets weaker than WLC-based schemes in the paper.
The bank implemented here contains eleven members: the all-zero line, the
repeated 8-byte value, the six standard BDI (base, delta) variants, FPC, a
word-level delta compressor and the raw fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, WORDS_PER_LINE
from .base import CompressedLine, Compressor
from .bdi import RepeatedValueCompressor, STANDARD_BDI_VARIANTS, ZeroLineCompressor
from .fpc import FPCCompressor

#: Compression budget for 16-bit-granularity COC+4cosets encoding.
COC_BUDGET_16BIT = 448
#: Compression budget for 32-bit-granularity COC+4cosets encoding.
COC_BUDGET_32BIT = 480


@dataclass(frozen=True)
class RawLineCompressor(Compressor):
    """Fallback member that stores the line verbatim (512 bits)."""

    name: str = "raw"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        return np.full(len(batch), BITS_PER_LINE, dtype=np.int64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        bits = np.zeros(BITS_PER_LINE, dtype=np.uint8)
        for w in range(WORDS_PER_LINE):
            value = int(words[w])
            for b in range(64):
                bits[w * 64 + b] = (value >> b) & 1
        return CompressedLine(bits=bits, compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < BITS_PER_LINE:
            raise CompressionError("raw stream must be at least 512 bits")
        words = np.zeros(WORDS_PER_LINE, dtype=np.uint64)
        for w in range(WORDS_PER_LINE):
            value = 0
            for b in range(64):
                value |= int(bits[w * 64 + b]) << b
            words[w] = value
        return words


@dataclass(frozen=True)
class WordDeltaCompressor(Compressor):
    """Member that stores word 0 verbatim and each later word as a 16-bit delta."""

    name: str = "word-delta16"
    delta_bits: int = 16

    @property
    def compressed_bits(self) -> int:
        """Size when the variant applies: one full word plus seven deltas."""
        return 64 + (WORDS_PER_LINE - 1) * self.delta_bits

    def fits(self, batch: LineBatch) -> np.ndarray:
        """All wrapped word-to-word deltas against word 0 fit in ``delta_bits``."""
        words = batch.words
        deltas = (words[:, 1:] - words[:, :1]).astype(np.int64)
        limit = 1 << (self.delta_bits - 1)
        return np.all((deltas >= -limit) & (deltas < limit), axis=1)

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        return np.where(self.fits(batch), self.compressed_bits, BITS_PER_LINE).astype(np.int64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        batch = LineBatch(words.reshape(1, -1))
        if not bool(self.fits(batch)[0]):
            raise CompressionError("line does not fit word-delta compression")
        bits: List[int] = []
        base = int(words[0])
        for b in range(64):
            bits.append((base >> b) & 1)
        mask = (1 << self.delta_bits) - 1
        for w in range(1, WORDS_PER_LINE):
            delta = (int(words[w]) - base) & mask
            for b in range(self.delta_bits):
                bits.append((delta >> b) & 1)
        return CompressedLine(bits=np.asarray(bits, dtype=np.uint8), compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < self.compressed_bits:
            raise CompressionError("word-delta stream is too short")
        base = 0
        for b in range(64):
            base |= int(bits[b]) << b
        words = np.zeros(WORDS_PER_LINE, dtype=np.uint64)
        words[0] = base
        cursor = 64
        sign = 1 << (self.delta_bits - 1)
        full = 1 << self.delta_bits
        for w in range(1, WORDS_PER_LINE):
            raw = 0
            for b in range(self.delta_bits):
                raw |= int(bits[cursor + b]) << b
            cursor += self.delta_bits
            delta = raw - full if raw & sign else raw
            words[w] = (base + delta) & ((1 << 64) - 1)
        return words


def default_coc_members() -> Tuple[Compressor, ...]:
    """The default COC bank: 11 member compressors including the raw fallback."""
    return (
        ZeroLineCompressor(),
        RepeatedValueCompressor(),
    ) + STANDARD_BDI_VARIANTS + (
        FPCCompressor(),
        WordDeltaCompressor(),
        RawLineCompressor(),
    )


@dataclass(frozen=True)
class COCCompressor(Compressor):
    """Coverage-Oriented Compression: best of a bank of member compressors."""

    name: str = "coc"
    members: Tuple[Compressor, ...] = field(default_factory=default_coc_members)
    #: Bits used to tag which member compressed the line.
    tag_bits: int = 5

    def __post_init__(self) -> None:
        if len(self.members) > (1 << self.tag_bits):
            raise CompressionError("too many COC members for the tag width")

    def member_sizes(self, batch: LineBatch) -> np.ndarray:
        """Matrix of per-member compressed sizes, shape ``(members, lines)``."""
        return np.stack([m.sizes_bits(batch) for m in self.members])

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Per-line best size across the bank, including the member tag."""
        best = self.member_sizes(batch).min(axis=0)
        return np.minimum(best + self.tag_bits, BITS_PER_LINE).astype(np.int64)

    def best_member(self, words: np.ndarray) -> Tuple[int, Compressor]:
        """Index and instance of the member with the smallest output for one line.

        When no member beats the uncompressed size, the raw fallback is chosen
        (several members report 512 bits to mean "does not apply" and cannot
        actually encode the line).
        """
        batch = LineBatch(np.asarray(words, dtype=np.uint64).reshape(1, -1))
        sizes = [int(m.sizes_bits(batch)[0]) for m in self.members]
        index = int(np.argmin(sizes))
        if sizes[index] >= BITS_PER_LINE:
            for fallback_index, member in enumerate(self.members):
                if isinstance(member, RawLineCompressor):
                    return fallback_index, member
        return index, self.members[index]

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        index, member = self.best_member(words)
        inner = member.compress_line(np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE))
        tag = np.array([(index >> b) & 1 for b in range(self.tag_bits)], dtype=np.uint8)
        return CompressedLine(bits=np.concatenate([tag, inner.bits]), compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < self.tag_bits:
            raise CompressionError("truncated COC stream")
        index = 0
        for b in range(self.tag_bits):
            index |= int(bits[b]) << b
        if index >= len(self.members):
            raise CompressionError(f"unknown COC member tag {index}")
        inner = CompressedLine(bits=bits[self.tag_bits:], compressor=self.members[index].name)
        return self.members[index].decompress_line(inner)
