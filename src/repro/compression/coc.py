"""Coverage-Oriented Compression (COC) [Kim et al., SC 2015].

COC maximises the *fraction of compressible lines* rather than the compression
ratio: it runs a large bank of simple variable-length compressors and keeps
whichever one succeeds with the smallest output.  The paper uses COC as the
compression front-end of the ``COC+4cosets`` baseline: a line compressed to at
most 448 bits hosts the auxiliary bits of 16-bit-granularity coset coding, a
line compressed to at most 480 bits hosts 32-bit-granularity auxiliary bits,
and everything else is written raw.

Because every COC member re-packs the line into a dense variable-length
stream, the encoded bits of consecutive writes to the same address rarely line
up -- which is exactly the property (loss of bit locality under differential
write) that makes COC+4cosets weaker than WLC-based schemes in the paper.
The bank implemented here contains eleven members: the all-zero line, the
repeated 8-byte value, the six standard BDI (base, delta) variants, FPC, a
word-level delta compressor and the raw fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, WORDS_PER_LINE
from .backend import get_backend
from .base import CompressedLine, Compressor
from .bdi import RepeatedValueCompressor, STANDARD_BDI_VARIANTS, ZeroLineCompressor
from .fpc import FPCCompressor
from .kernels import (
    PackedBits,
    hstack_bits,
    pack_fields,
    single_line_batch,
    single_stream,
    unpack_fields,
)

#: Compression budget for 16-bit-granularity COC+4cosets encoding.
COC_BUDGET_16BIT = 448
#: Compression budget for 32-bit-granularity COC+4cosets encoding.
COC_BUDGET_32BIT = 480


@dataclass(frozen=True)
class RawLineCompressor(Compressor):
    """Fallback member that stores the line verbatim (512 bits)."""

    name: str = "raw"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        return np.full(len(batch), BITS_PER_LINE, dtype=np.int64)

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        b = get_backend()
        bits = unpack_fields(b.to_device(batch.words), 64, backend=b)
        return PackedBits(
            bits=b.to_host(bits.reshape(len(batch), BITS_PER_LINE)),
            lengths=np.full(len(batch), BITS_PER_LINE, dtype=np.int64),
            compressor=self.name,
        )

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        if np.any(packed.lengths < BITS_PER_LINE):
            raise CompressionError("raw stream must be at least 512 bits")
        if len(packed) == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        b = get_backend()
        grouped = b.to_device(packed.bits[:, :BITS_PER_LINE]).reshape(
            len(packed), WORDS_PER_LINE, 64
        )
        return b.to_host(pack_fields(grouped, backend=b))

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]


@dataclass(frozen=True)
class WordDeltaCompressor(Compressor):
    """Member that stores word 0 verbatim and each later word as a 16-bit delta."""

    name: str = "word-delta16"
    delta_bits: int = 16

    @property
    def compressed_bits(self) -> int:
        """Size when the variant applies: one full word plus seven deltas."""
        return 64 + (WORDS_PER_LINE - 1) * self.delta_bits

    def _fits_device(self, words, xp) -> np.ndarray:
        deltas = (words[:, 1:] - words[:, :1]).astype(np.int64)
        limit = 1 << (self.delta_bits - 1)
        return xp.all((deltas >= -limit) & (deltas < limit), axis=1)

    def fits(self, batch: LineBatch) -> np.ndarray:
        """All wrapped word-to-word deltas against word 0 fit in ``delta_bits``."""
        b = get_backend()
        return b.to_host(self._fits_device(b.to_device(batch.words), b.xp))

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        b = get_backend()
        xp = b.xp
        fits = self._fits_device(b.to_device(batch.words), xp)
        return b.to_host(
            xp.where(fits, self.compressed_bits, BITS_PER_LINE).astype(np.int64)
        )

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        b = get_backend()
        xp = b.xp
        words = b.to_device(batch.words)
        if not validated and not bool(self._fits_device(words, xp).all()):
            raise CompressionError("line does not fit word-delta compression")
        mask = np.uint64((1 << self.delta_bits) - 1)
        deltas = (words[:, 1:] - words[:, :1]) & mask
        bits = xp.concatenate(
            [
                unpack_fields(words[:, 0], 64, backend=b),
                unpack_fields(deltas, self.delta_bits, backend=b).reshape(len(batch), -1),
            ],
            axis=1,
        )
        return PackedBits(
            bits=b.to_host(bits),
            lengths=np.full(len(batch), self.compressed_bits, dtype=np.int64),
            compressor=self.name,
        )

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        if np.any(packed.lengths < self.compressed_bits):
            raise CompressionError("word-delta stream is too short")
        n = len(packed)
        if n == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        b = get_backend()
        xp = b.xp
        bits = b.to_device(packed.bits)
        base = pack_fields(bits[:, :64], backend=b)
        raw = pack_fields(
            bits[:, 64 : 64 + (WORDS_PER_LINE - 1) * self.delta_bits].reshape(
                n, WORDS_PER_LINE - 1, self.delta_bits
            ),
            backend=b,
        )
        sign = np.uint64(1 << (self.delta_bits - 1))
        full = np.uint64(1 << self.delta_bits)
        delta = xp.where((raw & sign).astype(bool), raw - full, raw)
        words = xp.zeros((n, WORDS_PER_LINE), dtype=np.uint64)
        words[:, 0] = base
        words[:, 1:] = base[:, None] + delta
        return b.to_host(words)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]


def default_coc_members() -> Tuple[Compressor, ...]:
    """The default COC bank: 11 member compressors including the raw fallback."""
    return (
        ZeroLineCompressor(),
        RepeatedValueCompressor(),
    ) + STANDARD_BDI_VARIANTS + (
        FPCCompressor(),
        WordDeltaCompressor(),
        RawLineCompressor(),
    )


@dataclass(frozen=True)
class COCCompressor(Compressor):
    """Coverage-Oriented Compression: best of a bank of member compressors."""

    name: str = "coc"
    members: Tuple[Compressor, ...] = field(default_factory=default_coc_members)
    #: Bits used to tag which member compressed the line.
    tag_bits: int = 5

    def __post_init__(self) -> None:
        if len(self.members) > (1 << self.tag_bits):
            raise CompressionError("too many COC members for the tag width")

    def member_sizes(self, batch: LineBatch) -> np.ndarray:
        """Matrix of per-member compressed sizes, shape ``(members, lines)``."""
        return np.stack([m.sizes_bits(batch) for m in self.members])

    def sizes_from_members(self, member_sizes: np.ndarray) -> np.ndarray:
        """Per-line best size (incl. tag) from a precomputed bank-size matrix."""
        best = np.asarray(member_sizes).min(axis=0)
        return np.minimum(best + self.tag_bits, BITS_PER_LINE).astype(np.int64)

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Per-line best size across the bank, including the member tag."""
        return self.sizes_from_members(self.member_sizes(batch))

    def best_member(self, words: np.ndarray) -> Tuple[int, Compressor]:
        """Index and instance of the member with the smallest output for one line.

        When no member beats the uncompressed size, the raw fallback is chosen
        (several members report 512 bits to mean "does not apply" and cannot
        actually encode the line).  Batch callers use
        :meth:`compress_batch(member_sizes=...) <compress_batch>` instead,
        which evaluates the bank once for the whole batch.
        """
        sizes = self.member_sizes(single_line_batch(words))[:, 0]
        index = int(np.argmin(sizes))
        if sizes[index] >= BITS_PER_LINE:
            for fallback_index, member in enumerate(self.members):
                if isinstance(member, RawLineCompressor):
                    return fallback_index, member
        return index, self.members[index]

    def _member_choice(self, member_sizes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`best_member`: per-line member index from the bank sizes."""
        choice = member_sizes.argmin(axis=0)
        no_winner = member_sizes.min(axis=0) >= BITS_PER_LINE
        if np.any(no_winner):
            raw_indexes = [
                index
                for index, member in enumerate(self.members)
                if isinstance(member, RawLineCompressor)
            ]
            if not raw_indexes:
                raise CompressionError(
                    "no COC member can encode the line (bank has no raw fallback)"
                )
            choice = np.where(no_winner, raw_indexes[0], choice)
        return choice.astype(np.int64)

    def compress_batch(
        self,
        batch: LineBatch,
        validated: bool = False,
        member_sizes: Optional[np.ndarray] = None,
    ) -> PackedBits:
        """Vectorised COC: evaluate the bank once, dispatch lines per member.

        ``member_sizes`` accepts a precomputed ``(members, lines)`` matrix
        (e.g. from the caller's compressibility classification) so the bank
        is sized exactly once per batch rather than once per member per line.
        """
        sizes = member_sizes if member_sizes is not None else self.member_sizes(batch)
        choice = self._member_choice(sizes)
        n = len(batch)
        inner_bits = np.zeros((n, 0), dtype=np.uint8)
        inner_lengths = np.zeros(n, dtype=np.int64)
        for index, member in enumerate(self.members):
            rows = np.nonzero(choice == index)[0]
            if rows.size == 0:
                continue
            part = member.compress_batch(LineBatch(batch.words[rows]), validated=True)
            if part.bits.shape[1] > inner_bits.shape[1]:
                grown = np.zeros((n, part.bits.shape[1]), dtype=np.uint8)
                grown[:, : inner_bits.shape[1]] = inner_bits
                inner_bits = grown
            inner_bits[rows, : part.bits.shape[1]] = part.bits
            inner_lengths[rows] = part.lengths
        inner = PackedBits(inner_bits, inner_lengths, self.name)
        tag = PackedBits(
            unpack_fields(choice.astype(np.uint64), self.tag_bits),
            np.full(n, self.tag_bits, dtype=np.int64),
            self.name,
        )
        return hstack_bits([tag, inner], self.name)

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        if np.any(packed.lengths < self.tag_bits):
            raise CompressionError("truncated COC stream")
        if len(packed) == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        tags = pack_fields(packed.bits[:, : self.tag_bits]).astype(np.int64)
        bad = tags[tags >= len(self.members)]
        if bad.size:
            raise CompressionError(f"unknown COC member tag {int(bad[0])}")
        words = np.zeros((len(packed), WORDS_PER_LINE), dtype=np.uint64)
        for index, member in enumerate(self.members):
            rows = np.nonzero(tags == index)[0]
            if rows.size == 0:
                continue
            inner = PackedBits(
                packed.bits[rows, self.tag_bits :],
                packed.lengths[rows] - self.tag_bits,
                member.name,
            )
            words[rows] = member.decompress_batch(inner)
        return words

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]
