"""Array-backend abstraction for the compression kernel layer.

PR 5 vectorised every compressor into batch kernels, but left them hard-wired
to ``numpy``.  This module decouples the kernels from the array library: an
:class:`ArrayBackend` bundles an array namespace (``xp``), the device/host
transfer pair, and an optional table of compiled kernel overrides.  The
kernel layer (:mod:`repro.compression.kernels`) and every compressor's batch
path fetch the active backend via :func:`get_backend` and perform all array
math through ``backend.xp``; host-side :class:`PackedBits` containers remain
the only numpy boundary, so device arrays never leak out of the kernel layer.

Three backends are registered out of the box:

``numpy``
    The reference implementation.  ``xp`` is :mod:`numpy` and both transfers
    are the identity, so this path is byte-for-byte the pre-refactor code.
``numba``
    Same arrays as numpy (host memory, ``xp`` is numpy) but the hot scalar
    loops -- field packing/unpacking, ragged segment compaction and the
    GF(2) XOR-reduction -- are replaced by lazily ``@njit``-compiled kernels
    that release the GIL.  Import-guarded: registering costs nothing, the
    first :func:`get_backend` call raises :class:`BackendUnavailableError`
    when numba is not installed (``pip install 'wlcrc-repro[numba]'``).
``cupy``
    GPU execution via :mod:`cupy`; ``to_device``/``to_host`` are
    ``cupy.asarray``/``cupy.asnumpy``.  Import-guarded like numba
    (``pip install 'wlcrc-repro[cupy]'``).

Selection precedence (most specific wins):

1. an explicit ``name`` argument to :func:`get_backend`;
2. the active backend set by :func:`set_array_backend` or the
   :func:`use_array_backend` context manager (the CLI and the evaluation
   engine route ``--array-backend`` / ``ExperimentConfig.array_backend``
   through this);
3. the ``REPRO_ARRAY_BACKEND`` environment variable;
4. the ``numpy`` reference backend.

Every backend must be *bit-identical* to the numpy reference -- the property
suite in ``tests/compression/test_backends.py`` enforces this for each
compressor's batch path, so a backend switch can never change results, only
throughput.
"""

from __future__ import annotations

import difflib
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..obs import timer as _obs_timer

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "backend_names",
    "get_backend",
    "kernel_timer",
    "register_backend",
    "set_array_backend",
    "use_array_backend",
]

#: Environment variable consulted when no backend is selected explicitly.
ENV_VAR = "REPRO_ARRAY_BACKEND"


class BackendUnavailableError(ConfigurationError):
    """A registered backend cannot be constructed (missing optional dependency)."""


@dataclass(frozen=True)
class ArrayBackend:
    """One array-execution substrate for the batch compression kernels.

    Attributes
    ----------
    name:
        Registry key (``numpy``, ``numba``, ``cupy``, ...).
    xp:
        The array namespace; must be numpy-API compatible for every
        operation the kernels use (broadcasting shifts, fancy indexing,
        ``repeat``/``cumsum``/``argmin``/``where``/``matmul``).
    to_device:
        Move a host (numpy) array onto the backend's device.  Identity for
        host backends.
    to_host:
        Move a device array back to host numpy.  Identity for host backends.
    compiled:
        Optional kernel overrides, keyed by kernel name (``pack_fields``,
        ``unpack_fields``, ``compact_fill``, ``xor_reduce``, and the fused
        metric kernels ``energy_cells``, ``diff_energy_cells``,
        ``flip_blocks``, ``disturb_cells``).  The kernel layer checks this
        table before falling back to the ``xp`` expression, which is how the
        numba backend swaps in its ``@njit`` loops without the call sites
        knowing.
    """

    name: str
    xp: Any
    to_device: Callable[[Any], Any] = np.asarray
    to_host: Callable[[Any], np.ndarray] = np.asarray
    compiled: Mapping[str, Callable[..., Any]] = field(default_factory=dict)

    def asarray(self, array: Any, dtype: Any = None) -> Any:
        """Device-side ``asarray`` convenience (keeps call sites terse)."""
        moved = self.to_device(array)
        return moved if dtype is None else self.xp.asarray(moved, dtype=dtype)


def kernel_timer(backend_name: str, kernel: str):
    """Duration histogram for one kernel dispatch (``kernel_ms{backend,kernel}``).

    Kernel calls are far too frequent for one span each -- a single sweep
    dispatches millions -- so they aggregate into a histogram instead, which
    the profile summary reports per ``(backend, kernel)`` pair.  No-op (a
    shared null context) while no observation is active.
    """
    return _obs_timer("kernel_ms", backend=backend_name, kernel=kernel)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_LOCK = threading.Lock()
# The *active* selection is thread-local so the thread-pool evaluation
# backend can never observe a half-switched global.
_ACTIVE = threading.local()


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory runs lazily on first use and may raise
    :class:`BackendUnavailableError` -- registration itself never imports
    optional dependencies, which keeps ``import repro`` dependency-light.
    """
    with _LOCK:
        _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def backend_names() -> Tuple[str, ...]:
    """Names of every *registered* backend (available or not)."""
    return tuple(sorted(_FACTORIES))


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends that can actually be constructed."""
    names = []
    for name in backend_names():
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Apply the selection precedence and validate the resulting name."""
    if name is None:
        name = getattr(_ACTIVE, "name", None)
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is None:
        name = "numpy"
    if name not in _FACTORIES:
        known = backend_names()
        hints = difflib.get_close_matches(name, known, n=1)
        suggestion = f" -- did you mean '{hints[0]}'?" if hints else ""
        raise ConfigurationError(
            f"unknown array backend '{name}'{suggestion} (registered: {', '.join(known)})"
        )
    return name


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """The backend selected by ``name`` / active / ``REPRO_ARRAY_BACKEND`` / numpy.

    Raises
    ------
    ConfigurationError
        For a name that is not registered (with a did-you-mean hint).
    BackendUnavailableError
        For a registered backend whose optional dependency is missing.
    """
    name = resolve_backend_name(name)
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _FACTORIES[name]()
            _INSTANCES[name] = instance
    return instance


def set_array_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the active backend for this thread.

    The name is resolved eagerly so a typo fails at configuration time, not
    deep inside the first ``compress_batch``.
    """
    if name is not None:
        get_backend(name)  # validate + construct now
    _ACTIVE.name = name


@contextmanager
def use_array_backend(name: Optional[str]) -> Iterator[ArrayBackend]:
    """Scoped backend selection: restores the previous active backend on exit."""
    previous = getattr(_ACTIVE, "name", None)
    set_array_backend(name)
    try:
        yield get_backend()
    finally:
        _ACTIVE.name = previous


# --------------------------------------------------------------------------- #
# numpy -- the reference backend
# --------------------------------------------------------------------------- #
def _numpy_backend() -> ArrayBackend:
    return ArrayBackend(name="numpy", xp=np)


# --------------------------------------------------------------------------- #
# Fused metric kernel bodies (plain Python, shared with the numba backend)
# --------------------------------------------------------------------------- #
# The fused encode+metrics path (see ``repro.coding.base`` and
# ``repro.evaluation.runner``) routes its per-cell cost/metric computations
# through these kernels.  They are deliberately *elementwise only*: every
# float they produce equals the corresponding numpy expression bit for bit
# (a gather from an exact table, optionally multiplied by 1.0/0.0), and the
# order-sensitive float reductions stay in shared numpy ``.sum`` calls -- numpy
# 2.x uses a SIMD pairwise summation whose accumulation tree cannot be
# replicated portably in a scalar loop, so the loops below never sum floats.
# ``flip_blocks`` reduces booleans to int64 counts, which are exact in any
# order.  Defined at module level (and ``@njit``-wrapped lazily inside
# ``_compile_numba_kernels``) so the loop logic is testable without numba.
def _energy_cells_impl(states, changed, weights):
    # 1-D: per-cell write energy, ``weights[state]`` where changed else 0.0.
    out = np.empty(states.shape[0], dtype=np.float64)
    for i in range(states.shape[0]):
        out[i] = weights[states[i]] if changed[i] else 0.0
    return out


def _diff_energy_cells_impl(candidate, stored, weights, active):
    # 2-D: fused differential-write energy of one candidate -- computes the
    # changed mask inline (no boolean temporary) and zeroes cells at or past
    # ``active`` (the WLC auxiliary region).
    n, cells = candidate.shape
    out = np.empty((n, cells), dtype=np.float64)
    for row in range(n):
        for cell in range(cells):
            if cell < active and candidate[row, cell] != stored[row, cell]:
                out[row, cell] = weights[candidate[row, cell]]
            else:
                out[row, cell] = 0.0
    return out


def _flip_blocks_impl(candidate, stored, block_cells, active):
    # 2-D: rewritten-cell count per block of one candidate (exact integer
    # reduction, so the full sum may live in the loop).
    n, cells = candidate.shape
    blocks = cells // block_cells
    out = np.zeros((n, blocks), dtype=np.int64)
    for row in range(n):
        for cell in range(cells):
            if cell < active and candidate[row, cell] != stored[row, cell]:
                out[row, cell // block_cells] += 1
    return out


def _disturb_cells_impl(stored, changed, rates):
    # 2-D: per-cell expected disturbance errors -- fuses the neighbour test,
    # the vulnerability mask and the rate gather into one pass per line.
    n, cells = stored.shape
    out = np.empty((n, cells), dtype=np.float64)
    for row in range(n):
        for cell in range(cells):
            vulnerable = not changed[row, cell] and (
                (cell > 0 and changed[row, cell - 1])
                or (cell + 1 < cells and changed[row, cell + 1])
            )
            out[row, cell] = rates[stored[row, cell]] if vulnerable else 0.0
    return out


# --------------------------------------------------------------------------- #
# numba -- compiled host kernels (optional)
# --------------------------------------------------------------------------- #
def _numba_backend() -> ArrayBackend:
    try:
        import numba
    except ImportError as exc:  # pragma: no cover - exercised only without numba
        raise BackendUnavailableError(
            "array backend 'numba' needs the numba package "
            "(pip install 'wlcrc-repro[numba]')"
        ) from exc
    return ArrayBackend(name="numba", xp=np, compiled=_compile_numba_kernels(numba))


def _compile_numba_kernels(numba) -> Dict[str, Callable[..., Any]]:
    """Build the ``@njit`` kernel table for the numba backend.

    Compilation is deferred to the first call of each kernel (``cache=True``
    persists the machine code across processes), so constructing the backend
    stays cheap.  The loops mirror the numpy expressions in
    :mod:`repro.compression.kernels` exactly -- same dtypes, same bit order --
    which is what keeps the backend bit-identical.
    """
    njit = numba.njit

    @njit(cache=True, nogil=True)
    def pack_fields(bits):  # (..., width) uint64 -> (...,) uint64
        flat = bits.reshape(-1, bits.shape[-1])
        out = np.zeros(flat.shape[0], dtype=np.uint64)
        for row in range(flat.shape[0]):
            acc = np.uint64(0)
            for bit in range(flat.shape[1]):
                acc |= flat[row, bit] << np.uint64(bit)
            out[row] = acc
        return out.reshape(bits.shape[:-1])

    @njit(cache=True, nogil=True)
    def unpack_fields(values, width):  # (...,) uint64 -> (..., width) uint8
        flat = values.reshape(-1)
        out = np.empty((flat.shape[0], width), dtype=np.uint8)
        for row in range(flat.shape[0]):
            value = flat[row]
            for bit in range(width):
                out[row, bit] = np.uint8((value >> np.uint64(bit)) & np.uint64(1))
        return out.reshape(values.shape + (width,))

    @njit(cache=True, nogil=True)
    def compact_fill(seg_bits, seg_widths, out):
        # Row-major scatter of the valid segment bits into the dense streams.
        n, segments, _ = seg_bits.shape
        for row in range(n):
            cursor = 0
            for seg in range(segments):
                for bit in range(seg_widths[row, seg]):
                    out[row, cursor] = seg_bits[row, seg, bit]
                    cursor += 1
        return out

    @njit(cache=True, nogil=True)
    def xor_reduce(bits, matrix):  # (n, k) x (k, r) -> (n, r), GF(2)
        n, k = bits.shape
        r = matrix.shape[1]
        out = np.zeros((n, r), dtype=np.uint8)
        for row in range(n):
            for col in range(k):
                if bits[row, col]:
                    for parity in range(r):
                        out[row, parity] ^= matrix[col, parity]
        return out

    # The fused metric kernels share their loop bodies with the plain-Python
    # implementations above (kept un-jitted so the logic is testable without
    # numba); jitting them here only changes throughput, never a bit.
    energy_cells = njit(cache=True, nogil=True)(_energy_cells_impl)
    diff_energy_cells = njit(cache=True, nogil=True)(_diff_energy_cells_impl)
    flip_blocks = njit(cache=True, nogil=True)(_flip_blocks_impl)
    disturb_cells = njit(cache=True, nogil=True)(_disturb_cells_impl)

    return {
        "pack_fields": pack_fields,
        "unpack_fields": unpack_fields,
        "compact_fill": compact_fill,
        "xor_reduce": xor_reduce,
        "energy_cells": energy_cells,
        "diff_energy_cells": diff_energy_cells,
        "flip_blocks": flip_blocks,
        "disturb_cells": disturb_cells,
    }


# --------------------------------------------------------------------------- #
# cupy -- GPU execution (optional)
# --------------------------------------------------------------------------- #
def _cupy_backend() -> ArrayBackend:
    try:
        import cupy
    except ImportError as exc:  # pragma: no cover - exercised only without cupy
        raise BackendUnavailableError(
            "array backend 'cupy' needs the cupy package "
            "(pip install 'wlcrc-repro[cupy]')"
        ) from exc
    try:
        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # pragma: no cover - cupy without a visible GPU
        raise BackendUnavailableError(
            "array backend 'cupy' found no usable CUDA device"
        ) from exc
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        to_device=cupy.asarray,
        to_host=cupy.asnumpy,
    )


register_backend("numpy", _numpy_backend)
register_backend("numba", _numba_backend)
register_backend("cupy", _cupy_backend)
