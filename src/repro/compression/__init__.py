"""Memory-line compression substrates: WLC, FPC, BDI, FPC+BDI and COC."""

from .base import CompressedLine, Compressor, pack_bits_lsb_first, unpack_bits_lsb_first
from .kernels import (
    PackedBits,
    compact_segments,
    hstack_bits,
    pack_fields,
    unpack_fields,
    xor_reduce,
)
from .bdi import (
    BDICompressor,
    BDIVariant,
    RepeatedValueCompressor,
    STANDARD_BDI_VARIANTS,
    ZeroLineCompressor,
    elements_to_line,
    line_elements,
)
from .coc import (
    COC_BUDGET_16BIT,
    COC_BUDGET_32BIT,
    COCCompressor,
    RawLineCompressor,
    WordDeltaCompressor,
    default_coc_members,
)
from .fpc import FPCCompressor, classify_words32, line_to_words32, words32_to_line
from .fpc_bdi import DIN_COMPRESSION_BUDGET_BITS, FPCBDICompressor
from .wlc import WLCCompressor, msb_run_compressible

__all__ = [
    "BDICompressor",
    "BDIVariant",
    "COC_BUDGET_16BIT",
    "COC_BUDGET_32BIT",
    "COCCompressor",
    "CompressedLine",
    "Compressor",
    "DIN_COMPRESSION_BUDGET_BITS",
    "FPCBDICompressor",
    "FPCCompressor",
    "PackedBits",
    "RawLineCompressor",
    "RepeatedValueCompressor",
    "STANDARD_BDI_VARIANTS",
    "WLCCompressor",
    "WordDeltaCompressor",
    "ZeroLineCompressor",
    "classify_words32",
    "compact_segments",
    "default_coc_members",
    "elements_to_line",
    "hstack_bits",
    "line_elements",
    "line_to_words32",
    "msb_run_compressible",
    "pack_bits_lsb_first",
    "pack_fields",
    "unpack_bits_lsb_first",
    "unpack_fields",
    "words32_to_line",
    "xor_reduce",
]
