"""Compressor interface shared by all line-compression substrates.

A compressor operates on 512-bit memory lines.  Two views are exposed:

* a **vectorised size query** (:meth:`Compressor.sizes_bits`) that returns the
  compressed size of every line of a batch in bits -- this is what the
  encoding schemes use to decide whether a line can host auxiliary bits; and
* a **bit-exact single-line path** (:meth:`Compressor.compress_line` /
  :meth:`Compressor.decompress_line`) that produces the actual compressed bit
  stream.  Schemes whose memory layout depends on the compressed stream (DIN,
  COC+4cosets) use this path, which is what lets the evaluation capture the
  loss of bit locality those schemes suffer under differential write.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE
from .kernels import PackedBits


@dataclass(frozen=True)
class CompressedLine:
    """Bit-exact compressed representation of a single memory line.

    Attributes
    ----------
    bits:
        ``uint8`` array of the compressed bit stream (values 0/1), LSB first.
    compressor:
        Name of the compressor that produced the stream (needed by banks of
        compressors such as COC to decompress).
    """

    bits: np.ndarray
    compressor: str

    @property
    def size_bits(self) -> int:
        """Length of the compressed stream in bits."""
        return int(self.bits.shape[-1])


class Compressor(ABC):
    """Base class of all memory-line compressors."""

    #: Short identifier used in reports and compressed-line tags.
    name: str = "compressor"

    @abstractmethod
    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Compressed size in bits of every line of ``batch`` (vectorised)."""

    @abstractmethod
    def compress_line(self, words: np.ndarray) -> CompressedLine:
        """Compress a single line given as an ``(8,)`` ``uint64`` array."""

    @abstractmethod
    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        """Recover the original ``(8,)`` ``uint64`` line from a compressed stream."""

    # ------------------------------------------------------------------ #
    # Batch kernels
    # ------------------------------------------------------------------ #
    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        """Compress every line of ``batch`` into one :class:`PackedBits`.

        Stream ``i`` is bit-identical to ``compress_line(batch.words[i])``.
        ``validated=True`` promises the caller already classified the batch
        (every line fits this compressor), letting kernels with a ``fits``
        test skip re-running it -- the pre-validated entry point the encoders
        use after their own ``sizes_bits`` pass.

        Every built-in compressor overrides this with a vectorised kernel;
        the base implementation is the scalar loop, kept as the contract
        reference and as the fallback for third-party subclasses.
        """
        return PackedBits.from_streams(
            [self.compress_line(words).bits for words in batch.words], self.name
        )

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        """Recover the ``(n, 8)`` ``uint64`` lines of a packed batch."""
        return np.stack(
            [self.decompress_line(stream) for stream in packed.lines()]
        ) if len(packed) else np.zeros((0, 8), dtype=np.uint64)

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #
    def compressible(self, batch: LineBatch, budget_bits: int) -> np.ndarray:
        """Boolean mask of lines whose compressed size fits within ``budget_bits``."""
        if budget_bits <= 0 or budget_bits > BITS_PER_LINE:
            raise CompressionError(f"budget_bits must be in (0, {BITS_PER_LINE}]")
        return self.sizes_bits(batch) <= budget_bits

    def coverage(self, batch: LineBatch, budget_bits: int) -> float:
        """Fraction of lines of ``batch`` compressible within ``budget_bits``."""
        if len(batch) == 0:
            return 0.0
        return float(self.compressible(batch, budget_bits).mean())

    def roundtrip(self, words: np.ndarray) -> np.ndarray:
        """Compress then decompress a single line (used by tests)."""
        return self.decompress_line(self.compress_line(words))


def pack_bits_lsb_first(values: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Pack integer fields into a bit stream, least significant bit first.

    Parameters
    ----------
    values:
        1-D array of non-negative integers (one per field).
    widths:
        1-D array of field widths in bits, aligned with ``values``.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of bits of total length ``widths.sum()``.
    """
    values = np.asarray(values, dtype=np.uint64)
    widths = np.asarray(widths, dtype=np.int64)
    if values.shape != widths.shape:
        raise CompressionError("values and widths must be aligned")
    total = int(widths.sum())
    bits = np.zeros(total, dtype=np.uint8)
    cursor = 0
    for value, width in zip(values, widths):
        for b in range(int(width)):
            bits[cursor + b] = (int(value) >> b) & 1
        cursor += int(width)
    return bits


def unpack_bits_lsb_first(bits: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits_lsb_first`; returns one integer per field."""
    bits = np.asarray(bits, dtype=np.uint8)
    widths = np.asarray(widths, dtype=np.int64)
    if int(widths.sum()) > bits.shape[0]:
        raise CompressionError("bit stream too short for requested fields")
    values = np.zeros(widths.shape[0], dtype=np.uint64)
    cursor = 0
    for i, width in enumerate(widths):
        value = 0
        for b in range(int(width)):
            value |= int(bits[cursor + b]) << b
        values[i] = value
        cursor += int(width)
    return values
