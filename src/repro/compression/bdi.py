"""Base-Delta-Immediate (BDI) compression [Pekhimenko et al., PACT 2012].

BDI exploits the low dynamic range of values within a memory line: the line is
viewed as an array of fixed-size elements (8-, 4- or 2-byte) and stored as one
*base* element plus narrow *deltas*.  Several (base size, delta size) variants
are tried and the smallest representation wins.  Two degenerate variants --
the all-zero line and the line made of one repeated 8-byte value -- are also
part of the family.

This module exposes each variant as an individual :class:`Compressor` (the
Coverage-Oriented Compression bank of the paper treats every variant as its
own compressor) plus :class:`BDICompressor`, the conventional "best variant
wins" front-end used in the FPC+BDI comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, BYTES_PER_LINE, WORDS_PER_LINE
from .backend import get_backend
from .base import CompressedLine, Compressor
from .kernels import (
    PackedBits,
    hstack_bits,
    pack_fields,
    single_line_batch,
    single_stream,
    unpack_fields,
)


def line_elements(words: np.ndarray, element_bytes: int, xp=np) -> np.ndarray:
    """View line words as an array of unsigned elements of ``element_bytes`` bytes."""
    words = xp.asarray(words, dtype=np.uint64)
    if element_bytes == 8:
        return words
    if element_bytes == 4:
        low = (words & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        high = (words >> np.uint64(32)).astype(np.uint32)
        return xp.stack([low, high], axis=-1).reshape(
            words.shape[:-1] + (words.shape[-1] * 2,)
        )
    if element_bytes == 2:
        parts = [
            ((words >> np.uint64(16 * i)) & np.uint64(0xFFFF)).astype(np.uint16) for i in range(4)
        ]
        return xp.stack(parts, axis=-1).reshape(
            words.shape[:-1] + (words.shape[-1] * 4,)
        )
    raise CompressionError(f"unsupported element size: {element_bytes} bytes")


def elements_to_line(elements: np.ndarray, element_bytes: int, xp=np) -> np.ndarray:
    """Rebuild 64-bit line words from an array of unsigned elements."""
    elements = xp.asarray(elements, dtype=np.uint64)
    per_word = 8 // element_bytes
    grouped = elements.reshape(elements.shape[:-1] + (WORDS_PER_LINE, per_word))
    shifts = (xp.arange(per_word, dtype=np.uint64) * np.uint64(8 * element_bytes))
    return (grouped << shifts).sum(axis=-1, dtype=np.uint64)


def _signed_dtype(element_bytes: int) -> np.dtype:
    return {8: np.int64, 4: np.int32, 2: np.int16}[element_bytes]


@dataclass(frozen=True)
class ZeroLineCompressor(Compressor):
    """Degenerate BDI variant: the all-zero line compresses to zero bits."""

    name: str = "zero-line"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        b = get_backend()
        xp = b.xp
        zero = xp.all(b.to_device(batch.words) == 0, axis=1)
        return b.to_host(xp.where(zero, 0, BITS_PER_LINE).astype(np.int64))

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        if not validated and bool(np.any(batch.words != 0)):
            raise CompressionError("line is not all zero")
        return PackedBits(
            bits=np.zeros((len(batch), 0), dtype=np.uint8),
            lengths=np.zeros(len(batch), dtype=np.int64),
            compressor=self.name,
        )

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        return np.zeros((len(packed), WORDS_PER_LINE), dtype=np.uint64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]


@dataclass(frozen=True)
class RepeatedValueCompressor(Compressor):
    """Degenerate BDI variant: the line is a single repeated 8-byte value."""

    name: str = "repeated-8byte"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        b = get_backend()
        xp = b.xp
        words = b.to_device(batch.words)
        repeated = xp.all(words == words[:, :1], axis=1)
        return b.to_host(xp.where(repeated, 64, BITS_PER_LINE).astype(np.int64))

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        b = get_backend()
        words = b.to_device(batch.words)
        if not validated and bool(b.xp.any(words != words[:, :1])):
            raise CompressionError("line is not a repeated 8-byte value")
        return PackedBits(
            bits=b.to_host(unpack_fields(words[:, 0], 64, backend=b)),
            lengths=np.full(len(batch), 64, dtype=np.int64),
            compressor=self.name,
        )

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        if np.any(packed.lengths < 64):
            raise CompressionError("repeated-value stream must be at least 64 bits")
        if len(packed) == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        b = get_backend()
        xp = b.xp
        values = pack_fields(b.to_device(packed.bits[:, :64]), backend=b)
        return b.to_host(
            xp.broadcast_to(values[:, None], (len(packed), WORDS_PER_LINE))
        ).copy()

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]


@dataclass(frozen=True)
class BDIVariant(Compressor):
    """One (base size, delta size) member of the BDI family.

    The base is the first element of the line; every element is stored as a
    signed delta of ``delta_bytes`` bytes relative to the base (arithmetic is
    modular, so reconstruction is exact whenever the wrapped delta fits).
    """

    base_bytes: int = 8
    delta_bytes: int = 1

    def __post_init__(self) -> None:
        if self.base_bytes not in (2, 4, 8):
            raise CompressionError("base_bytes must be 2, 4 or 8")
        if self.delta_bytes >= self.base_bytes or self.delta_bytes not in (1, 2, 4):
            raise CompressionError("delta_bytes must be 1, 2 or 4 and smaller than base_bytes")
        object.__setattr__(self, "name", f"bdi-b{self.base_bytes}d{self.delta_bytes}")

    @property
    def elements_per_line(self) -> int:
        """Number of base-sized elements in a 512-bit line."""
        return BYTES_PER_LINE // self.base_bytes

    @property
    def compressed_bits(self) -> int:
        """Size of the compressed representation when the variant applies."""
        return self.base_bytes * 8 + self.elements_per_line * self.delta_bytes * 8

    def _deltas(self, elements: np.ndarray) -> np.ndarray:
        base = elements[..., :1]
        wrapped = (elements - base).astype(elements.dtype)
        return wrapped.astype(_signed_dtype(self.base_bytes))

    def _fits_device(self, words, xp) -> np.ndarray:
        elements = line_elements(words, self.base_bytes, xp=xp)
        deltas = self._deltas(elements)
        limit = 1 << (8 * self.delta_bytes - 1)
        return xp.all((deltas >= -limit) & (deltas < limit), axis=-1)

    def fits(self, batch: LineBatch) -> np.ndarray:
        """Per-line test: do all wrapped deltas fit in ``delta_bytes`` bytes?"""
        b = get_backend()
        return b.to_host(self._fits_device(b.to_device(batch.words), b.xp))

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        b = get_backend()
        xp = b.xp
        fits = self._fits_device(b.to_device(batch.words), xp)
        return b.to_host(
            xp.where(fits, self.compressed_bits, BITS_PER_LINE).astype(np.int64)
        )

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        b = get_backend()
        xp = b.xp
        words = b.to_device(batch.words)
        if not validated and not bool(self._fits_device(words, xp).all()):
            raise CompressionError(f"line does not fit {self.name}")
        elements = line_elements(words, self.base_bytes, xp=xp)
        deltas = self._deltas(elements)
        delta_mask = np.uint64((1 << (self.delta_bytes * 8)) - 1)
        encoded = deltas.astype(np.uint64) & delta_mask
        base_bits = unpack_fields(
            elements[:, 0].astype(np.uint64), self.base_bytes * 8, backend=b
        )
        delta_bits = unpack_fields(encoded, self.delta_bytes * 8, backend=b)
        bits = xp.concatenate(
            [base_bits, delta_bits.reshape(len(batch), -1)], axis=1
        )
        return PackedBits(
            bits=b.to_host(bits),
            lengths=np.full(len(batch), self.compressed_bits, dtype=np.int64),
            compressor=self.name,
        )

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        short = packed.lengths[packed.lengths < self.compressed_bits]
        if short.size:
            raise CompressionError(
                f"stream length {int(short[0])} is shorter than {self.compressed_bits}"
            )
        if len(packed) == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        b = get_backend()
        xp = b.xp
        bits = b.to_device(packed.bits)
        base_width = self.base_bytes * 8
        delta_width = self.delta_bytes * 8
        base = pack_fields(bits[:, :base_width], backend=b)
        raw = pack_fields(
            bits[
                :, base_width : base_width + self.elements_per_line * delta_width
            ].reshape(len(packed), self.elements_per_line, delta_width),
            backend=b,
        )
        sign_bit = np.uint64(1 << (delta_width - 1))
        full = np.uint64(1 << delta_width) if delta_width < 64 else np.uint64(0)
        # Modular arithmetic: adding (raw - 2^w) mod 2^64 reverses the wrap.
        delta = xp.where((raw & sign_bit).astype(bool), raw - full, raw)
        element_mask = np.uint64((1 << base_width) - 1) if base_width < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
        elements = (base[:, None] + delta) & element_mask
        return b.to_host(elements_to_line(elements, self.base_bytes, xp=xp))

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]


#: The six delta variants of the standard BDI family.
STANDARD_BDI_VARIANTS: Tuple[BDIVariant, ...] = (
    BDIVariant(8, 1),
    BDIVariant(8, 2),
    BDIVariant(8, 4),
    BDIVariant(4, 1),
    BDIVariant(4, 2),
    BDIVariant(2, 1),
)


@dataclass(frozen=True)
class BDICompressor(Compressor):
    """Best-of-family BDI compressor (zero, repeated value, and delta variants)."""

    name: str = "bdi"
    variants: Tuple[Compressor, ...] = field(
        default_factory=lambda: (ZeroLineCompressor(), RepeatedValueCompressor()) + STANDARD_BDI_VARIANTS
    )
    #: Encoding-tag overhead added to every compressed line, in bits.
    tag_bits: int = 4

    def variant_sizes(self, batch: LineBatch) -> np.ndarray:
        """Per-variant compressed sizes, shape ``(variants, lines)``."""
        return np.stack([v.sizes_bits(batch) for v in self.variants])

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        best = self.variant_sizes(batch).min(axis=0)
        return np.where(best < BITS_PER_LINE, best + self.tag_bits, BITS_PER_LINE).astype(np.int64)

    def _best_variant(self, words: np.ndarray) -> Tuple[int, Compressor]:
        sizes = self.variant_sizes(single_line_batch(words))[:, 0]
        index = int(np.argmin(sizes))
        return index, self.variants[index]

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        """Vectorised best-of-family compression.

        The per-variant classification runs once for the whole batch; each
        variant's kernel then compresses only the lines that chose it, with
        the classification marked validated so it is never re-run per line.
        """
        sizes = self.variant_sizes(batch)
        choice = sizes.argmin(axis=0)
        if np.any(sizes.min(axis=0) >= BITS_PER_LINE):
            raise CompressionError("line is not BDI-compressible")
        n = len(batch)
        inner_bits = np.zeros((n, 0), dtype=np.uint8)
        inner_lengths = np.zeros(n, dtype=np.int64)
        for index, variant in enumerate(self.variants):
            rows = np.nonzero(choice == index)[0]
            if rows.size == 0:
                continue
            part = variant.compress_batch(LineBatch(batch.words[rows]), validated=True)
            if part.bits.shape[1] > inner_bits.shape[1]:
                grown = np.zeros((n, part.bits.shape[1]), dtype=np.uint8)
                grown[:, : inner_bits.shape[1]] = inner_bits
                inner_bits = grown
            inner_bits[rows, : part.bits.shape[1]] = part.bits
            inner_lengths[rows] = part.lengths
        inner = PackedBits(inner_bits, inner_lengths, self.name)
        tag = PackedBits(
            unpack_fields(choice.astype(np.uint64), self.tag_bits),
            np.full(n, self.tag_bits, dtype=np.int64),
            self.name,
        )
        return hstack_bits([tag, inner], self.name)

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        if np.any(packed.lengths < self.tag_bits):
            raise CompressionError("truncated BDI stream")
        if len(packed) == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        tags = pack_fields(packed.bits[:, : self.tag_bits]).astype(np.int64)
        bad = tags[tags >= len(self.variants)]
        if bad.size:
            raise CompressionError(f"unknown BDI variant tag {int(bad[0])}")
        words = np.zeros((len(packed), WORDS_PER_LINE), dtype=np.uint64)
        for index, variant in enumerate(self.variants):
            rows = np.nonzero(tags == index)[0]
            if rows.size == 0:
                continue
            inner = PackedBits(
                packed.bits[rows, self.tag_bits :],
                packed.lengths[rows] - self.tag_bits,
                variant.name,
            )
            words[rows] = variant.decompress_batch(inner)
        return words

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return self.decompress_batch(single_stream(compressed, self.name))[0]
