"""Base-Delta-Immediate (BDI) compression [Pekhimenko et al., PACT 2012].

BDI exploits the low dynamic range of values within a memory line: the line is
viewed as an array of fixed-size elements (8-, 4- or 2-byte) and stored as one
*base* element plus narrow *deltas*.  Several (base size, delta size) variants
are tried and the smallest representation wins.  Two degenerate variants --
the all-zero line and the line made of one repeated 8-byte value -- are also
part of the family.

This module exposes each variant as an individual :class:`Compressor` (the
Coverage-Oriented Compression bank of the paper treats every variant as its
own compressor) plus :class:`BDICompressor`, the conventional "best variant
wins" front-end used in the FPC+BDI comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import BITS_PER_LINE, BYTES_PER_LINE, WORDS_PER_LINE
from .base import CompressedLine, Compressor


def line_elements(words: np.ndarray, element_bytes: int) -> np.ndarray:
    """View line words as an array of unsigned elements of ``element_bytes`` bytes."""
    words = np.asarray(words, dtype=np.uint64)
    if element_bytes == 8:
        return words
    if element_bytes == 4:
        low = (words & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        high = (words >> np.uint64(32)).astype(np.uint32)
        return np.stack([low, high], axis=-1).reshape(words.shape[:-1] + (-1,))
    if element_bytes == 2:
        parts = [
            ((words >> np.uint64(16 * i)) & np.uint64(0xFFFF)).astype(np.uint16) for i in range(4)
        ]
        return np.stack(parts, axis=-1).reshape(words.shape[:-1] + (-1,))
    raise CompressionError(f"unsupported element size: {element_bytes} bytes")


def elements_to_line(elements: np.ndarray, element_bytes: int) -> np.ndarray:
    """Rebuild 64-bit line words from an array of unsigned elements."""
    elements = np.asarray(elements, dtype=np.uint64)
    per_word = 8 // element_bytes
    grouped = elements.reshape(elements.shape[:-1] + (WORDS_PER_LINE, per_word))
    shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(8 * element_bytes))
    return (grouped << shifts).sum(axis=-1, dtype=np.uint64)


def _signed_dtype(element_bytes: int) -> np.dtype:
    return {8: np.int64, 4: np.int32, 2: np.int16}[element_bytes]


@dataclass(frozen=True)
class ZeroLineCompressor(Compressor):
    """Degenerate BDI variant: the all-zero line compresses to zero bits."""

    name: str = "zero-line"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        zero = np.all(batch.words == 0, axis=1)
        return np.where(zero, 0, BITS_PER_LINE).astype(np.int64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        if np.any(words != 0):
            raise CompressionError("line is not all zero")
        return CompressedLine(bits=np.zeros(0, dtype=np.uint8), compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        return np.zeros(WORDS_PER_LINE, dtype=np.uint64)


@dataclass(frozen=True)
class RepeatedValueCompressor(Compressor):
    """Degenerate BDI variant: the line is a single repeated 8-byte value."""

    name: str = "repeated-8byte"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        repeated = np.all(batch.words == batch.words[:, :1], axis=1)
        return np.where(repeated, 64, BITS_PER_LINE).astype(np.int64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        if np.any(words != words[0]):
            raise CompressionError("line is not a repeated 8-byte value")
        value = int(words[0])
        bits = np.array([(value >> b) & 1 for b in range(64)], dtype=np.uint8)
        return CompressedLine(bits=bits, compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < 64:
            raise CompressionError("repeated-value stream must be at least 64 bits")
        value = 0
        for b in range(64):
            value |= int(bits[b]) << b
        return np.full(WORDS_PER_LINE, value, dtype=np.uint64)


@dataclass(frozen=True)
class BDIVariant(Compressor):
    """One (base size, delta size) member of the BDI family.

    The base is the first element of the line; every element is stored as a
    signed delta of ``delta_bytes`` bytes relative to the base (arithmetic is
    modular, so reconstruction is exact whenever the wrapped delta fits).
    """

    base_bytes: int = 8
    delta_bytes: int = 1

    def __post_init__(self) -> None:
        if self.base_bytes not in (2, 4, 8):
            raise CompressionError("base_bytes must be 2, 4 or 8")
        if self.delta_bytes >= self.base_bytes or self.delta_bytes not in (1, 2, 4):
            raise CompressionError("delta_bytes must be 1, 2 or 4 and smaller than base_bytes")
        object.__setattr__(self, "name", f"bdi-b{self.base_bytes}d{self.delta_bytes}")

    @property
    def elements_per_line(self) -> int:
        """Number of base-sized elements in a 512-bit line."""
        return BYTES_PER_LINE // self.base_bytes

    @property
    def compressed_bits(self) -> int:
        """Size of the compressed representation when the variant applies."""
        return self.base_bytes * 8 + self.elements_per_line * self.delta_bytes * 8

    def _deltas(self, elements: np.ndarray) -> np.ndarray:
        base = elements[..., :1]
        wrapped = (elements - base).astype(elements.dtype)
        return wrapped.astype(_signed_dtype(self.base_bytes))

    def fits(self, batch: LineBatch) -> np.ndarray:
        """Per-line test: do all wrapped deltas fit in ``delta_bytes`` bytes?"""
        elements = line_elements(batch.words, self.base_bytes)
        deltas = self._deltas(elements)
        limit = 1 << (8 * self.delta_bytes - 1)
        return np.all((deltas >= -limit) & (deltas < limit), axis=-1)

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        fits = self.fits(batch)
        return np.where(fits, self.compressed_bits, BITS_PER_LINE).astype(np.int64)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        batch = LineBatch(words.reshape(1, -1))
        if not bool(self.fits(batch)[0]):
            raise CompressionError(f"line does not fit {self.name}")
        elements = line_elements(words, self.base_bytes)
        deltas = self._deltas(elements)
        bits: List[int] = []
        base = int(elements[0])
        for b in range(self.base_bytes * 8):
            bits.append((base >> b) & 1)
        delta_mask = (1 << (self.delta_bytes * 8)) - 1
        for delta in deltas:
            encoded = int(delta) & delta_mask
            for b in range(self.delta_bytes * 8):
                bits.append((encoded >> b) & 1)
        return CompressedLine(bits=np.asarray(bits, dtype=np.uint8), compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < self.compressed_bits:
            raise CompressionError(
                f"stream length {bits.shape[0]} is shorter than {self.compressed_bits}"
            )
        cursor = 0
        base = 0
        for b in range(self.base_bytes * 8):
            base |= int(bits[cursor + b]) << b
        cursor += self.base_bytes * 8
        element_mask = (1 << (self.base_bytes * 8)) - 1
        sign_bit = 1 << (self.delta_bytes * 8 - 1)
        full = 1 << (self.delta_bytes * 8)
        elements = np.zeros(self.elements_per_line, dtype=np.uint64)
        for i in range(self.elements_per_line):
            raw = 0
            for b in range(self.delta_bytes * 8):
                raw |= int(bits[cursor + b]) << b
            cursor += self.delta_bytes * 8
            delta = raw - full if raw & sign_bit else raw
            elements[i] = (base + delta) & element_mask
        return elements_to_line(elements, self.base_bytes)


#: The six delta variants of the standard BDI family.
STANDARD_BDI_VARIANTS: Tuple[BDIVariant, ...] = (
    BDIVariant(8, 1),
    BDIVariant(8, 2),
    BDIVariant(8, 4),
    BDIVariant(4, 1),
    BDIVariant(4, 2),
    BDIVariant(2, 1),
)


@dataclass(frozen=True)
class BDICompressor(Compressor):
    """Best-of-family BDI compressor (zero, repeated value, and delta variants)."""

    name: str = "bdi"
    variants: Tuple[Compressor, ...] = field(
        default_factory=lambda: (ZeroLineCompressor(), RepeatedValueCompressor()) + STANDARD_BDI_VARIANTS
    )
    #: Encoding-tag overhead added to every compressed line, in bits.
    tag_bits: int = 4

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        sizes = np.stack([v.sizes_bits(batch) for v in self.variants])
        best = sizes.min(axis=0)
        return np.where(best < BITS_PER_LINE, best + self.tag_bits, BITS_PER_LINE).astype(np.int64)

    def _best_variant(self, words: np.ndarray) -> Tuple[int, Compressor]:
        batch = LineBatch(np.asarray(words, dtype=np.uint64).reshape(1, -1))
        sizes = [int(v.sizes_bits(batch)[0]) for v in self.variants]
        index = int(np.argmin(sizes))
        return index, self.variants[index]

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        index, variant = self._best_variant(words)
        batch = LineBatch(np.asarray(words, dtype=np.uint64).reshape(1, -1))
        if int(variant.sizes_bits(batch)[0]) >= BITS_PER_LINE:
            raise CompressionError("line is not BDI-compressible")
        inner = variant.compress_line(words)
        tag = np.array([(index >> b) & 1 for b in range(self.tag_bits)], dtype=np.uint8)
        return CompressedLine(bits=np.concatenate([tag, inner.bits]), compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        if bits.shape[0] < self.tag_bits:
            raise CompressionError("truncated BDI stream")
        index = 0
        for b in range(self.tag_bits):
            index |= int(bits[b]) << b
        if index >= len(self.variants):
            raise CompressionError(f"unknown BDI variant tag {index}")
        inner = CompressedLine(bits=bits[self.tag_bits:], compressor=self.variants[index].name)
        return self.variants[index].decompress_line(inner)
