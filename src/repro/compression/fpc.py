"""Frequent Pattern Compression (FPC) [Alameldeen & Wood, 2004].

FPC scans a memory line as sixteen 32-bit words and replaces each word that
matches one of seven frequent patterns (zero, sign-extended narrow values,
zero-padded halfword, repeated bytes) with a 3-bit prefix plus a shortened
payload.  Words that match no pattern are stored uncompressed behind the
``111`` prefix.  The paper uses FPC (combined with BDI) both as the
compression front-end of the DIN baseline and as the comparison point of
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from .backend import get_backend
from .base import CompressedLine, Compressor
from .kernels import single_line_batch, single_stream
from .kernels import PackedBits, compact_segments, pack_fields, unpack_fields

#: Number of 32-bit words per 512-bit line.
WORDS32_PER_LINE = 16
#: Width of the per-word pattern prefix in bits.
PREFIX_BITS = 3

#: Payload size in bits for each FPC pattern, indexed by prefix value.
PATTERN_PAYLOAD_BITS = (0, 4, 8, 16, 16, 16, 8, 32)
#: Human-readable pattern names, indexed by prefix value.
PATTERN_NAMES = (
    "zero",
    "sign-extended-4bit",
    "sign-extended-byte",
    "sign-extended-halfword",
    "zero-padded-halfword",
    "two-sign-extended-bytes",
    "repeated-bytes",
    "uncompressed",
)


def line_to_words32(words: np.ndarray, xp=np) -> np.ndarray:
    """Split 64-bit words into 32-bit words (low half first)."""
    words = xp.asarray(words, dtype=np.uint64)
    low = (words & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    high = (words >> np.uint64(32)).astype(np.uint32)
    stacked = xp.stack([low, high], axis=-1)
    return stacked.reshape(words.shape[:-1] + (words.shape[-1] * 2,))


def words32_to_line(words32: np.ndarray, xp=np) -> np.ndarray:
    """Merge 32-bit words back into 64-bit words (inverse of :func:`line_to_words32`)."""
    words32 = xp.asarray(words32, dtype=np.uint64)
    pairs = words32.reshape(words32.shape[:-1] + (words32.shape[-1] // 2, 2))
    return pairs[..., 0] | (pairs[..., 1] << np.uint64(32))


def classify_words32(words32: np.ndarray, xp=np) -> np.ndarray:
    """Assign an FPC pattern (prefix value 0..7) to every 32-bit word."""
    w = xp.asarray(words32, dtype=np.uint32)
    signed = w.astype(np.int32)
    halves_low = (w & np.uint32(0xFFFF)).astype(np.uint16).astype(np.int16)
    halves_high = (w >> np.uint32(16)).astype(np.uint16).astype(np.int16)
    bytes_ = xp.stack([(w >> np.uint32(8 * i)) & np.uint32(0xFF) for i in range(4)], axis=-1)

    pattern = xp.full(w.shape, 7, dtype=np.uint8)
    repeated = (bytes_[..., 0] == bytes_[..., 1]) & (bytes_[..., 1] == bytes_[..., 2]) & (
        bytes_[..., 2] == bytes_[..., 3]
    )
    two_bytes = (
        (halves_low >= -128) & (halves_low < 128) & (halves_high >= -128) & (halves_high < 128)
    )
    zero_padded = (w & np.uint32(0xFFFF)) == 0
    se_half = (signed >= -(1 << 15)) & (signed < (1 << 15))
    se_byte = (signed >= -(1 << 7)) & (signed < (1 << 7))
    se_4bit = (signed >= -8) & (signed < 8)
    zero = w == 0

    # Later assignments take priority (most specific patterns win).
    pattern[repeated] = 6
    pattern[two_bytes] = 5
    pattern[zero_padded] = 4
    pattern[se_half] = 3
    pattern[se_byte] = 2
    pattern[se_4bit] = 1
    pattern[zero] = 0
    return pattern


def payloads_for_patterns(words32: np.ndarray, patterns: np.ndarray, xp=np) -> np.ndarray:
    """Vectorised :func:`payload_for_pattern` over aligned word/pattern arrays."""
    w = xp.asarray(words32, dtype=np.uint32)
    patterns = xp.asarray(patterns, dtype=np.uint8)
    choices = [
        xp.zeros_like(w),                                            # zero
        w & np.uint32(0xF),                                          # 4-bit
        w & np.uint32(0xFF),                                         # byte
        w & np.uint32(0xFFFF),                                       # halfword
        (w >> np.uint32(16)) & np.uint32(0xFFFF),                    # zero-padded
        (w & np.uint32(0xFF)) | (((w >> np.uint32(16)) & np.uint32(0xFF)) << np.uint32(8)),
        w & np.uint32(0xFF),                                         # repeated bytes
        w,                                                           # uncompressed
    ]
    return xp.select([patterns == p for p in range(8)], choices)


def words_from_payloads(payloads: np.ndarray, patterns: np.ndarray, xp=np) -> np.ndarray:
    """Vectorised :func:`word_from_payload` over aligned payload/pattern arrays."""
    p = xp.asarray(payloads, dtype=np.uint32)
    patterns = xp.asarray(patterns, dtype=np.uint8)

    def sign_extend(values: np.ndarray, width: int) -> np.ndarray:
        sign = np.uint32(1 << (width - 1))
        upper = np.uint32((0xFFFFFFFF >> width) << width)
        return xp.where((values & sign).astype(bool), values | upper, values)

    low = p & np.uint32(0xFF)
    high = (p >> np.uint32(8)) & np.uint32(0xFF)
    low16 = xp.where((low & np.uint32(0x80)).astype(bool), low | np.uint32(0xFF00), low)
    high16 = xp.where((high & np.uint32(0x80)).astype(bool), high | np.uint32(0xFF00), high)
    byte = p & np.uint32(0xFF)
    choices = [
        xp.zeros_like(p),
        sign_extend(p & np.uint32(0xF), 4),
        sign_extend(p & np.uint32(0xFF), 8),
        sign_extend(p & np.uint32(0xFFFF), 16),
        (p & np.uint32(0xFFFF)) << np.uint32(16),
        low16 | (high16 << np.uint32(16)),
        byte | (byte << np.uint32(8)) | (byte << np.uint32(16)) | (byte << np.uint32(24)),
        p,
    ]
    return xp.select([patterns == q for q in range(8)], choices).astype(np.uint32)


def payload_for_pattern(word: int, pattern: int) -> int:
    """Extract the payload bits stored for a 32-bit word under a pattern."""
    if pattern == 0:
        return 0
    if pattern == 1:
        return word & 0xF
    if pattern == 2:
        return word & 0xFF
    if pattern == 3:
        return word & 0xFFFF
    if pattern == 4:
        return (word >> 16) & 0xFFFF
    if pattern == 5:
        # One byte per halfword: low byte of the low half, low byte of the high half.
        return (word & 0xFF) | (((word >> 16) & 0xFF) << 8)
    if pattern == 6:
        return word & 0xFF
    return word & 0xFFFFFFFF


def word_from_payload(payload: int, pattern: int) -> int:
    """Rebuild a 32-bit word from its pattern and payload."""
    if pattern == 0:
        return 0
    if pattern == 1:
        value = payload & 0xF
        return value | 0xFFFFFFF0 if value & 0x8 else value
    if pattern == 2:
        value = payload & 0xFF
        return value | 0xFFFFFF00 if value & 0x80 else value
    if pattern == 3:
        value = payload & 0xFFFF
        return value | 0xFFFF0000 if value & 0x8000 else value
    if pattern == 4:
        return (payload & 0xFFFF) << 16
    if pattern == 5:
        low = payload & 0xFF
        high = (payload >> 8) & 0xFF
        low_ext = low | 0xFF00 if low & 0x80 else low
        high_ext = high | 0xFF00 if high & 0x80 else high
        return low_ext | (high_ext << 16)
    if pattern == 6:
        byte = payload & 0xFF
        return byte | (byte << 8) | (byte << 16) | (byte << 24)
    return payload & 0xFFFFFFFF


@dataclass(frozen=True)
class FPCCompressor(Compressor):
    """Frequent Pattern Compression over sixteen 32-bit words per line."""

    name: str = "fpc"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Compressed size of every line: 3-bit prefix + payload per 32-bit word."""
        b = get_backend()
        xp = b.xp
        words32 = line_to_words32(b.to_device(batch.words), xp=xp)
        patterns = classify_words32(words32, xp=xp)
        payload = xp.asarray(PATTERN_PAYLOAD_BITS, dtype=np.int64)[patterns]
        return b.to_host((payload + PREFIX_BITS).sum(axis=-1, dtype=np.int64))

    def compress_batch(self, batch: LineBatch, validated: bool = False) -> PackedBits:
        """Vectorised FPC: classify, gather payloads, compact the ragged fields.

        Every 32-bit word contributes one ``prefix + payload`` segment whose
        width depends on its pattern; :func:`~repro.compression.kernels
        .compact_segments` lays the segments back to back exactly like the
        scalar cursor loop.  FPC applies to every line, so ``validated`` is
        irrelevant here.
        """
        b = get_backend()
        xp = b.xp
        words32 = line_to_words32(b.to_device(batch.words), xp=xp)
        patterns = classify_words32(words32, xp=xp)
        payloads = payloads_for_patterns(words32, patterns, xp=xp)
        seg_bits = xp.concatenate(
            [
                unpack_fields(patterns.astype(np.uint64), PREFIX_BITS, backend=b),
                unpack_fields(payloads.astype(np.uint64), 32, backend=b),
            ],
            axis=-1,
        )
        widths = PREFIX_BITS + xp.asarray(PATTERN_PAYLOAD_BITS, dtype=np.int64)[patterns]
        return compact_segments(seg_bits, widths, self.name, backend=b)

    def decompress_batch(self, packed: PackedBits) -> np.ndarray:
        """Vectorised FPC decode: one cursor per line, sixteen lockstep steps."""
        n = len(packed)
        if n == 0:
            return np.zeros((0, WORDS_PER_LINE), dtype=np.uint64)
        b = get_backend()
        xp = b.xp
        bits = b.to_device(packed.bits)
        lengths = b.to_device(packed.lengths)
        payload_widths = xp.asarray(PATTERN_PAYLOAD_BITS, dtype=np.int64)
        cursor = xp.zeros(n, dtype=np.int64)
        words32 = xp.zeros((n, WORDS32_PER_LINE), dtype=np.uint32)
        column_cap = bits.shape[1] - 1
        for i in range(WORDS32_PER_LINE):
            if bool(xp.any(cursor + PREFIX_BITS > lengths)):
                raise CompressionError("truncated FPC stream")
            prefix_cols = cursor[:, None] + xp.arange(PREFIX_BITS, dtype=np.int64)
            patterns = pack_fields(
                xp.take_along_axis(bits, xp.minimum(prefix_cols, column_cap), axis=1),
                backend=b,
            ).astype(np.uint8)
            cursor = cursor + PREFIX_BITS
            widths = payload_widths[patterns]
            if bool(xp.any(cursor + widths > lengths)):
                raise CompressionError("truncated FPC stream")
            payload_cols = cursor[:, None] + xp.arange(32, dtype=np.int64)
            payload_bits = xp.take_along_axis(
                bits, xp.minimum(payload_cols, column_cap), axis=1
            )
            payload_bits = payload_bits * (xp.arange(32, dtype=np.int64) < widths[:, None])
            payloads = pack_fields(payload_bits, backend=b).astype(np.uint32)
            cursor = cursor + widths
            words32[:, i] = words_from_payloads(payloads, patterns, xp=xp)
        return b.to_host(words32_to_line(words32, xp=xp))

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        """Produce the bit-exact FPC stream of one line."""
        return self.compress_batch(single_line_batch(words)).line(0)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        """Rebuild a line from an FPC stream."""
        return self.decompress_batch(single_stream(compressed, self.name))[0]
