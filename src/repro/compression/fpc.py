"""Frequent Pattern Compression (FPC) [Alameldeen & Wood, 2004].

FPC scans a memory line as sixteen 32-bit words and replaces each word that
matches one of seven frequent patterns (zero, sign-extended narrow values,
zero-padded halfword, repeated bytes) with a 3-bit prefix plus a shortened
payload.  Words that match no pattern are stored uncompressed behind the
``111`` prefix.  The paper uses FPC (combined with BDI) both as the
compression front-end of the DIN baseline and as the comparison point of
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.errors import CompressionError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from .base import CompressedLine, Compressor

#: Number of 32-bit words per 512-bit line.
WORDS32_PER_LINE = 16
#: Width of the per-word pattern prefix in bits.
PREFIX_BITS = 3

#: Payload size in bits for each FPC pattern, indexed by prefix value.
PATTERN_PAYLOAD_BITS = (0, 4, 8, 16, 16, 16, 8, 32)
#: Human-readable pattern names, indexed by prefix value.
PATTERN_NAMES = (
    "zero",
    "sign-extended-4bit",
    "sign-extended-byte",
    "sign-extended-halfword",
    "zero-padded-halfword",
    "two-sign-extended-bytes",
    "repeated-bytes",
    "uncompressed",
)


def line_to_words32(words: np.ndarray) -> np.ndarray:
    """Split 64-bit words into 32-bit words (low half first)."""
    words = np.asarray(words, dtype=np.uint64)
    low = (words & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    high = (words >> np.uint64(32)).astype(np.uint32)
    stacked = np.stack([low, high], axis=-1)
    return stacked.reshape(words.shape[:-1] + (words.shape[-1] * 2,))


def words32_to_line(words32: np.ndarray) -> np.ndarray:
    """Merge 32-bit words back into 64-bit words (inverse of :func:`line_to_words32`)."""
    words32 = np.asarray(words32, dtype=np.uint64)
    pairs = words32.reshape(words32.shape[:-1] + (words32.shape[-1] // 2, 2))
    return pairs[..., 0] | (pairs[..., 1] << np.uint64(32))


def classify_words32(words32: np.ndarray) -> np.ndarray:
    """Assign an FPC pattern (prefix value 0..7) to every 32-bit word."""
    w = np.asarray(words32, dtype=np.uint32)
    signed = w.astype(np.int32)
    halves_low = (w & np.uint32(0xFFFF)).astype(np.uint16).astype(np.int16)
    halves_high = (w >> np.uint32(16)).astype(np.uint16).astype(np.int16)
    bytes_ = np.stack([(w >> np.uint32(8 * i)) & np.uint32(0xFF) for i in range(4)], axis=-1)

    pattern = np.full(w.shape, 7, dtype=np.uint8)
    repeated = (bytes_[..., 0] == bytes_[..., 1]) & (bytes_[..., 1] == bytes_[..., 2]) & (
        bytes_[..., 2] == bytes_[..., 3]
    )
    two_bytes = (
        (halves_low >= -128) & (halves_low < 128) & (halves_high >= -128) & (halves_high < 128)
    )
    zero_padded = (w & np.uint32(0xFFFF)) == 0
    se_half = (signed >= -(1 << 15)) & (signed < (1 << 15))
    se_byte = (signed >= -(1 << 7)) & (signed < (1 << 7))
    se_4bit = (signed >= -8) & (signed < 8)
    zero = w == 0

    # Later assignments take priority (most specific patterns win).
    pattern[repeated] = 6
    pattern[two_bytes] = 5
    pattern[zero_padded] = 4
    pattern[se_half] = 3
    pattern[se_byte] = 2
    pattern[se_4bit] = 1
    pattern[zero] = 0
    return pattern


def payload_for_pattern(word: int, pattern: int) -> int:
    """Extract the payload bits stored for a 32-bit word under a pattern."""
    if pattern == 0:
        return 0
    if pattern == 1:
        return word & 0xF
    if pattern == 2:
        return word & 0xFF
    if pattern == 3:
        return word & 0xFFFF
    if pattern == 4:
        return (word >> 16) & 0xFFFF
    if pattern == 5:
        # One byte per halfword: low byte of the low half, low byte of the high half.
        return (word & 0xFF) | (((word >> 16) & 0xFF) << 8)
    if pattern == 6:
        return word & 0xFF
    return word & 0xFFFFFFFF


def word_from_payload(payload: int, pattern: int) -> int:
    """Rebuild a 32-bit word from its pattern and payload."""
    if pattern == 0:
        return 0
    if pattern == 1:
        value = payload & 0xF
        return value | 0xFFFFFFF0 if value & 0x8 else value
    if pattern == 2:
        value = payload & 0xFF
        return value | 0xFFFFFF00 if value & 0x80 else value
    if pattern == 3:
        value = payload & 0xFFFF
        return value | 0xFFFF0000 if value & 0x8000 else value
    if pattern == 4:
        return (payload & 0xFFFF) << 16
    if pattern == 5:
        low = payload & 0xFF
        high = (payload >> 8) & 0xFF
        low_ext = low | 0xFF00 if low & 0x80 else low
        high_ext = high | 0xFF00 if high & 0x80 else high
        return low_ext | (high_ext << 16)
    if pattern == 6:
        byte = payload & 0xFF
        return byte | (byte << 8) | (byte << 16) | (byte << 24)
    return payload & 0xFFFFFFFF


@dataclass(frozen=True)
class FPCCompressor(Compressor):
    """Frequent Pattern Compression over sixteen 32-bit words per line."""

    name: str = "fpc"

    def sizes_bits(self, batch: LineBatch) -> np.ndarray:
        """Compressed size of every line: 3-bit prefix + payload per 32-bit word."""
        words32 = line_to_words32(batch.words)
        patterns = classify_words32(words32)
        payload = np.asarray(PATTERN_PAYLOAD_BITS, dtype=np.int64)[patterns]
        return (payload + PREFIX_BITS).sum(axis=-1)

    def compress_line(self, words: np.ndarray) -> CompressedLine:
        """Produce the bit-exact FPC stream of one line."""
        words = np.asarray(words, dtype=np.uint64).reshape(WORDS_PER_LINE)
        words32 = line_to_words32(words)
        patterns = classify_words32(words32)
        bits: List[int] = []
        for w32, pattern in zip(words32, patterns):
            pattern = int(pattern)
            for b in range(PREFIX_BITS):
                bits.append((pattern >> b) & 1)
            payload = payload_for_pattern(int(w32), pattern)
            for b in range(PATTERN_PAYLOAD_BITS[pattern]):
                bits.append((payload >> b) & 1)
        return CompressedLine(bits=np.asarray(bits, dtype=np.uint8), compressor=self.name)

    def decompress_line(self, compressed: CompressedLine) -> np.ndarray:
        """Rebuild a line from an FPC stream."""
        bits = np.asarray(compressed.bits, dtype=np.uint8)
        cursor = 0
        words32 = np.zeros(WORDS32_PER_LINE, dtype=np.uint32)
        for i in range(WORDS32_PER_LINE):
            if cursor + PREFIX_BITS > bits.shape[0]:
                raise CompressionError("truncated FPC stream")
            pattern = int(bits[cursor]) | (int(bits[cursor + 1]) << 1) | (int(bits[cursor + 2]) << 2)
            cursor += PREFIX_BITS
            width = PATTERN_PAYLOAD_BITS[pattern]
            if cursor + width > bits.shape[0]:
                raise CompressionError("truncated FPC stream")
            payload = 0
            for b in range(width):
                payload |= int(bits[cursor + b]) << b
            cursor += width
            words32[i] = word_from_payload(payload, pattern) & 0xFFFFFFFF
        return words32_to_line(words32)
