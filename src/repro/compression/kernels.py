"""Vectorised bit-packing kernels shared by every compression substrate.

The compressors' single-line interface builds its bit streams one bit at a
time, which is exact but serial.  This module provides the array-level
building blocks that let every compressor expose a *batch* interface
(:meth:`~repro.compression.base.Compressor.compress_batch` /
:meth:`~repro.compression.base.Compressor.decompress_batch`) producing the
same streams for a whole :class:`~repro.core.line.LineBatch` at once:

* :class:`PackedBits` -- the batched counterpart of
  :class:`~repro.compression.base.CompressedLine`: a zero-padded ``(n,
  width)`` bit matrix plus per-line stream lengths;
* fixed-width field packing/unpacking (:func:`unpack_fields`,
  :func:`pack_fields`) -- broadcasting shifts instead of per-bit loops;
* ragged compaction (:func:`compact_segments`) -- lay out per-line segments
  of varying widths (e.g. FPC's 16 prefix+payload fields) back to back,
  which is the one genuinely irregular step of variable-length compression.

Everything here is pure ``numpy``; the heavy loops release the GIL, which is
what makes the :class:`~repro.evaluation.parallel.ParallelRunner` thread
backend worthwhile for the encode path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..core.errors import CompressionError

__all__ = [
    "PackedBits",
    "unpack_fields",
    "pack_fields",
    "compact_segments",
    "hstack_bits",
    "single_line_batch",
    "single_stream",
]


@dataclass(frozen=True)
class PackedBits:
    """Batched bit-exact compressed streams (one row per memory line).

    Attributes
    ----------
    bits:
        ``(n, width)`` ``uint8`` array of bit values (0/1), LSB of the stream
        first.  Rows are zero-padded past their stream length; ``width`` is
        at least ``lengths.max()``.
    lengths:
        ``(n,)`` ``int64`` array of per-line stream lengths in bits.
    compressor:
        Name of the compressor that produced the streams.
    """

    bits: np.ndarray
    lengths: np.ndarray
    compressor: str

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits, dtype=np.uint8)
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if bits.ndim != 2 or lengths.ndim != 1 or bits.shape[0] != lengths.shape[0]:
            raise CompressionError(
                f"PackedBits needs (n, width) bits and (n,) lengths, got "
                f"{bits.shape} and {lengths.shape}"
            )
        if lengths.size and int(lengths.max(initial=0)) > bits.shape[1]:
            raise CompressionError("PackedBits lengths exceed the bit matrix width")
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "lengths", lengths)

    def __len__(self) -> int:
        return int(self.bits.shape[0])

    def line(self, index: int):
        """The ``index``-th stream as a scalar :class:`CompressedLine`."""
        from .base import CompressedLine

        return CompressedLine(
            bits=self.bits[index, : int(self.lengths[index])].copy(),
            compressor=self.compressor,
        )

    def lines(self) -> Iterator:
        """Iterate over the scalar :class:`CompressedLine` views."""
        for index in range(len(self)):
            yield self.line(index)

    @classmethod
    def from_streams(cls, streams: Sequence[np.ndarray], compressor: str) -> "PackedBits":
        """Pack a list of 1-D bit arrays into one zero-padded matrix."""
        lengths = np.array([int(np.asarray(s).shape[0]) for s in streams], dtype=np.int64)
        width = int(lengths.max(initial=0))
        bits = np.zeros((len(lengths), width), dtype=np.uint8)
        for row, stream in enumerate(streams):
            bits[row, : lengths[row]] = np.asarray(stream, dtype=np.uint8)
        return cls(bits=bits, lengths=lengths, compressor=compressor)


def single_line_batch(words: np.ndarray):
    """Wrap one ``(8,)`` line as a 1-line batch (the scalar-over-batch adapter).

    The scalar ``compress_line``/``decompress_line`` methods of every
    compressor are thin wrappers that route one line through the batch
    kernels; this and :func:`single_stream` are the two adapters they use.
    """
    from ..core.line import LineBatch

    return LineBatch(np.asarray(words, dtype=np.uint64).reshape(1, -1))


def single_stream(compressed, name: str) -> PackedBits:
    """Wrap one scalar compressed stream as a 1-line packed batch."""
    bits = np.asarray(compressed.bits, dtype=np.uint8).reshape(1, -1)
    return PackedBits(bits=bits, lengths=np.array([bits.shape[1]]), compressor=name)


def unpack_fields(values: np.ndarray, width: int) -> np.ndarray:
    """Unpack integers into their ``width`` least-significant bits, LSB first.

    ``values`` of shape ``(...,)`` becomes a ``uint8`` array of shape
    ``(..., width)``; consecutive fields of a line are meant to be unpacked
    separately and concatenated (or reshaped) along the last axis.
    """
    values = np.asarray(values, dtype=np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return ((values[..., None] >> shifts) & np.uint64(1)).astype(np.uint8)


def pack_fields(bits: np.ndarray) -> np.ndarray:
    """Pack LSB-first bits along the last axis back into ``uint64`` integers."""
    bits = np.asarray(bits, dtype=np.uint64)
    if bits.shape[-1] > 64:
        raise CompressionError("cannot pack more than 64 bits into one field")
    shifts = np.arange(bits.shape[-1], dtype=np.uint64)
    return (bits << shifts).sum(axis=-1, dtype=np.uint64)


def compact_segments(
    seg_bits: np.ndarray, seg_widths: np.ndarray, compressor: str
) -> PackedBits:
    """Concatenate per-line variable-width segments into dense streams.

    Parameters
    ----------
    seg_bits:
        ``(n, segments, max_width)`` ``uint8`` array; segment ``s`` of line
        ``i`` contributes its first ``seg_widths[i, s]`` bits.
    seg_widths:
        ``(n, segments)`` integer array of per-segment bit counts.

    Returns
    -------
    PackedBits
        The per-line concatenation of every segment's bits, in segment
        order -- exactly what a scalar cursor loop would build.
    """
    seg_bits = np.asarray(seg_bits, dtype=np.uint8)
    seg_widths = np.asarray(seg_widths, dtype=np.int64)
    n, segments, max_width = seg_bits.shape
    if seg_widths.shape != (n, segments):
        raise CompressionError("segment widths must align with the segment bits")
    if seg_widths.size and int(seg_widths.max(initial=0)) > max_width:
        raise CompressionError("segment widths exceed the segment bit capacity")
    lengths = seg_widths.sum(axis=1)
    if n == 0:
        return PackedBits(np.zeros((0, 0), dtype=np.uint8), lengths, compressor)
    # Row-major selection of the valid bits yields them already ordered by
    # (line, segment, bit); only the destination columns need computing.
    valid = np.arange(max_width, dtype=np.int64) < seg_widths[..., None]
    flat = seg_bits[valid]
    width = int(lengths.max(initial=0))
    out = np.zeros((n, width), dtype=np.uint8)
    rows = np.repeat(np.arange(n), lengths)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    cols = np.arange(flat.shape[0], dtype=np.int64) - np.repeat(starts, lengths)
    out[rows, cols] = flat
    return PackedBits(out, lengths, compressor)


def hstack_bits(parts: Sequence[PackedBits], compressor: str) -> PackedBits:
    """Concatenate several packed-bit blocks line-wise (ragged-aware)."""
    if not parts:
        raise CompressionError("hstack_bits needs at least one part")
    n = len(parts[0])
    widths = [part.bits.shape[1] for part in parts]
    seg_bits = np.zeros((n, len(parts), max(widths) if widths else 0), dtype=np.uint8)
    seg_widths = np.zeros((n, len(parts)), dtype=np.int64)
    for index, part in enumerate(parts):
        if len(part) != n:
            raise CompressionError("hstack_bits parts must have equal line counts")
        seg_bits[:, index, : part.bits.shape[1]] = part.bits
        seg_widths[:, index] = part.lengths
    return compact_segments(seg_bits, seg_widths, compressor)
