"""Vectorised bit-packing kernels shared by every compression substrate.

The compressors' single-line interface builds its bit streams one bit at a
time, which is exact but serial.  This module provides the array-level
building blocks that let every compressor expose a *batch* interface
(:meth:`~repro.compression.base.Compressor.compress_batch` /
:meth:`~repro.compression.base.Compressor.decompress_batch`) producing the
same streams for a whole :class:`~repro.core.line.LineBatch` at once:

* :class:`PackedBits` -- the batched counterpart of
  :class:`~repro.compression.base.CompressedLine`: a zero-padded ``(n,
  width)`` bit matrix plus per-line stream lengths;
* fixed-width field packing/unpacking (:func:`unpack_fields`,
  :func:`pack_fields`) -- broadcasting shifts instead of per-bit loops;
* ragged compaction (:func:`compact_segments`) -- lay out per-line segments
  of varying widths (e.g. FPC's 16 prefix+payload fields) back to back,
  which is the one genuinely irregular step of variable-length compression;
* GF(2) matrix reduction (:func:`xor_reduce`) -- XOR of selected rows of a
  bit matrix, expressed as an integer matmul mod 2 (the BCH parity kernel).

Array math is routed through the active
:class:`~repro.compression.backend.ArrayBackend`: every kernel accepts an
optional ``backend`` argument (defaulting to :func:`.backend.get_backend`),
performs its work in ``backend.xp``, and consults ``backend.compiled`` for a
substituted compiled loop.  :class:`PackedBits` is the *host* boundary: its
``bits``/``lengths`` are always numpy arrays, so device storage never leaks
past the kernel layer.

Dtype discipline matters here: every intermediate carries an explicit
``uint64``/``int64``/``uint8`` dtype.  Implicit upcasts (numpy quietly
promoting a python-int literal or a ``sum`` to platform int) are exactly the
kind of behaviour other array libraries do *not* replicate, and they broke
the first cupy port of :func:`compact_segments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.errors import CompressionError
from .backend import ArrayBackend, get_backend, kernel_timer

__all__ = [
    "PackedBits",
    "unpack_fields",
    "pack_fields",
    "compact_segments",
    "hstack_bits",
    "xor_reduce",
    "single_line_batch",
    "single_stream",
]


@dataclass(frozen=True)
class PackedBits:
    """Batched bit-exact compressed streams (one row per memory line).

    Attributes
    ----------
    bits:
        ``(n, width)`` ``uint8`` array of bit values (0/1), LSB of the stream
        first.  Rows are zero-padded past their stream length; ``width`` is
        at least ``lengths.max()``.
    lengths:
        ``(n,)`` ``int64`` array of per-line stream lengths in bits.
    compressor:
        Name of the compressor that produced the streams.

    ``PackedBits`` always lives in host (numpy) memory -- it is the boundary
    across which the array backend's device storage never escapes.
    """

    bits: np.ndarray
    lengths: np.ndarray
    compressor: str

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits, dtype=np.uint8)
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if bits.ndim != 2 or lengths.ndim != 1 or bits.shape[0] != lengths.shape[0]:
            raise CompressionError(
                f"PackedBits needs (n, width) bits and (n,) lengths, got "
                f"{bits.shape} and {lengths.shape}"
            )
        if lengths.size and int(lengths.max(initial=0)) > bits.shape[1]:
            raise CompressionError("PackedBits lengths exceed the bit matrix width")
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "lengths", lengths)

    def __len__(self) -> int:
        return int(self.bits.shape[0])

    def line(self, index: int):
        """The ``index``-th stream as a scalar :class:`CompressedLine`."""
        from .base import CompressedLine

        return CompressedLine(
            bits=self.bits[index, : int(self.lengths[index])].copy(),
            compressor=self.compressor,
        )

    def lines(self) -> Iterator:
        """Iterate over the scalar :class:`CompressedLine` views."""
        for index in range(len(self)):
            yield self.line(index)

    @classmethod
    def from_streams(cls, streams: Sequence[np.ndarray], compressor: str) -> "PackedBits":
        """Pack a list of 1-D bit arrays into one zero-padded matrix."""
        lengths = np.array([int(np.asarray(s).shape[0]) for s in streams], dtype=np.int64)
        width = int(lengths.max(initial=0))
        bits = np.zeros((len(lengths), width), dtype=np.uint8)
        for row, stream in enumerate(streams):
            bits[row, : lengths[row]] = np.asarray(stream, dtype=np.uint8)
        return cls(bits=bits, lengths=lengths, compressor=compressor)


def single_line_batch(words: np.ndarray):
    """Wrap one ``(8,)`` line as a 1-line batch (the scalar-over-batch adapter).

    The scalar ``compress_line``/``decompress_line`` methods of every
    compressor are thin wrappers that route one line through the batch
    kernels; this and :func:`single_stream` are the two adapters they use.
    """
    from ..core.line import LineBatch

    return LineBatch(np.asarray(words, dtype=np.uint64).reshape(1, -1))


def single_stream(compressed, name: str) -> PackedBits:
    """Wrap one scalar compressed stream as a 1-line packed batch."""
    bits = np.asarray(compressed.bits, dtype=np.uint8).reshape(1, -1)
    return PackedBits(bits=bits, lengths=np.array([bits.shape[1]]), compressor=name)


def unpack_fields(
    values, width: int, backend: Optional[ArrayBackend] = None
):
    """Unpack integers into their ``width`` least-significant bits, LSB first.

    ``values`` of shape ``(...,)`` becomes a ``uint8`` array of shape
    ``(..., width)``; consecutive fields of a line are meant to be unpacked
    separately and concatenated (or reshaped) along the last axis.  Device
    arrays stay on device.
    """
    b = backend or get_backend()
    xp = b.xp
    values = xp.asarray(values, dtype=xp.uint64)
    with kernel_timer(b.name, "unpack_fields"):
        kernel = b.compiled.get("unpack_fields")
        if kernel is not None:
            return kernel(np.ascontiguousarray(values), width)
        shifts = xp.arange(width, dtype=xp.uint64)
        return ((values[..., None] >> shifts) & xp.uint64(1)).astype(xp.uint8)


def pack_fields(bits, backend: Optional[ArrayBackend] = None):
    """Pack LSB-first bits along the last axis back into ``uint64`` integers."""
    b = backend or get_backend()
    xp = b.xp
    # Explicit uint64 up-front: letting `<<` promote uint8 operands would
    # produce int64 intermediates on numpy and overflow-prone uint8 math on
    # stricter backends.
    bits = xp.asarray(bits, dtype=xp.uint64)
    if bits.shape[-1] > 64:
        raise CompressionError("cannot pack more than 64 bits into one field")
    with kernel_timer(b.name, "pack_fields"):
        kernel = b.compiled.get("pack_fields")
        if kernel is not None:
            return kernel(np.ascontiguousarray(bits))
        shifts = xp.arange(bits.shape[-1], dtype=xp.uint64)
        return (bits << shifts).sum(axis=-1, dtype=xp.uint64)


def compact_segments(
    seg_bits, seg_widths, compressor: str, backend: Optional[ArrayBackend] = None
) -> PackedBits:
    """Concatenate per-line variable-width segments into dense streams.

    Parameters
    ----------
    seg_bits:
        ``(n, segments, max_width)`` ``uint8`` array; segment ``s`` of line
        ``i`` contributes its first ``seg_widths[i, s]`` bits.
    seg_widths:
        ``(n, segments)`` integer array of per-segment bit counts.

    Returns
    -------
    PackedBits
        The per-line concatenation of every segment's bits, in segment
        order -- exactly what a scalar cursor loop would build.  The result
        is host-resident regardless of where the inputs live.
    """
    b = backend or get_backend()
    xp = b.xp
    seg_bits = xp.asarray(seg_bits, dtype=xp.uint8)
    seg_widths = xp.asarray(seg_widths, dtype=xp.int64)
    n, segments, max_width = seg_bits.shape
    if seg_widths.shape != (n, segments):
        raise CompressionError("segment widths must align with the segment bits")
    if seg_widths.size and int(seg_widths.max(initial=0) if xp is np else seg_widths.max()) > max_width:
        raise CompressionError("segment widths exceed the segment bit capacity")
    # int64 explicitly: `sum` over int64 stays int64 on every backend, but a
    # default-dtype reduction over smaller width arrays silently upcasts to
    # platform int on numpy and not elsewhere.
    lengths = seg_widths.sum(axis=1, dtype=xp.int64)
    if n == 0:
        return PackedBits(
            np.zeros((0, 0), dtype=np.uint8), b.to_host(lengths), compressor
        )
    width = int(lengths.max())
    with kernel_timer(b.name, "compact_fill"):
        kernel = b.compiled.get("compact_fill")
        if kernel is not None:
            out = np.zeros((n, width), dtype=np.uint8)
            kernel(
                np.ascontiguousarray(seg_bits),
                np.ascontiguousarray(seg_widths),
                out,
            )
            return PackedBits(out, b.to_host(lengths), compressor)
        # Row-major selection of the valid bits yields them already ordered by
        # (line, segment, bit); only the destination columns need computing.
        valid = xp.arange(max_width, dtype=xp.int64) < seg_widths[..., None]
        flat = seg_bits[valid]
        out = xp.zeros((n, width), dtype=xp.uint8)
        rows = xp.repeat(xp.arange(n, dtype=xp.int64), lengths)
        starts = xp.concatenate(
            [xp.zeros(1, dtype=xp.int64), xp.cumsum(lengths, dtype=xp.int64)[:-1]]
        )
        cols = xp.arange(flat.shape[0], dtype=xp.int64) - xp.repeat(starts, lengths)
        out[rows, cols] = flat
        return PackedBits(b.to_host(out), b.to_host(lengths), compressor)


def hstack_bits(
    parts: Sequence[PackedBits], compressor: str, backend: Optional[ArrayBackend] = None
) -> PackedBits:
    """Concatenate several packed-bit blocks line-wise (ragged-aware)."""
    if not parts:
        raise CompressionError("hstack_bits needs at least one part")
    n = len(parts[0])
    widths = [part.bits.shape[1] for part in parts]
    seg_bits = np.zeros((n, len(parts), max(widths) if widths else 0), dtype=np.uint8)
    seg_widths = np.zeros((n, len(parts)), dtype=np.int64)
    for index, part in enumerate(parts):
        if len(part) != n:
            raise CompressionError("hstack_bits parts must have equal line counts")
        seg_bits[:, index, : part.bits.shape[1]] = part.bits
        seg_widths[:, index] = part.lengths
    return compact_segments(seg_bits, seg_widths, compressor, backend=backend)


def xor_reduce(bits, matrix, backend: Optional[ArrayBackend] = None):
    """GF(2) reduction: XOR together ``matrix`` rows selected by set ``bits``.

    ``bits`` is ``(n, k)`` with 0/1 entries, ``matrix`` is ``(k, r)``; the
    result is the ``(n, r)`` ``uint8`` matrix whose row ``i`` is the XOR of
    every ``matrix[j]`` with ``bits[i, j] == 1`` -- i.e. the bit-matrix
    product over GF(2), computed as an integer matmul with the parity taken
    mod 2.  This is the vectorised form of a polynomial remainder over GF(2)
    with a precomputed shifted-remainder table (see
    :meth:`repro.ecc.bch.BCHCode.parity_batch`).
    """
    b = backend or get_backend()
    xp = b.xp
    bits = xp.asarray(bits, dtype=xp.uint8)
    matrix = xp.asarray(matrix, dtype=xp.uint8)
    if bits.ndim != 2 or matrix.ndim != 2 or bits.shape[1] != matrix.shape[0]:
        raise CompressionError(
            f"xor_reduce needs (n, k) bits and (k, r) matrix, got "
            f"{bits.shape} and {matrix.shape}"
        )
    # Empty-batch guard: an (0, k) @ (k, r) matmul is well-defined, but the
    # compiled kernels reject zero-sized views and cupy allocates a stream
    # for it -- short-circuit to the empty host answer instead.
    if bits.shape[0] == 0:
        return xp.zeros((0, matrix.shape[1]), dtype=xp.uint8)
    with kernel_timer(b.name, "xor_reduce"):
        kernel = b.compiled.get("xor_reduce")
        if kernel is not None:
            return kernel(np.ascontiguousarray(bits), np.ascontiguousarray(matrix))
        # uint64 accumulators: popcounts along k can reach k (> 255), so the
        # matmul must not run in the uint8 input dtype.
        products = bits.astype(xp.uint64) @ matrix.astype(xp.uint64)
        return (products & xp.uint64(1)).astype(xp.uint8)
