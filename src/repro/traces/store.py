"""Versioned on-disk trace format and the trace corpus.

The ``.wtrc`` format stores a :class:`~repro.workloads.trace.WriteTrace` as a
small JSON header followed by the raw little-endian ``uint64`` arrays (old
words, new words, optional addresses), 64-byte aligned::

    bytes 0..3    magic  b"WTRC"
    bytes 4..5    format version (uint16 LE)
    bytes 6..7    reserved (zero)
    bytes 8..15   JSON header length in bytes (uint64 LE)
    bytes 16..    UTF-8 JSON header, zero-padded to ``data_offset``
    data_offset.. old words  (n, 8)  '<u8'
                  new words  (n, 8)  '<u8'
                  addresses  (n,)    '<u8'   (only when has_addresses)

Because the payload is raw fixed-layout arrays, :func:`load_trace` opens the
file with :class:`numpy.memmap`: a loaded trace never materialises in RAM and
the parallel engine can ship ``(path, offset, length)`` descriptors to worker
processes instead of pickled arrays (see :mod:`repro.traces.transport`).

:class:`TraceCorpus` manages a directory of such traces: a JSON index maps
trace names to files plus provenance (line count, profile, seed), and
:meth:`TraceCorpus.get_or_generate` caches generated traces content-addressed
by ``(profile, n_lines, seed, generator version)`` so repeated experiment
runs share one on-disk copy.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from ..workloads.trace import WriteTrace

try:  # POSIX advisory locking for concurrent corpus writers
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    _fcntl = None

#: File magic of the on-disk trace format.
TRACE_MAGIC = b"WTRC"
#: Current format version written by :func:`save_trace`.
TRACE_FORMAT_VERSION = 1
#: Canonical file suffix of the raw trace format.
TRACE_SUFFIX = ".wtrc"
#: Alignment of the array payload (keeps mmap pages and cache lines tidy).
DATA_ALIGNMENT = 64
#: Name of the corpus index file.
CORPUS_INDEX_NAME = "index.json"

_PREAMBLE = struct.Struct("<4sHHQ")


@dataclass(frozen=True)
class TraceHeader:
    """Parsed header of a ``.wtrc`` file."""

    version: int
    n_lines: int
    name: str
    metadata: Dict[str, str]
    has_addresses: bool
    data_offset: int

    @property
    def old_offset(self) -> int:
        return self.data_offset

    @property
    def new_offset(self) -> int:
        return self.data_offset + self.n_lines * WORDS_PER_LINE * 8

    @property
    def addresses_offset(self) -> Optional[int]:
        if not self.has_addresses:
            return None
        return self.data_offset + 2 * self.n_lines * WORDS_PER_LINE * 8

    @property
    def payload_bytes(self) -> int:
        per_line = 2 * WORDS_PER_LINE * 8 + (8 if self.has_addresses else 0)
        return self.n_lines * per_line


def _atomic_write(path: Path, mode: str, write) -> None:
    """Write a file atomically: unique temp name in the same directory, then
    ``os.replace``.  Concurrent writers of the same path cannot interleave;
    whichever replace lands last wins with an intact file."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            write(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_trace(trace: WriteTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` in the raw ``.wtrc`` format."""
    path = Path(path)
    header = {
        "format": "wtrc",
        "version": TRACE_FORMAT_VERSION,
        "n_lines": len(trace),
        "name": trace.name,
        "metadata": {str(k): str(v) for k, v in trace.metadata.items()},
        "has_addresses": trace.addresses is not None,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_offset = _PREAMBLE.size + len(header_bytes)
    data_offset = -(-data_offset // DATA_ALIGNMENT) * DATA_ALIGNMENT
    path.parent.mkdir(parents=True, exist_ok=True)

    def write_array(fh, array: np.ndarray) -> None:
        if array.size == 0:  # cast("B") rejects zero-size views
            return
        # memoryview streams the buffer without the full in-RAM bytes copy
        # .tobytes() would make -- ascontiguousarray is a view when the array
        # is already contiguous little-endian uint64 (the usual case).
        fh.write(memoryview(np.ascontiguousarray(array, dtype="<u8")).cast("B"))

    def write(fh) -> None:
        fh.write(_PREAMBLE.pack(TRACE_MAGIC, TRACE_FORMAT_VERSION, 0, len(header_bytes)))
        fh.write(header_bytes)
        fh.write(b"\0" * (data_offset - _PREAMBLE.size - len(header_bytes)))
        write_array(fh, trace.old.words)
        write_array(fh, trace.new.words)
        if trace.addresses is not None:
            write_array(fh, trace.addresses)

    _atomic_write(path, "wb", write)
    return path


def is_wtrc_file(path: Union[str, Path]) -> bool:
    """Whether ``path`` starts with the raw trace format's magic bytes."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(TRACE_MAGIC)) == TRACE_MAGIC
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc


def read_trace_header(path: Union[str, Path]) -> TraceHeader:
    """Read and validate the header of a ``.wtrc`` file."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        fh = open(path, "rb")
    except OSError as exc:  # directory, permission, I/O errors
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    with fh:
        preamble = fh.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise TraceError(f"{path} is too short to be a trace file")
        magic, version, _, header_len = _PREAMBLE.unpack(preamble)
        if magic != TRACE_MAGIC:
            raise TraceError(f"{path} is not a {TRACE_SUFFIX} trace file (bad magic)")
        if version > TRACE_FORMAT_VERSION:
            raise TraceError(
                f"{path} uses trace format version {version}; this library "
                f"supports up to {TRACE_FORMAT_VERSION}"
            )
        if header_len > path.stat().st_size - _PREAMBLE.size:
            raise TraceError(
                f"{path} has a corrupt trace header: header length {header_len} "
                "exceeds the file size"
            )
        try:
            header = json.loads(fh.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceError(f"{path} has a corrupt trace header: {exc}") from exc
    data_offset = _PREAMBLE.size + header_len
    data_offset = -(-data_offset // DATA_ALIGNMENT) * DATA_ALIGNMENT
    try:
        n_lines = int(header["n_lines"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path} has a corrupt trace header: bad n_lines") from exc
    if n_lines < 0:
        raise TraceError(f"{path} has a corrupt trace header: n_lines = {n_lines}")
    parsed = TraceHeader(
        version=version,
        n_lines=n_lines,
        name=str(header.get("name", path.stem)),
        metadata={str(k): str(v) for k, v in header.get("metadata", {}).items()},
        has_addresses=bool(header.get("has_addresses", False)),
        data_offset=data_offset,
    )
    expected = data_offset + parsed.payload_bytes
    actual = path.stat().st_size
    if actual < expected:
        raise TraceError(
            f"{path} is truncated: header promises {expected} bytes, file has {actual}"
        )
    return parsed


def load_trace(path: Union[str, Path], mmap: bool = True) -> WriteTrace:
    """Load a ``.wtrc`` trace, memory-mapped by default.

    With ``mmap=True`` (the default) the returned trace's arrays are read-only
    views of a :class:`numpy.memmap`, so loading a multi-gigabyte corpus trace
    costs no RAM, and the trace carries ``mmap_path`` so the parallel engine's
    transport can hand workers ``(path, offset, length)`` descriptors instead
    of the data itself.
    """
    path = Path(path)
    header = read_trace_header(path)
    n = header.n_lines

    def _array(offset: int, shape) -> np.ndarray:
        if n == 0:
            return np.zeros(shape, dtype=np.uint64)
        if mmap:
            return np.memmap(path, dtype="<u8", mode="r", offset=offset, shape=shape)
        with open(path, "rb") as fh:
            fh.seek(offset)
            count = int(np.prod(shape))
            return np.fromfile(fh, dtype="<u8", count=count).reshape(shape)

    old = _array(header.old_offset, (n, WORDS_PER_LINE))
    new = _array(header.new_offset, (n, WORDS_PER_LINE))
    addresses = None
    if header.has_addresses:
        addresses = _array(header.addresses_offset, (n,))
    stat = path.stat()
    return WriteTrace(
        old=LineBatch(old),
        new=LineBatch(new),
        addresses=addresses,
        name=header.name,
        metadata=dict(header.metadata),
        mmap_path=path if mmap else None,
        mmap_stat=(stat.st_mtime_ns, stat.st_size) if mmap else None,
    )


def trace_cache_key(profile: str, n_lines: int, seed: int, generator_version: int) -> str:
    """Content-address of a generated trace: stable across runs and machines."""
    blob = json.dumps(
        {
            "profile": profile,
            "n_lines": int(n_lines),
            "seed": int(seed),
            "generator_version": int(generator_version),
        },
        sort_keys=True,
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class CorpusEntry:
    """One trace registered in a corpus index."""

    name: str
    file: str
    n_lines: int
    profile: Optional[str] = None
    seed: Optional[int] = None
    digest: Optional[str] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "file": self.file,
            "n_lines": self.n_lines,
            "metadata": self.metadata,
        }
        if self.profile is not None:
            entry["profile"] = self.profile
        if self.seed is not None:
            entry["seed"] = self.seed
        if self.digest is not None:
            entry["digest"] = self.digest
        return entry


class TraceCorpus:
    """A directory of ``.wtrc`` traces with an index and generation cache.

    Layout::

        <root>/index.json          name -> file, line count, profile, seed
        <root>/<name>.wtrc         traces added with :meth:`add`
        <root>/cache/<digest>.wtrc content-addressed generated traces

    The corpus is the unit the experiment drivers point at
    (``ExperimentConfig.trace_dir``): benchmark traces are generated once,
    cached on disk keyed by ``(profile, n_lines, seed, generator version)``,
    and every later run memory-maps the cached copy.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Index handling
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / CORPUS_INDEX_NAME

    @contextlib.contextmanager
    def _index_lock(self):
        """Exclusive advisory lock serialising index read-modify-write.

        Two runs sharing a corpus (the advertised use of the generation
        cache) would otherwise race on index.json and drop each other's
        entries.  No-op where ``fcntl`` is unavailable.
        """
        if _fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".index.lock", "w") as lock:
            _fcntl.flock(lock, _fcntl.LOCK_EX)
            try:
                yield
            finally:
                _fcntl.flock(lock, _fcntl.LOCK_UN)

    def _read_index(self) -> Dict[str, CorpusEntry]:
        if not self.index_path.exists():
            return {}
        try:
            raw = json.loads(self.index_path.read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"corrupt corpus index {self.index_path}: {exc}") from exc
        entries: Dict[str, CorpusEntry] = {}
        for name, entry in raw.get("traces", {}).items():
            entries[name] = CorpusEntry(
                name=name,
                file=str(entry["file"]),
                n_lines=int(entry["n_lines"]),
                profile=entry.get("profile"),
                seed=entry.get("seed"),
                digest=entry.get("digest"),
                metadata={str(k): str(v) for k, v in entry.get("metadata", {}).items()},
            )
        return entries

    def _write_index(self, entries: Dict[str, CorpusEntry]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": 1,
            "traces": {name: entry.as_dict() for name, entry in sorted(entries.items())},
        }
        _atomic_write(
            self.index_path,
            "w",
            lambda fh: fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n"),
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Registered trace names, sorted."""
        return sorted(self._read_index())

    def __contains__(self, name: str) -> bool:
        return name in self._read_index()

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def entries(self) -> Dict[str, CorpusEntry]:
        """The full index as ``name -> entry``."""
        return self._read_index()

    def path_of(self, name: str) -> Path:
        """Absolute path of a registered trace file."""
        entries = self._read_index()
        if name not in entries:
            raise TraceError(
                f"trace {name!r} is not in corpus {self.root} "
                f"(have: {', '.join(sorted(entries)) or 'none'})"
            )
        return self.root / entries[name].file

    def add(
        self,
        trace: WriteTrace,
        name: Optional[str] = None,
        profile: Optional[str] = None,
        seed: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> Path:
        """Save ``trace`` into the corpus under ``name`` and index it."""
        name = name or trace.name
        if not name:
            raise TraceError("corpus traces need a non-empty name")
        if "/" in name or "\\" in name or name in (".", "..") or name.startswith("."):
            raise TraceError(
                f"invalid corpus trace name {name!r}: names must not contain "
                "path separators or start with a dot"
            )
        rel = f"{name}{TRACE_SUFFIX}"
        # File and index entry update under one lock, so concurrent adds of
        # the same name cannot leave the index describing the losing file.
        with self._index_lock():
            path = save_trace(trace, self.root / rel)
            entries = self._read_index()
            entries[name] = CorpusEntry(
                name=name,
                file=rel,
                n_lines=len(trace),
                profile=profile,
                seed=seed,
                digest=digest,
                metadata={str(k): str(v) for k, v in trace.metadata.items()},
            )
            self._write_index(entries)
        return path

    def load(self, name: str, mmap: bool = True) -> WriteTrace:
        """Load a registered trace (memory-mapped by default)."""
        return load_trace(self.path_of(name), mmap=mmap)

    def get_or_generate(
        self,
        profile: str,
        n_lines: int,
        seed: int = 2018,
        mmap: bool = True,
    ) -> WriteTrace:
        """Return the cached generated trace for ``(profile, n_lines, seed)``.

        The cache is content-addressed by :func:`trace_cache_key`, which also
        folds in the trace generator's algorithm version -- bumping
        :data:`repro.workloads.generator.GENERATOR_VERSION` invalidates every
        cached trace at once.
        """
        from ..workloads.generator import GENERATOR_VERSION, generate_benchmark_trace

        digest = trace_cache_key(profile, n_lines, seed, GENERATOR_VERSION)
        cached = self.root / "cache" / f"{digest}{TRACE_SUFFIX}"
        if not cached.exists():
            trace = generate_benchmark_trace(profile, n_lines, seed)
            save_trace(trace, cached)
            with self._index_lock():
                entries = self._read_index()
                name = f"{profile}-n{n_lines}-s{seed}"
                entries[name] = CorpusEntry(
                    name=name,
                    file=str(cached.relative_to(self.root)),
                    n_lines=n_lines,
                    profile=profile,
                    seed=seed,
                    digest=digest,
                    metadata=dict(trace.metadata),
                )
                self._write_index(entries)
        return load_trace(cached, mmap=mmap)
