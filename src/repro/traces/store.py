"""Versioned on-disk trace format and the trace corpus.

The ``.wtrc`` format stores a :class:`~repro.workloads.trace.WriteTrace` as a
small JSON header followed by the raw little-endian ``uint64`` arrays (old
words, new words, optional addresses), 64-byte aligned::

    bytes 0..3    magic  b"WTRC"
    bytes 4..5    format version (uint16 LE)
    bytes 6..7    reserved (zero)
    bytes 8..15   JSON header length in bytes (uint64 LE)
    bytes 16..    UTF-8 JSON header, zero-padded to ``data_offset``
    data_offset.. old words  (n, 8)  '<u8'
                  new words  (n, 8)  '<u8'
                  addresses  (n,)    '<u8'   (only when has_addresses)

Because the payload is raw fixed-layout arrays, :func:`load_trace` opens the
file with :class:`numpy.memmap`: a loaded trace never materialises in RAM and
the parallel engine can ship ``(path, offset, length)`` descriptors to worker
processes instead of pickled arrays (see :mod:`repro.traces.transport`).

:class:`TraceCorpus` manages a directory of such traces: a JSON index maps
trace names to files plus provenance (line count, profile, seed), and
:meth:`TraceCorpus.get_or_generate` caches generated traces content-addressed
by ``(profile, n_lines, seed, generator version)`` so repeated experiment
runs share one on-disk copy.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import struct
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from ..obs import count
from ..workloads.trace import WriteTrace

try:  # POSIX advisory locking for concurrent corpus writers
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    _fcntl = None

#: File magic of the on-disk trace format.
TRACE_MAGIC = b"WTRC"
#: Current format version written by :func:`save_trace`.
TRACE_FORMAT_VERSION = 1
#: Canonical file suffix of the raw trace format.
TRACE_SUFFIX = ".wtrc"
#: Alignment of the array payload (keeps mmap pages and cache lines tidy).
DATA_ALIGNMENT = 64
#: Name of the corpus index file.
CORPUS_INDEX_NAME = "index.json"

_PREAMBLE = struct.Struct("<4sHHQ")


@dataclass(frozen=True)
class TraceHeader:
    """Parsed header of a ``.wtrc`` file."""

    version: int
    n_lines: int
    name: str
    metadata: Dict[str, str]
    has_addresses: bool
    data_offset: int

    @property
    def old_offset(self) -> int:
        return self.data_offset

    @property
    def new_offset(self) -> int:
        return self.data_offset + self.n_lines * WORDS_PER_LINE * 8

    @property
    def addresses_offset(self) -> Optional[int]:
        if not self.has_addresses:
            return None
        return self.data_offset + 2 * self.n_lines * WORDS_PER_LINE * 8

    @property
    def payload_bytes(self) -> int:
        per_line = 2 * WORDS_PER_LINE * 8 + (8 if self.has_addresses else 0)
        return self.n_lines * per_line


def _atomic_write(path: Path, mode: str, write) -> None:
    """Write a file atomically: unique temp name in the same directory, then
    ``os.replace``.  Concurrent writers of the same path cannot interleave;
    whichever replace lands last wins with an intact file."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            write(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _header_blob(
    n_lines: int, name: str, metadata: Dict[str, str], has_addresses: bool
) -> Tuple[bytes, int]:
    """Serialised JSON header plus the aligned data offset it implies.

    Shared by :func:`save_trace` and :class:`TraceWriter` so the streamed and
    one-shot writers produce byte-identical files for the same trace.
    """
    header = {
        "format": "wtrc",
        "version": TRACE_FORMAT_VERSION,
        "n_lines": int(n_lines),
        "name": name,
        "metadata": {str(k): str(v) for k, v in metadata.items()},
        "has_addresses": bool(has_addresses),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_offset = _PREAMBLE.size + len(header_bytes)
    data_offset = -(-data_offset // DATA_ALIGNMENT) * DATA_ALIGNMENT
    return header_bytes, data_offset


def _write_preamble(fh, header_bytes: bytes, data_offset: int) -> None:
    fh.write(_PREAMBLE.pack(TRACE_MAGIC, TRACE_FORMAT_VERSION, 0, len(header_bytes)))
    fh.write(header_bytes)
    fh.write(b"\0" * (data_offset - _PREAMBLE.size - len(header_bytes)))


def _write_array(fh, array: np.ndarray) -> None:
    if array.size == 0:  # cast("B") rejects zero-size views
        return
    # memoryview streams the buffer without the full in-RAM bytes copy
    # .tobytes() would make -- ascontiguousarray is a view when the array
    # is already contiguous little-endian uint64 (the usual case).
    fh.write(memoryview(np.ascontiguousarray(array, dtype="<u8")).cast("B"))


def save_trace(trace: WriteTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` in the raw ``.wtrc`` format."""
    path = Path(path)
    header_bytes, data_offset = _header_blob(
        len(trace), trace.name, trace.metadata, trace.addresses is not None
    )
    path.parent.mkdir(parents=True, exist_ok=True)

    def write(fh) -> None:
        _write_preamble(fh, header_bytes, data_offset)
        _write_array(fh, trace.old.words)
        _write_array(fh, trace.new.words)
        if trace.addresses is not None:
            _write_array(fh, trace.addresses)

    _atomic_write(path, "wb", write)
    return path


class TraceWriter:
    """Incremental ``.wtrc`` writer: append chunks, finalise once.

    The ``.wtrc`` layout is columnar (all old words, then all new words, then
    the addresses), which a single growing file cannot serve while the line
    count is still unknown.  The writer therefore spools each column to its
    own temporary file next to the destination as chunks arrive -- bounded
    memory, sequential I/O -- and on :meth:`close` stitches the columns
    behind the final header and atomically replaces ``path``, exactly like
    :func:`save_trace` (for the same trace the two produce byte-identical
    files).

    Use as a context manager: a clean exit finalises the file, an exception
    discards the spools and leaves ``path`` untouched.  ``metadata`` may be
    updated any time before close (e.g. with totals only known at the end).

    ``has_addresses`` is normally inferred from the first appended chunk;
    pass it explicitly when the stream may yield *no* chunks at all (e.g. an
    ingest of a read-only trace), so the empty file still records the right
    header and stays byte-identical to the materialised writer's output.
    """

    #: Bytes copied per read when stitching spools into the final file.
    COPY_BUFFER_BYTES = 1 << 20

    def __init__(
        self,
        path: Union[str, Path],
        name: str = "trace",
        metadata: Optional[Dict[str, str]] = None,
        has_addresses: Optional[bool] = None,
    ):
        self.path = Path(path)
        self.name = name
        self.metadata: Dict[str, str] = dict(metadata or {})
        self.n_lines = 0
        self._has_addresses: Optional[bool] = has_addresses
        self._spools: Optional[List] = None  # [(file handle, Path), ...]
        self._finished = False

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    def _open_spools(self, has_addresses: bool) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._spools = []
        columns = ("old", "new", "addr") if has_addresses else ("old", "new")
        try:
            for column in columns:
                fd, tmp = tempfile.mkstemp(
                    dir=self.path.parent,
                    prefix=f"{self.path.name}.{column}.",
                    suffix=".tmp",
                )
                self._spools.append((os.fdopen(fd, "wb"), Path(tmp)))
        except BaseException:
            self.abort()
            raise

    def append(self, chunk: WriteTrace) -> None:
        """Append one trace chunk; chunks must agree on carrying addresses."""
        if self._finished:
            raise TraceError(f"TraceWriter for {self.path} is already closed")
        if len(chunk) == 0:
            return
        has_addresses = chunk.addresses is not None
        if self._has_addresses is None:
            self._has_addresses = has_addresses
        elif has_addresses != self._has_addresses:
            raise TraceError(
                "all chunks of a streamed trace must consistently carry "
                "addresses (or consistently omit them)"
            )
        if self._spools is None:
            self._open_spools(has_addresses)
        arrays = [chunk.old.words, chunk.new.words]
        if has_addresses:
            arrays.append(chunk.addresses)
        try:
            for (fh, _), array in zip(self._spools, arrays):
                _write_array(fh, array)
        except BaseException:
            self.abort()
            raise
        self.n_lines += len(chunk)

    def abort(self) -> None:
        """Discard the spools; the destination path is left untouched."""
        self._finished = True
        for fh, tmp in self._spools or []:
            try:
                fh.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            try:
                tmp.unlink()
            except OSError:
                pass
        self._spools = None

    def close(self) -> Path:
        """Stitch the spooled columns into the final ``.wtrc`` file."""
        if self._finished:
            return self.path
        self._finished = True
        spools = self._spools or []
        self._spools = None
        try:
            header_bytes, data_offset = _header_blob(
                self.n_lines, self.name, self.metadata, bool(self._has_addresses)
            )
            self.path.parent.mkdir(parents=True, exist_ok=True)

            def write(out) -> None:
                _write_preamble(out, header_bytes, data_offset)
                for fh, tmp in spools:
                    fh.flush()
                    with open(tmp, "rb") as src:
                        while True:
                            block = src.read(self.COPY_BUFFER_BYTES)
                            if not block:
                                break
                            out.write(block)

            _atomic_write(self.path, "wb", write)
        finally:
            for fh, tmp in spools:
                try:
                    fh.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return self.path


class NpzTraceWriter(TraceWriter):
    """Incremental ``.npz`` writer: append chunks, finalise one archive.

    Shares :class:`TraceWriter`'s spool machinery (one raw temp file per
    column, bounded memory, sequential I/O) but finalises into a compressed
    ``.npz`` archive compatible with :meth:`WriteTrace.save
    <repro.workloads.trace.WriteTrace.save>` / :meth:`WriteTrace.load`: the
    spooled columns are memory-mapped and streamed into the zip members
    through :func:`numpy.lib.format.write_array`'s buffered path, so the
    peak memory stays ~one write buffer no matter how long the trace is.
    Loading the streamed archive yields a trace equal to saving the
    materialised ingest result (the zip container itself is not guaranteed
    byte-identical -- compression framing differs -- but every array and
    metadata entry is).
    """

    def close(self) -> Path:
        """Stitch the spooled columns into the final ``.npz`` archive."""
        import zipfile

        if self._finished:
            return self.path
        self._finished = True
        spools = self._spools or []
        self._spools = None
        try:
            has_addresses = bool(self._has_addresses)
            arrays: List[Tuple[str, np.ndarray]] = []
            for index, column in enumerate(("old", "new") + (("addresses",) if has_addresses else ())):
                shape = (self.n_lines,) if column == "addresses" else (self.n_lines, WORDS_PER_LINE)
                if self.n_lines and index < len(spools):
                    fh, tmp = spools[index]
                    fh.flush()
                    array = np.memmap(tmp, dtype="<u8", mode="r", shape=shape)
                else:
                    array = np.zeros(shape, dtype="<u8")
                arrays.append((column, array))
            arrays.append(("name", np.array(self.name)))
            for key, value in self.metadata.items():
                arrays.append((f"meta_{key}", np.array(str(value))))
            self.path.parent.mkdir(parents=True, exist_ok=True)

            def write(out) -> None:
                with zipfile.ZipFile(out, "w", zipfile.ZIP_DEFLATED, allowZip64=True) as archive:
                    for entry, array in arrays:
                        with archive.open(f"{entry}.npy", "w", force_zip64=True) as member:
                            np.lib.format.write_array(member, np.asanyarray(array))

            _atomic_write(self.path, "wb", write)
        finally:
            for fh, tmp in spools:
                try:
                    fh.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return self.path


def read_npz_trace_lines(path: Union[str, Path]) -> int:
    """Line count of a ``.npz`` trace from the ``old`` member's header (O(1)).

    Reads only the zip directory and the ``.npy`` header, never the array
    payload -- the streaming converters use it to report totals without
    decompressing what they just wrote.
    """
    import zipfile

    try:
        with zipfile.ZipFile(path) as archive:
            with archive.open("old.npy") as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, _, _ = np.lib.format.read_array_header_1_0(member)
                else:
                    shape, _, _ = np.lib.format.read_array_header_2_0(member)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise TraceError(f"{path} is not a write-trace archive: {exc}") from exc
    return int(shape[0])


def is_wtrc_file(path: Union[str, Path]) -> bool:
    """Whether ``path`` starts with the raw trace format's magic bytes."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(TRACE_MAGIC)) == TRACE_MAGIC
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc


def read_trace_header(path: Union[str, Path]) -> TraceHeader:
    """Read and validate the header of a ``.wtrc`` file."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        fh = open(path, "rb")
    except OSError as exc:  # directory, permission, I/O errors
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    with fh:
        preamble = fh.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise TraceError(f"{path} is too short to be a trace file")
        magic, version, _, header_len = _PREAMBLE.unpack(preamble)
        if magic != TRACE_MAGIC:
            raise TraceError(f"{path} is not a {TRACE_SUFFIX} trace file (bad magic)")
        if version > TRACE_FORMAT_VERSION:
            raise TraceError(
                f"{path} uses trace format version {version}; this library "
                f"supports up to {TRACE_FORMAT_VERSION}"
            )
        if header_len > path.stat().st_size - _PREAMBLE.size:
            raise TraceError(
                f"{path} has a corrupt trace header: header length {header_len} "
                "exceeds the file size"
            )
        try:
            header = json.loads(fh.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceError(f"{path} has a corrupt trace header: {exc}") from exc
    data_offset = _PREAMBLE.size + header_len
    data_offset = -(-data_offset // DATA_ALIGNMENT) * DATA_ALIGNMENT
    try:
        n_lines = int(header["n_lines"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path} has a corrupt trace header: bad n_lines") from exc
    if n_lines < 0:
        raise TraceError(f"{path} has a corrupt trace header: n_lines = {n_lines}")
    parsed = TraceHeader(
        version=version,
        n_lines=n_lines,
        name=str(header.get("name", path.stem)),
        metadata={str(k): str(v) for k, v in header.get("metadata", {}).items()},
        has_addresses=bool(header.get("has_addresses", False)),
        data_offset=data_offset,
    )
    expected = data_offset + parsed.payload_bytes
    actual = path.stat().st_size
    if actual < expected:
        raise TraceError(
            f"{path} is truncated: header promises {expected} bytes, file has {actual}"
        )
    return parsed


def load_trace(path: Union[str, Path], mmap: bool = True) -> WriteTrace:
    """Load a ``.wtrc`` trace, memory-mapped by default.

    With ``mmap=True`` (the default) the returned trace's arrays are read-only
    views of a :class:`numpy.memmap`, so loading a multi-gigabyte corpus trace
    costs no RAM, and the trace carries ``mmap_path`` so the parallel engine's
    transport can hand workers ``(path, offset, length)`` descriptors instead
    of the data itself.
    """
    path = Path(path)
    header = read_trace_header(path)
    n = header.n_lines

    def _array(offset: int, shape) -> np.ndarray:
        if n == 0:
            return np.zeros(shape, dtype=np.uint64)
        if mmap:
            return np.memmap(path, dtype="<u8", mode="r", offset=offset, shape=shape)
        with open(path, "rb") as fh:
            fh.seek(offset)
            count = int(np.prod(shape))
            return np.fromfile(fh, dtype="<u8", count=count).reshape(shape)

    old = _array(header.old_offset, (n, WORDS_PER_LINE))
    new = _array(header.new_offset, (n, WORDS_PER_LINE))
    addresses = None
    if header.has_addresses:
        addresses = _array(header.addresses_offset, (n,))
    stat = path.stat()
    return WriteTrace(
        old=LineBatch(old),
        new=LineBatch(new),
        addresses=addresses,
        name=header.name,
        metadata=dict(header.metadata),
        mmap_path=path if mmap else None,
        mmap_stat=(stat.st_mtime_ns, stat.st_size) if mmap else None,
    )


def trace_cache_key(profile: str, n_lines: int, seed: int, generator_version: int) -> str:
    """Content-address of a generated trace: stable across runs and machines."""
    blob = json.dumps(
        {
            "profile": profile,
            "n_lines": int(n_lines),
            "seed": int(seed),
            "generator_version": int(generator_version),
        },
        sort_keys=True,
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class CorpusEntry:
    """One trace registered in a corpus index."""

    name: str
    file: str
    n_lines: int
    profile: Optional[str] = None
    seed: Optional[int] = None
    digest: Optional[str] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "file": self.file,
            "n_lines": self.n_lines,
            "metadata": self.metadata,
        }
        if self.profile is not None:
            entry["profile"] = self.profile
        if self.seed is not None:
            entry["seed"] = self.seed
        if self.digest is not None:
            entry["digest"] = self.digest
        return entry


class TraceCorpus:
    """A directory of ``.wtrc`` traces with an index and generation cache.

    Layout::

        <root>/index.json          name -> file, line count, profile, seed
        <root>/<name>.wtrc         traces added with :meth:`add`
        <root>/cache/<digest>.wtrc content-addressed generated traces

    The corpus is the unit the experiment drivers point at
    (``ExperimentConfig.trace_dir``): benchmark traces are generated once,
    cached on disk keyed by ``(profile, n_lines, seed, generator version)``,
    and every later run memory-maps the cached copy.

    ``cache_budget_bytes`` optionally bounds the ``cache/`` directory: after
    every cache miss the least-recently-used cached traces are evicted until
    the cache fits the budget again (see :meth:`gc`).  Traces added
    explicitly with :meth:`add` live outside ``cache/`` and are never
    evicted.
    """

    def __init__(
        self, root: Union[str, Path], cache_budget_bytes: Optional[int] = None
    ):
        self.root = Path(root)
        if cache_budget_bytes is not None and cache_budget_bytes < 0:
            raise TraceError("cache_budget_bytes must be non-negative")
        self.cache_budget_bytes = cache_budget_bytes

    # ------------------------------------------------------------------ #
    # Index handling
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / CORPUS_INDEX_NAME

    @contextlib.contextmanager
    def _index_lock(self):
        """Exclusive advisory lock serialising index read-modify-write.

        Two runs sharing a corpus (the advertised use of the generation
        cache) would otherwise race on index.json and drop each other's
        entries.  No-op where ``fcntl`` is unavailable.
        """
        if _fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".index.lock", "w") as lock:
            _fcntl.flock(lock, _fcntl.LOCK_EX)
            try:
                yield
            finally:
                _fcntl.flock(lock, _fcntl.LOCK_UN)

    def _read_index(self) -> Dict[str, CorpusEntry]:
        if not self.index_path.exists():
            return {}
        try:
            raw = json.loads(self.index_path.read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"corrupt corpus index {self.index_path}: {exc}") from exc
        entries: Dict[str, CorpusEntry] = {}
        for name, entry in raw.get("traces", {}).items():
            entries[name] = CorpusEntry(
                name=name,
                file=str(entry["file"]),
                n_lines=int(entry["n_lines"]),
                profile=entry.get("profile"),
                seed=entry.get("seed"),
                digest=entry.get("digest"),
                metadata={str(k): str(v) for k, v in entry.get("metadata", {}).items()},
            )
        return entries

    def _write_index(self, entries: Dict[str, CorpusEntry]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": 1,
            "traces": {name: entry.as_dict() for name, entry in sorted(entries.items())},
        }
        _atomic_write(
            self.index_path,
            "w",
            lambda fh: fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n"),
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Registered trace names, sorted."""
        return sorted(self._read_index())

    def __contains__(self, name: str) -> bool:
        return name in self._read_index()

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def entries(self) -> Dict[str, CorpusEntry]:
        """The full index as ``name -> entry``."""
        return self._read_index()

    def path_of(self, name: str) -> Path:
        """Absolute path of a registered trace file."""
        entries = self._read_index()
        if name not in entries:
            raise TraceError(
                f"trace {name!r} is not in corpus {self.root} "
                f"(have: {', '.join(sorted(entries)) or 'none'})"
            )
        return self.root / entries[name].file

    @staticmethod
    def validate_name(name: str) -> str:
        """Check a corpus trace name; returns it for chaining."""
        if not name:
            raise TraceError("corpus traces need a non-empty name")
        if "/" in name or "\\" in name or name in (".", "..") or name.startswith("."):
            raise TraceError(
                f"invalid corpus trace name {name!r}: names must not contain "
                "path separators or start with a dot"
            )
        return name

    def add(
        self,
        trace: WriteTrace,
        name: Optional[str] = None,
        profile: Optional[str] = None,
        seed: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> Path:
        """Save ``trace`` into the corpus under ``name`` and index it."""
        name = self.validate_name(name or trace.name)
        rel = f"{name}{TRACE_SUFFIX}"
        # File and index entry update under one lock, so concurrent adds of
        # the same name cannot leave the index describing the losing file.
        with self._index_lock():
            path = save_trace(trace, self.root / rel)
            entries = self._read_index()
            entries[name] = CorpusEntry(
                name=name,
                file=rel,
                n_lines=len(trace),
                profile=profile,
                seed=seed,
                digest=digest,
                metadata={str(k): str(v) for k, v in trace.metadata.items()},
            )
            self._write_index(entries)
        return path

    def add_path(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        profile: Optional[str] = None,
        seed: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> Path:
        """Index an existing ``.wtrc`` file already inside the corpus tree.

        This is how streamed conversions register: the file is written first
        (e.g. by :class:`TraceWriter`, atomically), then indexed here without
        ever materialising the trace.  ``name`` defaults to the file's header
        name.
        """
        path = Path(path)
        header = read_trace_header(path)
        name = self.validate_name(name or header.name)
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError as exc:
            raise TraceError(
                f"{path} is outside corpus {self.root}; corpus entries must "
                "live under the corpus root"
            ) from exc
        with self._index_lock():
            entries = self._read_index()
            entries[name] = CorpusEntry(
                name=name,
                file=str(rel),
                n_lines=header.n_lines,
                profile=profile,
                seed=seed,
                digest=digest,
                metadata=dict(header.metadata),
            )
            self._write_index(entries)
        return path

    def load(self, name: str, mmap: bool = True) -> WriteTrace:
        """Load a registered trace (memory-mapped by default)."""
        return load_trace(self.path_of(name), mmap=mmap)

    def get_or_generate(
        self,
        profile: str,
        n_lines: int,
        seed: int = 2018,
        mmap: bool = True,
    ) -> WriteTrace:
        """Return the cached generated trace for ``(profile, n_lines, seed)``.

        The cache is content-addressed by :func:`trace_cache_key`, which also
        folds in the trace generator's algorithm version -- bumping
        :data:`repro.workloads.generator.GENERATOR_VERSION` invalidates every
        cached trace at once.
        """
        from ..workloads.generator import GENERATOR_VERSION, generate_benchmark_trace

        digest = trace_cache_key(profile, n_lines, seed, GENERATOR_VERSION)
        cached = self.root / "cache" / f"{digest}{TRACE_SUFFIX}"
        generated = not cached.exists()
        count("corpus_cache", result="miss" if generated else "hit")
        if generated:
            trace = generate_benchmark_trace(profile, n_lines, seed)
            save_trace(trace, cached)
            with self._index_lock():
                entries = self._read_index()
                name = f"{profile}-n{n_lines}-s{seed}"
                entries[name] = CorpusEntry(
                    name=name,
                    file=str(cached.relative_to(self.root)),
                    n_lines=n_lines,
                    profile=profile,
                    seed=seed,
                    digest=digest,
                    metadata=dict(trace.metadata),
                )
                self._write_index(entries)
        else:
            # Bump the LRU clock.  Only the *atime* is advanced -- the mmap
            # transport's staleness guards key on mtime, so touching that on
            # a read would make concurrently shared corpora look rewritten
            # and fail workers' attach checks.  Explicit utime works even on
            # noatime mounts.  Best effort; racing a concurrent eviction is
            # harmless.
            try:
                stat = cached.stat()
                os.utime(cached, ns=(time.time_ns(), stat.st_mtime_ns))
            except OSError:
                pass
        loaded = load_trace(cached, mmap=mmap)
        # Collect only after loading: if the budget is smaller than this very
        # trace, the eviction unlinks the file but the mapping (or the
        # in-RAM copy) stays readable, so the caller still gets its trace.
        if generated and self.cache_budget_bytes is not None:
            self.gc()
        return loaded

    # ------------------------------------------------------------------ #
    # Cache garbage collection
    # ------------------------------------------------------------------ #
    def cache_dir(self) -> Path:
        """Directory holding the content-addressed generated traces."""
        return self.root / "cache"

    def gc(
        self, budget_bytes: Optional[int] = None, dry_run: bool = False
    ) -> Dict[str, object]:
        """Evict least-recently-used cached traces until the cache fits.

        Only ``cache/*.wtrc`` files (the content-addressed generation cache)
        are candidates; traces registered with :meth:`add` are never touched.
        Recency is ``max(atime, mtime)``: generation sets the mtime and
        :meth:`get_or_generate` advances the atime on every cache hit
        (leaving the mtime alone, which the mmap transport's staleness
        guards key on).  Index entries pointing at evicted (or otherwise
        missing) cache files are dropped.  With ``dry_run`` nothing is
        deleted; the report describes what would happen.

        Returns a report: ``budget_bytes``, ``removed`` (file names, oldest
        first), ``freed_bytes``, ``kept_bytes`` and ``dry_run``.

        Evicting a trace another process is currently memory-mapping is safe
        on POSIX -- the unlinked inode stays readable until unmapped; the
        next ``get_or_generate`` simply regenerates it.
        """
        budget = self.cache_budget_bytes if budget_bytes is None else budget_bytes
        if budget is None:
            raise TraceError(
                "corpus gc needs a byte budget (constructor cache_budget_bytes "
                "or the budget_bytes argument)"
            )
        if budget < 0:
            raise TraceError("gc budget_bytes must be non-negative")
        with self._index_lock():
            files = []
            if self.cache_dir().is_dir():
                for path in self.cache_dir().glob(f"*{TRACE_SUFFIX}"):
                    try:
                        stat = path.stat()
                    except OSError:  # raced with a concurrent eviction
                        continue
                    recency = max(stat.st_atime_ns, stat.st_mtime_ns)
                    files.append((recency, path.name, path, stat.st_size))
            files.sort()
            total = sum(size for _, _, _, size in files)
            removed: List[str] = []
            freed = 0
            for _, _, path, size in files:
                if total <= budget:
                    break
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - concurrent eviction
                        continue
                removed.append(path.name)
                total -= size
                freed += size
            if not dry_run and removed:
                entries = self._read_index()
                cache_rel = self.cache_dir().name
                kept_entries = {
                    name: entry
                    for name, entry in entries.items()
                    if not (
                        Path(entry.file).parts[:1] == (cache_rel,)
                        and not (self.root / entry.file).exists()
                    )
                }
                if kept_entries != entries:
                    self._write_index(kept_entries)
        return {
            "budget_bytes": int(budget),
            "removed": removed,
            "freed_bytes": int(freed),
            "kept_bytes": int(total),
            "dry_run": bool(dry_run),
        }
