"""Trace corpus, format ingest, and zero-copy transport.

This package is the trace *infrastructure* layer of the reproduction:

* :mod:`.store` -- a versioned on-disk trace format (``.wtrc``: JSON header
  plus raw little-endian ``uint64`` arrays) that loads through
  :class:`numpy.memmap`, and :class:`~.store.TraceCorpus`, a directory of
  traces with an index and content-addressed caching of generated traces;
* :mod:`.ingest` -- parsers for external address-trace formats (ramulator2's
  ``R/W 0xADDR 0xSIZE`` ASCII traces, tracehm's tab-separated traces) plus the
  content synthesiser that turns an address-only trace into a full
  (old, new) differential write trace;
* :mod:`.transport` -- zero-copy handoff of traces to the parallel evaluation
  engine via ``multiprocessing.shared_memory`` segments or memory-mapped
  corpus files, with a transparent pickle fallback.
"""

from .ingest import (
    SYNTHESIS_CHUNK_LINES,
    SYNTHESIS_VERSION,
    TRACE_FORMATS,
    IngestChunkSource,
    StreamingSynthesizer,
    detect_trace_format,
    ingest_trace_file,
    iter_trace_address_chunks,
    parse_ramulator_inst_trace,
    parse_ramulator_trace,
    parse_tracehm_trace,
    stream_ingest_to_npz,
    stream_ingest_to_wtrc,
    synthesize_write_trace,
)
from .store import (
    CORPUS_INDEX_NAME,
    TRACE_SUFFIX,
    NpzTraceWriter,
    TraceCorpus,
    TraceWriter,
    is_wtrc_file,
    load_trace,
    read_npz_trace_lines,
    read_trace_header,
    save_trace,
    trace_cache_key,
)
from .transport import (
    MmapTraceDescriptor,
    ShmTraceDescriptor,
    TraceExporter,
    attach_trace,
    shared_memory_available,
)

__all__ = [
    "CORPUS_INDEX_NAME",
    "IngestChunkSource",
    "MmapTraceDescriptor",
    "ShmTraceDescriptor",
    "StreamingSynthesizer",
    "SYNTHESIS_CHUNK_LINES",
    "SYNTHESIS_VERSION",
    "TRACE_FORMATS",
    "TRACE_SUFFIX",
    "TraceCorpus",
    "TraceExporter",
    "NpzTraceWriter",
    "TraceWriter",
    "attach_trace",
    "detect_trace_format",
    "ingest_trace_file",
    "is_wtrc_file",
    "iter_trace_address_chunks",
    "load_trace",
    "parse_ramulator_inst_trace",
    "parse_ramulator_trace",
    "parse_tracehm_trace",
    "read_npz_trace_lines",
    "read_trace_header",
    "save_trace",
    "shared_memory_available",
    "stream_ingest_to_npz",
    "stream_ingest_to_wtrc",
    "synthesize_write_trace",
    "trace_cache_key",
]
