"""Zero-copy trace handoff to worker processes.

The parallel engine's original IPC model pickled every chunk's ``(old, new)``
arrays into each worker task -- for a 200M-line trace that is the dominant
cost.  This module replaces the arrays with small *descriptors*:

* :class:`ShmTraceDescriptor` -- the trace lives in a
  ``multiprocessing.shared_memory`` segment the parent filled once; workers
  attach by name and slice, so chunk dispatch ships ~100 bytes instead of
  ~256 KiB per chunk;
* :class:`MmapTraceDescriptor` -- the trace is corpus-backed (a ``.wtrc``
  file, see :mod:`repro.traces.store`); workers ``numpy.memmap`` the file
  themselves and the OS page cache is the only copy in the system.

:class:`TraceExporter` picks the cheapest transport for each trace
(mmap for corpus-backed traces, shared memory for in-memory ones, pickling
as the transparent fallback) and owns the parent-side lifetime of the shared
segments.  :func:`attach_trace` is the worker-side entry point; attachments
are cached per process so a trace is mapped once, not once per chunk.

Transport is pure plumbing: the chunk boundaries, seeding, and reduction
order of the engine are untouched, so results stay bit-identical to the
pickled path for every ``n_jobs``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from ..obs import count
from ..workloads.trace import WriteTrace

try:  # pragma: no cover - exercised implicitly on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: Worker-side attachments kept alive at most this many traces deep.
_ATTACH_CACHE_SIZE = 16


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` can be used on this platform."""
    return _shm is not None


@dataclass(frozen=True)
class ShmTraceDescriptor:
    """A trace parked in a named shared-memory segment.

    Layout inside the segment: old words ``(n, 8)``, new words ``(n, 8)``,
    then the optional ``(n,)`` address array, all contiguous ``uint64``.
    """

    shm_name: str
    n_lines: int
    has_addresses: bool
    name: str


@dataclass(frozen=True)
class MmapTraceDescriptor:
    """A trace backed by a ``.wtrc`` corpus file workers mmap themselves.

    ``mtime_ns`` and ``size`` identify the file *version*: they participate
    in the descriptor's hash, so a worker's attachment cache cannot serve a
    stale mapping after the corpus file is overwritten in place.
    """

    path: str
    n_lines: int
    data_offset: int
    has_addresses: bool
    name: str
    mtime_ns: int = 0
    size: int = 0


TraceDescriptor = Union[ShmTraceDescriptor, MmapTraceDescriptor]


def _segment_bytes(n_lines: int, has_addresses: bool) -> int:
    per_line = 2 * WORDS_PER_LINE * 8 + (8 if has_addresses else 0)
    return max(1, n_lines * per_line)


def _segment_views(
    buffer, n_lines: int, has_addresses: bool
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    words = n_lines * WORDS_PER_LINE
    old = np.frombuffer(buffer, dtype=np.uint64, count=words, offset=0)
    new = np.frombuffer(buffer, dtype=np.uint64, count=words, offset=words * 8)
    addresses = None
    if has_addresses:
        addresses = np.frombuffer(
            buffer, dtype=np.uint64, count=n_lines, offset=2 * words * 8
        )
    return (
        old.reshape(n_lines, WORDS_PER_LINE),
        new.reshape(n_lines, WORDS_PER_LINE),
        addresses,
    )


class TraceExporter:
    """Parent-side transport chooser and shared-segment owner.

    ``policy`` selects the transport: ``"auto"`` (mmap when corpus-backed,
    else shared memory, else pickle), ``"mmap"`` / ``"shm"`` (build only that
    descriptor kind; :meth:`export` returns ``None`` -- i.e. pickle fallback
    -- for traces it cannot carry), or ``"pickle"`` (never export; the legacy
    behaviour, used by the transport benchmark as the baseline).  Exports are
    cached per trace object, so a sweep that wraps the same trace in hundreds
    of work units still creates one segment.

    Call :meth:`release` (or use the instance as a context manager) once the
    results have been reduced; it closes and unlinks every segment this
    exporter created.  POSIX keeps unlinked segments alive while workers hold
    them, so release-after-submit is safe.
    """

    def __init__(self, policy: str = "auto"):
        if policy not in ("auto", "mmap", "shm", "pickle"):
            raise TraceError(f"unknown transport policy {policy!r}")
        self.policy = policy
        # id(trace) -> (trace, descriptor, shm segment or None).  The strong
        # trace reference keeps the id from being recycled by a new object
        # while the cache lives; the segment travels with its entry so
        # prune() can release per trace.
        self._by_trace: Dict[int, Tuple[WriteTrace, Optional[TraceDescriptor], object]] = {}

    def __enter__(self) -> "TraceExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------ #
    def _mmap_descriptor(self, trace: WriteTrace) -> Optional[MmapTraceDescriptor]:
        path = trace.mmap_path
        if path is None:
            return None
        path = Path(path)
        try:
            from .store import read_trace_header

            header = read_trace_header(path)
        except TraceError:
            return None
        if header.n_lines != len(trace):
            return None
        stat = path.stat()
        if trace.mmap_stat is not None and trace.mmap_stat != (
            stat.st_mtime_ns,
            stat.st_size,
        ):
            # The path was overwritten since this trace was loaded: its views
            # still read the old inode, so shipping the path would make
            # workers evaluate the new file's data.  Fall back to shm/pickle,
            # which carry the trace's actual arrays.
            return None
        return MmapTraceDescriptor(
            path=str(path),
            n_lines=header.n_lines,
            data_offset=header.data_offset,
            has_addresses=header.has_addresses,
            name=trace.name,
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
        )

    def _shm_export(
        self, trace: WriteTrace
    ) -> Tuple[Optional[ShmTraceDescriptor], object]:
        if _shm is None or len(trace) == 0:
            return None, None
        has_addresses = trace.addresses is not None
        try:
            segment = _shm.SharedMemory(
                create=True, size=_segment_bytes(len(trace), has_addresses)
            )
        except OSError:
            return None, None
        old, new, addresses = _segment_views(segment.buf, len(trace), has_addresses)
        old[:] = trace.old.words
        new[:] = trace.new.words
        if addresses is not None:
            addresses[:] = trace.addresses
        descriptor = ShmTraceDescriptor(
            shm_name=segment.name,
            n_lines=len(trace),
            has_addresses=has_addresses,
            name=trace.name,
        )
        return descriptor, segment

    def export(self, trace: WriteTrace) -> Optional[TraceDescriptor]:
        """Descriptor for ``trace``, or ``None`` to fall back to pickling."""
        key = id(trace)
        cached = self._by_trace.get(key)
        if cached is not None:
            count("trace_export_reused")
            return cached[1]
        descriptor: Optional[TraceDescriptor] = None
        segment = None
        if self.policy in ("auto", "mmap"):
            descriptor = self._mmap_descriptor(trace)
        if descriptor is None and self.policy in ("auto", "shm"):
            descriptor, segment = self._shm_export(trace)
        if isinstance(descriptor, ShmTraceDescriptor):
            count("trace_export", kind="shm")
            count(
                "shm_export_bytes",
                _segment_bytes(descriptor.n_lines, descriptor.has_addresses),
            )
        elif isinstance(descriptor, MmapTraceDescriptor):
            count("trace_export", kind="mmap")
        else:
            count("trace_export", kind="pickle")
        self._by_trace[key] = (trace, descriptor, segment)
        return descriptor

    @staticmethod
    def _release_segment(segment) -> None:
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except (BufferError, OSError):  # pragma: no cover
            pass

    def prune(self, active_trace_ids) -> None:
        """Drop exports (and their segments) for traces not in ``active``.

        A long-lived exporter (persistent :class:`~repro.evaluation.parallel
        .ParallelRunner`) calls this after each fan-out with the ids of the
        traces that call used: exports for still-live traces are kept for
        reuse, everything else is unlinked, so looping over ever-new traces
        cannot grow /dev/shm without bound.
        """
        active = set(active_trace_ids)
        for key in [k for k in self._by_trace if k not in active]:
            _, _, segment = self._by_trace.pop(key)
            self._release_segment(segment)

    def release(self) -> None:
        """Close and unlink every shared-memory segment this exporter owns."""
        for _, _, segment in self._by_trace.values():
            self._release_segment(segment)
        self._by_trace.clear()


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #
#: descriptor -> (keep-alive handle, attached WriteTrace); per process.
_ATTACHED: "OrderedDict[TraceDescriptor, Tuple[object, WriteTrace]]" = OrderedDict()


def _attach_shm(descriptor: ShmTraceDescriptor) -> Tuple[object, WriteTrace]:
    if _shm is None:  # pragma: no cover - descriptor implies availability
        raise TraceError("shared memory is not available in this process")
    # Attaching registers the segment with the resource tracker a second
    # time; executor workers share the parent's tracker process, its cache is
    # a set, and the owning TraceExporter's unlink clears the single entry --
    # so no unregister gymnastics are needed here.
    segment = _shm.SharedMemory(name=descriptor.shm_name)
    old, new, addresses = _segment_views(
        segment.buf, descriptor.n_lines, descriptor.has_addresses
    )
    trace = WriteTrace(
        old=LineBatch(old),
        new=LineBatch(new),
        addresses=addresses,
        name=descriptor.name,
    )
    return segment, trace


def _attach_mmap(descriptor: MmapTraceDescriptor) -> Tuple[object, WriteTrace]:
    from .store import load_trace, read_trace_header

    header = read_trace_header(descriptor.path)
    if (header.n_lines, header.data_offset) != (descriptor.n_lines, descriptor.data_offset):
        raise TraceError(
            f"{descriptor.path} changed layout since it was exported "
            f"({header.n_lines} lines at offset {header.data_offset}, "
            f"expected {descriptor.n_lines} at {descriptor.data_offset})"
        )
    if descriptor.size:
        stat = Path(descriptor.path).stat()
        if (stat.st_mtime_ns, stat.st_size) != (descriptor.mtime_ns, descriptor.size):
            # Same layout but a different file version (overwritten in place
            # between export and attach) would silently evaluate wrong data.
            raise TraceError(
                f"{descriptor.path} changed since it was exported; re-export the trace"
            )
    return None, load_trace(descriptor.path, mmap=True)


def attach_trace(descriptor: TraceDescriptor) -> WriteTrace:
    """Materialise a descriptor as a (view-backed) :class:`WriteTrace`.

    Attachments are cached per process and evicted LRU, so worker processes
    map each trace once regardless of how many of its chunks they evaluate.
    """
    cached = _ATTACHED.get(descriptor)
    if cached is not None:
        _ATTACHED.move_to_end(descriptor)
        count("trace_attach", result="hit")
        return cached[1]
    count("trace_attach", result="miss")
    if isinstance(descriptor, ShmTraceDescriptor):
        handle, trace = _attach_shm(descriptor)
    elif isinstance(descriptor, MmapTraceDescriptor):
        handle, trace = _attach_mmap(descriptor)
    else:
        raise TraceError(f"unknown trace descriptor: {descriptor!r}")
    _ATTACHED[descriptor] = (handle, trace)
    while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
        old_handle, _ = _ATTACHED.popitem(last=False)[1]
        if old_handle is not None:
            try:
                old_handle.close()
            except (BufferError, OSError):  # pragma: no cover
                pass
    return trace
