"""Ingest external address traces and synthesise write contents.

Two ASCII trace dialects common in the memory-systems tooling around the
paper are supported:

``ramulator2``
    One access per line, ``R|W 0xADDR [0xSIZE]`` (the format ramulator2's
    memory-trace frontend and its trace generators exchange).  Reads are
    dropped, addresses are aligned to 64-byte memory lines, and accesses
    wider than one line are expanded into one write per touched line.

``tracehm``
    Tab-separated ``<seq> 0xADDR <is_write>`` lines (tracehm's ``tracegen``
    output) where the third hex field flags writes.

Both formats carry *addresses only* -- no data.  :func:`synthesize_write_trace`
turns such an address stream into a full (old, new) differential write trace:
line contents are drawn from a :class:`~repro.workloads.generator
.LineGenerator` seeded from the address stream itself (so the same input file
always yields the same trace), and repeated writes to an address mutate the
previously written value, preserving the reuse structure of the original
workload.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch
from ..workloads.generator import LineGenerator
from ..workloads.profiles import get_profile
from ..workloads.trace import WriteTrace

#: Memory-line size every ingested access is coalesced to.
LINE_BYTES = 64
#: Largest plausible single access (1 MiB).  A size field beyond this is a
#: corrupt/hostile trace line, not a burst write -- erroring beats expanding
#: it into billions of per-line addresses.
MAX_ACCESS_BYTES = 1 << 20
#: Trace dialects :func:`ingest_trace_file` understands.
TRACE_FORMATS = ("ramulator2", "tracehm")
#: Default content profile used to synthesise line data for address traces.
DEFAULT_SYNTHESIS_PROFILE = "gcc"


def _clean_lines(path: Path):
    try:
        fh = open(path, "r", encoding="utf-8", errors="replace")
    except OSError as exc:  # directory, permission, I/O errors
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    with fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield lineno, line


def parse_ramulator_trace(path: Union[str, Path]) -> np.ndarray:
    """Parse a ramulator2-style ASCII trace into 64B-aligned write addresses.

    Returns the ``uint64`` line addresses of every *write*, in trace order;
    reads are filtered out and accesses spanning several lines contribute one
    address per touched line.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    addresses = []
    for lineno, line in _clean_lines(path):
        parts = line.split()
        op = parts[0].upper()
        if op not in ("R", "W", "LD", "ST"):
            raise TraceError(
                f"{path}:{lineno}: expected 'R'/'W' operation, got {parts[0]!r}"
            )
        if op in ("R", "LD"):
            continue
        if len(parts) < 2:
            raise TraceError(f"{path}:{lineno}: write without an address")
        try:
            addr = int(parts[1], 16)
            size = int(parts[2], 16) if len(parts) > 2 else LINE_BYTES
        except ValueError as exc:
            raise TraceError(f"{path}:{lineno}: bad hex field: {exc}") from exc
        if size <= 0:
            size = LINE_BYTES
        if size > MAX_ACCESS_BYTES:
            raise TraceError(
                f"{path}:{lineno}: implausible access size 0x{size:X} "
                f"(max 0x{MAX_ACCESS_BYTES:X})"
            )
        if addr < 0 or addr + size > 2**64:
            raise TraceError(
                f"{path}:{lineno}: address 0x{addr:X} outside the 64-bit space"
            )
        first = addr - (addr % LINE_BYTES)
        last = (addr + size - 1) - ((addr + size - 1) % LINE_BYTES)
        for line_addr in range(first, last + LINE_BYTES, LINE_BYTES):
            addresses.append(line_addr)
    return np.asarray(addresses, dtype=np.uint64)


def parse_tracehm_trace(path: Union[str, Path]) -> np.ndarray:
    """Parse a tracehm-style ``<seq> 0xADDR <is_write>`` trace.

    Returns the 64B-aligned ``uint64`` addresses of the write accesses
    (``is_write`` truthy), in trace order.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    addresses = []
    for lineno, line in _clean_lines(path):
        parts = line.split()
        if len(parts) < 3:
            raise TraceError(
                f"{path}:{lineno}: expected '<seq> 0xADDR <is_write>', got {line!r}"
            )
        try:
            addr = int(parts[1], 16)
            is_write = int(parts[2], 16)
        except ValueError as exc:
            raise TraceError(f"{path}:{lineno}: bad field: {exc}") from exc
        if addr < 0 or addr >= 2**64:
            raise TraceError(
                f"{path}:{lineno}: address 0x{addr:X} outside the 64-bit space"
            )
        if is_write:
            addresses.append(addr - (addr % LINE_BYTES))
    return np.asarray(addresses, dtype=np.uint64)


def detect_trace_format(path: Union[str, Path]) -> str:
    """Sniff which supported dialect ``path`` uses from its first data line."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    for _, line in _clean_lines(path):
        parts = line.split()
        if parts[0].upper() in ("R", "W", "LD", "ST"):
            return "ramulator2"
        if len(parts) >= 3 and parts[0].isdigit():
            return "tracehm"
        break
    raise TraceError(
        f"cannot detect the trace format of {path}; "
        f"supported formats: {', '.join(TRACE_FORMATS)}"
    )


def _entropy_from_addresses(addresses: np.ndarray, seed: Optional[int]) -> list:
    """SeedSequence entropy derived from the address stream itself.

    Hashing the full stream means the synthesised contents are a pure
    function of the input trace (plus the optional user seed) -- re-ingesting
    the same file bit-identically reproduces the same write trace.
    """
    digest = hashlib.sha256(np.ascontiguousarray(addresses, dtype="<u8").tobytes()).digest()
    entropy = [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)]
    if seed is not None:
        entropy.insert(0, int(seed))
    return entropy


def synthesize_write_trace(
    addresses: np.ndarray,
    profile: str = DEFAULT_SYNTHESIS_PROFILE,
    name: str = "ingested",
    seed: Optional[int] = None,
) -> WriteTrace:
    """Turn an address-only write stream into a full (old, new) write trace.

    Every distinct line address gets initial content drawn from ``profile``'s
    line-type mix; the j-th write to an address mutates the value its (j-1)-th
    write stored, exactly like :class:`~repro.workloads.generator
    .TraceGenerator` models value locality.  The generator is seeded from the
    address stream (:func:`_entropy_from_addresses`), so ingestion is
    deterministic per input file.
    """
    addresses = np.asarray(addresses, dtype=np.uint64).reshape(-1)
    n = len(addresses)
    bench = get_profile(profile)
    if n == 0:
        return WriteTrace(
            old=LineBatch.zeros(0),
            new=LineBatch.zeros(0),
            addresses=addresses,
            name=name,
            metadata={"profile": bench.name, "source": "ingest"},
        )

    rng = np.random.default_rng(
        np.random.SeedSequence(_entropy_from_addresses(addresses, seed))
    )
    generator = LineGenerator(bench, rng)

    unique, inverse = np.unique(addresses, return_inverse=True)
    # Occurrence index of each request among the writes to the same address
    # (0 for the first write, 1 for the second, ...), computed vectorised via
    # a stable sort by address.
    order = np.argsort(inverse, kind="stable")
    sorted_inverse = inverse[order]
    boundaries = np.flatnonzero(np.diff(sorted_inverse)) + 1
    starts = np.concatenate([[0], boundaries])
    group_sizes = np.diff(np.concatenate([starts, [n]]))
    occurrence = np.empty(n, dtype=np.int64)
    occurrence[order] = np.arange(n) - np.repeat(starts, group_sizes)

    state, types = generator.generate_lines(len(unique))

    # One mutation plan covers all n requests: every random draw happens up
    # front, vectorised, and the chain-resolution loop below is pure array
    # plumbing.  Sharing LineGenerator.plan_mutations/apply_mutations keeps
    # ingested traces on exactly the mutation semantics of generated ones,
    # and stays fast when one hot line receives most of the writes (rounds
    # are contiguous slices of a sort by occurrence, so total work is O(n),
    # not O(n x max writes per address)).
    plan = generator.plan_mutations(n, types[inverse])

    state_words = state.words.copy()
    old_words = np.empty((n, state_words.shape[1]), dtype=np.uint64)
    new_words = np.empty_like(old_words)
    occurrence_order = np.argsort(occurrence, kind="stable")
    round_counts = np.bincount(occurrence)
    offsets = np.concatenate([[0], np.cumsum(round_counts)])
    # Round r rewrites every address receiving its (r+1)-th write; within a
    # round each address appears once, so the value updates vectorise cleanly.
    for r in range(len(round_counts)):
        idx = occurrence_order[offsets[r]:offsets[r + 1]]
        touched = inverse[idx]
        prev = state_words[touched]
        old_words[idx] = prev
        value = generator.apply_mutations(plan, prev, idx)
        state_words[touched] = value
        new_words[idx] = value
    return WriteTrace(
        old=LineBatch(old_words),
        new=LineBatch(new_words),
        addresses=addresses,
        name=name,
        metadata={
            "profile": bench.name,
            "source": "ingest",
            "unique_lines": str(len(unique)),
        },
    )


def ingest_trace_file(
    path: Union[str, Path],
    fmt: str = "auto",
    profile: str = DEFAULT_SYNTHESIS_PROFILE,
    name: Optional[str] = None,
    seed: Optional[int] = None,
) -> WriteTrace:
    """Parse an external trace file and synthesise a full write trace.

    ``fmt`` is ``"ramulator2"``, ``"tracehm"`` or ``"auto"`` (sniff from the
    first data line).  The result records the source format and file in its
    metadata.
    """
    path = Path(path)
    if fmt == "auto":
        fmt = detect_trace_format(path)
    if fmt == "ramulator2":
        addresses = parse_ramulator_trace(path)
    elif fmt == "tracehm":
        addresses = parse_tracehm_trace(path)
    else:
        raise TraceError(
            f"unknown trace format {fmt!r}; supported: {', '.join(TRACE_FORMATS)}"
        )
    trace = synthesize_write_trace(
        addresses, profile=profile, name=name or path.stem, seed=seed
    )
    trace.metadata["source_format"] = fmt
    trace.metadata["source_file"] = path.name
    return trace
