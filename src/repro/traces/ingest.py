"""Ingest external address traces and synthesise write contents -- streaming.

Three ASCII trace dialects common in the memory-systems tooling around the
paper are supported:

``ramulator2``
    One access per line, ``R|W 0xADDR [0xSIZE]`` (the format ramulator2's
    memory-trace frontend and its trace generators exchange).  Reads are
    dropped, addresses are aligned to 64-byte memory lines, and accesses
    wider than one line are expanded into one write per touched line.

``ramulator2-inst``
    Ramulator2's *instruction* trace frontend: ``<bubbles> <ld> [<st>]``
    lines, where ``bubbles`` counts non-memory instructions before the
    access, ``ld`` is a load address and the optional third field is a
    store (write-back) address.  Only lines carrying the store field
    contribute a write.

``tracehm``
    Tab-separated ``<seq> 0xADDR <is_write>`` lines (tracehm's ``tracegen``
    output) where the third hex field flags writes.

All three formats carry *addresses only* -- no data.  The synthesis layer
turns such an address stream into a full (old, new) differential write trace:
line contents are drawn from a :class:`~repro.workloads.generator
.LineGenerator`, and repeated writes to an address mutate the previously
written value, preserving the reuse structure of the original workload.

Everything in this module streams.  The parsers are generators that yield
bounded ``uint64`` address chunks instead of materialising the whole stream
in a Python list, and :class:`StreamingSynthesizer` consumes those chunks one
at a time: chunk ``k``'s random draws come from a
:class:`numpy.random.SeedSequence` seeded with the running SHA-256 digest of
the address stream *up to and including* chunk ``k`` (plus the optional user
seed and the chunk index), so the synthesised trace is still a pure function
of the input file -- re-ingesting the same file bit-identically reproduces
the same write trace -- while no more than one synthesis quantum
(:data:`SYNTHESIS_CHUNK_LINES` requests) of content ever exists at once.
The only state carried across chunks is the per-address last-written value
(plus its content type), which is exactly the information any implementation
of write-reuse chains needs: memory is bounded by the trace's *unique line
working set*, not its length.

The in-memory entry points (:func:`synthesize_write_trace`,
:func:`ingest_trace_file`) run the very same chunked algorithm and merely
concatenate its output, so the streamed and in-memory paths are bit-identical
by construction -- the property test suite asserts it end to end, including
through the parallel evaluation engine.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch
from ..core.symbols import WORDS_PER_LINE
from ..workloads.generator import LineGenerator
from ..workloads.profiles import get_profile
from ..workloads.trace import WriteTrace, rechunk_traces

#: Memory-line size every ingested access is coalesced to.
LINE_BYTES = 64
#: Largest plausible single access (1 MiB).  A size field beyond this is a
#: corrupt/hostile trace line, not a burst write -- erroring beats expanding
#: it into billions of per-line addresses.
MAX_ACCESS_BYTES = 1 << 20
#: Trace dialects :func:`ingest_trace_file` understands.
TRACE_FORMATS = ("ramulator2", "ramulator2-inst", "tracehm")
#: Default content profile used to synthesise line data for address traces.
DEFAULT_SYNTHESIS_PROFILE = "gcc"
#: Version of the content-synthesis algorithm.  Version 2 is the chunked
#: scheme described in the module docstring (one RNG stream per synthesis
#: quantum, per-address state carried across chunks); it replaced the v1
#: whole-stream algorithm, whose RNG draw order required the full trace in
#: memory.  Recorded in the metadata of every ingested trace.
SYNTHESIS_VERSION = 2
#: Requests per synthesis quantum.  This is an algorithm parameter, not a
#: tuning knob: the synthesised contents depend on it (each quantum draws
#: from its own RNG stream), so the streamed and in-memory paths share this
#: one constant to stay bit-identical.
SYNTHESIS_CHUNK_LINES = 1 << 16
#: Parsed lines buffered per parser-generator yield (amortises numpy
#: conversion; does not affect any output, unlike the synthesis quantum).
PARSE_BUFFER_LINES = 1 << 16


def _clean_lines(path: Path):
    try:
        fh = open(path, "r", encoding="utf-8", errors="replace")
    except OSError as exc:  # directory, permission, I/O errors
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    with fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield lineno, line


def _flush(buffer: List[int]) -> np.ndarray:
    chunk = np.asarray(buffer, dtype=np.uint64)
    buffer.clear()
    return chunk


def _require_file(path: Union[str, Path]) -> Path:
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    return path


# ---------------------------------------------------------------------- #
# Parser generators: ASCII trace -> bounded chunks of write-line addresses
# ---------------------------------------------------------------------- #
def iter_ramulator_addresses(
    path: Union[str, Path], buffer_lines: int = PARSE_BUFFER_LINES
) -> Iterator[np.ndarray]:
    """Stream a ramulator2-style ASCII trace as 64B-aligned write addresses.

    Yields ``uint64`` arrays of at most ``buffer_lines`` addresses (plus any
    multi-line expansion of the last access), in trace order; reads are
    filtered out and accesses spanning several lines contribute one address
    per touched line.
    """
    path = _require_file(path)
    buffer: List[int] = []
    for lineno, line in _clean_lines(path):
        parts = line.split()
        op = parts[0].upper()
        if op not in ("R", "W", "LD", "ST"):
            raise TraceError(
                f"{path}:{lineno}: expected 'R'/'W' operation, got {parts[0]!r}"
            )
        if op in ("R", "LD"):
            continue
        if len(parts) < 2:
            raise TraceError(f"{path}:{lineno}: write without an address")
        try:
            addr = int(parts[1], 16)
            size = int(parts[2], 16) if len(parts) > 2 else LINE_BYTES
        except ValueError as exc:
            raise TraceError(f"{path}:{lineno}: bad hex field: {exc}") from exc
        if size <= 0:
            size = LINE_BYTES
        if size > MAX_ACCESS_BYTES:
            raise TraceError(
                f"{path}:{lineno}: implausible access size 0x{size:X} "
                f"(max 0x{MAX_ACCESS_BYTES:X})"
            )
        if addr < 0 or addr + size > 2**64:
            raise TraceError(
                f"{path}:{lineno}: address 0x{addr:X} outside the 64-bit space"
            )
        first = addr - (addr % LINE_BYTES)
        last = (addr + size - 1) - ((addr + size - 1) % LINE_BYTES)
        for line_addr in range(first, last + LINE_BYTES, LINE_BYTES):
            buffer.append(line_addr)
        if len(buffer) >= buffer_lines:
            yield _flush(buffer)
    if buffer:
        yield _flush(buffer)


def _parse_int_field(path: Path, lineno: int, field: str) -> int:
    """Decimal or ``0x``-prefixed integer field of an instruction trace."""
    try:
        return int(field, 16) if field.lower().startswith("0x") else int(field, 10)
    except ValueError as exc:
        raise TraceError(f"{path}:{lineno}: bad integer field: {exc}") from exc


def iter_ramulator_inst_addresses(
    path: Union[str, Path], buffer_lines: int = PARSE_BUFFER_LINES
) -> Iterator[np.ndarray]:
    """Stream a ramulator2 instruction trace (``<bubbles> <ld> [<st>]``).

    Two-field lines are load-only and contribute no write; the optional
    third field is a store (write-back) address, yielded 64B-aligned.
    Fields are decimal, or hex with a ``0x`` prefix.
    """
    path = _require_file(path)
    buffer: List[int] = []
    for lineno, line in _clean_lines(path):
        parts = line.split()
        if len(parts) < 2 or len(parts) > 3:
            raise TraceError(
                f"{path}:{lineno}: expected '<bubbles> <ld> [<st>]', got {line!r}"
            )
        bubbles = _parse_int_field(path, lineno, parts[0])
        if bubbles < 0:
            raise TraceError(f"{path}:{lineno}: negative bubble count {bubbles}")
        addresses = [_parse_int_field(path, lineno, field) for field in parts[1:]]
        for value in addresses:
            if value < 0 or value >= 2**64:
                raise TraceError(
                    f"{path}:{lineno}: address 0x{value:X} outside the 64-bit space"
                )
        if len(addresses) == 2:
            store = addresses[1]
            buffer.append(store - (store % LINE_BYTES))
            if len(buffer) >= buffer_lines:
                yield _flush(buffer)
    if buffer:
        yield _flush(buffer)


def iter_tracehm_addresses(
    path: Union[str, Path], buffer_lines: int = PARSE_BUFFER_LINES
) -> Iterator[np.ndarray]:
    """Stream a tracehm-style ``<seq> 0xADDR <is_write>`` trace.

    Yields the 64B-aligned ``uint64`` addresses of the write accesses
    (``is_write`` truthy), in trace order.
    """
    path = _require_file(path)
    buffer: List[int] = []
    for lineno, line in _clean_lines(path):
        parts = line.split()
        if len(parts) < 3:
            raise TraceError(
                f"{path}:{lineno}: expected '<seq> 0xADDR <is_write>', got {line!r}"
            )
        try:
            addr = int(parts[1], 16)
            is_write = int(parts[2], 16)
        except ValueError as exc:
            raise TraceError(f"{path}:{lineno}: bad field: {exc}") from exc
        if addr < 0 or addr >= 2**64:
            raise TraceError(
                f"{path}:{lineno}: address 0x{addr:X} outside the 64-bit space"
            )
        if is_write:
            buffer.append(addr - (addr % LINE_BYTES))
            if len(buffer) >= buffer_lines:
                yield _flush(buffer)
    if buffer:
        yield _flush(buffer)


#: Dialect name -> streaming parser.
_FORMAT_PARSERS: Dict[str, Callable[..., Iterator[np.ndarray]]] = {
    "ramulator2": iter_ramulator_addresses,
    "ramulator2-inst": iter_ramulator_inst_addresses,
    "tracehm": iter_tracehm_addresses,
}


def _concat_address_chunks(chunks: Iterable[np.ndarray]) -> np.ndarray:
    parts = list(chunks)
    if not parts:
        return np.asarray([], dtype=np.uint64)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def parse_ramulator_trace(path: Union[str, Path]) -> np.ndarray:
    """Parse a ramulator2-style ASCII trace into 64B-aligned write addresses.

    Materialised convenience wrapper over :func:`iter_ramulator_addresses`.
    """
    return _concat_address_chunks(iter_ramulator_addresses(path))


def parse_ramulator_inst_trace(path: Union[str, Path]) -> np.ndarray:
    """Parse a ramulator2 instruction trace into 64B-aligned store addresses.

    Materialised convenience wrapper over
    :func:`iter_ramulator_inst_addresses`.
    """
    return _concat_address_chunks(iter_ramulator_inst_addresses(path))


def parse_tracehm_trace(path: Union[str, Path]) -> np.ndarray:
    """Parse a tracehm-style ``<seq> 0xADDR <is_write>`` trace.

    Materialised convenience wrapper over :func:`iter_tracehm_addresses`.
    """
    return _concat_address_chunks(iter_tracehm_addresses(path))


def _looks_int(field: str) -> bool:
    """Whether a field parses as the dialects' decimal-or-0x-hex integers."""
    text = field.lower()
    if text.startswith("0x"):
        text = text[2:]
        return bool(text) and all(c in "0123456789abcdef" for c in text)
    return field.isdigit()


def detect_trace_format(path: Union[str, Path]) -> str:
    """Sniff which supported dialect ``path`` uses from its first data line.

    Three-field numeric lines are inherently ambiguous between tracehm
    (``<seq> ADDR <is_write>``) and ramulator2-inst (``<bubbles> <ld> <st>``).
    Tie-breakers, in order: a third field of ``0``/``1`` (or ``0x0``/``0x1``)
    reads as a write flag (tracehm); a ``0x``-prefixed first or third field
    reads as ramulator2-inst (tracehm's sequence number and write flag are
    plain decimals in practice); a ``0x`` *address* with a bare non-flag
    third field keeps the historical tracehm interpretation; all-decimal
    lines read as ramulator2-inst.  Two integer fields are always
    ramulator2-inst (a load-only line).  Pass an explicit ``--format`` /
    ``fmt`` for files the heuristic cannot see through.
    """
    path = _require_file(path)
    for _, line in _clean_lines(path):
        parts = line.split()
        if parts[0].upper() in ("R", "W", "LD", "ST"):
            return "ramulator2"
        if _looks_int(parts[0]):
            if len(parts) == 2 and _looks_int(parts[1]):
                return "ramulator2-inst"
            if len(parts) == 3 and all(_looks_int(p) for p in parts):
                lowered = [p.lower() for p in parts]
                if lowered[2] in ("0", "1", "0x0", "0x1"):
                    return "tracehm"
                if lowered[0].startswith("0x") or lowered[2].startswith("0x"):
                    return "ramulator2-inst"
                if lowered[1].startswith("0x"):
                    return "tracehm"
                return "ramulator2-inst"
            if len(parts) >= 3 and parts[0].isdigit():
                return "tracehm"
        break
    raise TraceError(
        f"cannot detect the trace format of {path}; "
        f"supported formats: {', '.join(TRACE_FORMATS)}"
    )


def iter_trace_address_chunks(
    path: Union[str, Path],
    fmt: str = "auto",
    chunk_lines: int = SYNTHESIS_CHUNK_LINES,
) -> Iterator[np.ndarray]:
    """Stream a trace file as exactly ``chunk_lines``-sized address chunks.

    ``fmt`` is one of :data:`TRACE_FORMATS` or ``"auto"`` (sniff from the
    first data line).  The exact chunk boundaries matter: the synthesis layer
    seeds one RNG stream per chunk, so every consumer must see the same
    quanta.  The last chunk may be shorter.
    """
    path = _require_file(path)
    if fmt == "auto":
        fmt = detect_trace_format(path)
    parser = _FORMAT_PARSERS.get(fmt)
    if parser is None:
        raise TraceError(
            f"unknown trace format {fmt!r}; supported: {', '.join(TRACE_FORMATS)}"
        )
    if chunk_lines <= 0:
        raise TraceError("chunk_lines must be positive")
    pending: List[np.ndarray] = []
    buffered = 0
    for chunk in parser(path):
        pending.append(chunk)
        buffered += len(chunk)
        while buffered >= chunk_lines:
            merged = pending[0] if len(pending) == 1 else np.concatenate(pending)
            yield merged[:chunk_lines]
            rest = merged[chunk_lines:]
            pending = [rest] if len(rest) else []
            buffered = len(rest)
    if buffered:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


# ---------------------------------------------------------------------- #
# Streaming content synthesis
# ---------------------------------------------------------------------- #
def _chunk_entropy(digest: bytes, chunk_index: int, seed: Optional[int]) -> List[int]:
    """SeedSequence entropy of one synthesis quantum.

    ``digest`` is the running SHA-256 over the little-endian address stream
    up to and including this chunk, so the chunk's draws are a pure function
    of the input prefix (plus the optional user seed): re-ingesting the same
    file bit-identically reproduces the same trace, chunk by chunk.
    """
    entropy = [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)]
    entropy.append(int(chunk_index))
    if seed is not None:
        entropy.insert(0, int(seed))
    return entropy


class StreamingSynthesizer:
    """Turn an address-only write stream into (old, new) contents, chunk-wise.

    Feed the synthesis quanta of one trace in order; each :meth:`feed` call
    returns the corresponding fully synthesised :class:`WriteTrace` chunk.
    Every distinct line address gets initial content drawn from ``profile``'s
    line-type mix the first time it appears; the j-th write to an address
    mutates the value its (j-1)-th write stored (across chunk boundaries),
    exactly like :class:`~repro.workloads.generator.TraceGenerator` models
    value locality.  Mutation semantics are shared with the trace generator
    via :meth:`LineGenerator.plan_mutations` / ``apply_mutations``.

    Memory: one quantum of content plus the per-address state (last value
    and content type of every line seen so far) -- bounded by the unique
    working set, never by the trace length.
    """

    def __init__(
        self,
        profile: str = DEFAULT_SYNTHESIS_PROFILE,
        seed: Optional[int] = None,
        name: str = "ingested",
    ):
        self.profile = get_profile(profile)
        self.seed = seed
        self.name = name
        self.total_requests = 0
        self._hasher = hashlib.sha256()
        self._chunk_index = 0
        self._rows: Dict[int, int] = {}
        self._words = np.empty((0, WORDS_PER_LINE), dtype=np.uint64)
        self._types = np.empty(0, dtype=object)

    @property
    def unique_lines(self) -> int:
        """Distinct line addresses seen so far."""
        return len(self._rows)

    def metadata(self) -> Dict[str, str]:
        """Provenance metadata of the trace synthesised so far."""
        return {
            "profile": self.profile.name,
            "source": "ingest",
            "unique_lines": str(self.unique_lines),
            "synthesis_version": str(SYNTHESIS_VERSION),
        }

    def _grow_state(self, extra: int) -> None:
        needed = len(self._rows) + extra
        capacity = len(self._words)
        if needed <= capacity:
            return
        capacity = max(needed, 2 * capacity, 1024)
        words = np.zeros((capacity, WORDS_PER_LINE), dtype=np.uint64)
        words[: len(self._words)] = self._words
        types = np.empty(capacity, dtype=object)
        types[: len(self._types)] = self._types
        self._words = words
        self._types = types

    def feed(self, addresses: np.ndarray) -> WriteTrace:
        """Synthesise the next chunk of the stream and return it."""
        addresses = np.ascontiguousarray(
            np.asarray(addresses, dtype=np.uint64).reshape(-1)
        )
        n = len(addresses)
        chunk_index = self._chunk_index
        self._chunk_index += 1
        self.total_requests += n
        self._hasher.update(addresses.astype("<u8", copy=False).tobytes())
        if n == 0:
            return WriteTrace(
                old=LineBatch.zeros(0),
                new=LineBatch.zeros(0),
                addresses=addresses,
                name=self.name,
            )
        rng = np.random.default_rng(
            np.random.SeedSequence(
                _chunk_entropy(self._hasher.digest(), chunk_index, self.seed)
            )
        )
        generator = LineGenerator(self.profile, rng)

        unique, inverse = np.unique(addresses, return_inverse=True)
        rows = np.fromiter(
            (self._rows.get(int(a), -1) for a in unique),
            dtype=np.int64,
            count=len(unique),
        )
        fresh = np.flatnonzero(rows < 0)
        if len(fresh):
            state, types = generator.generate_lines(len(fresh))
            base = len(self._rows)
            self._grow_state(len(fresh))
            self._words[base:base + len(fresh)] = state.words
            self._types[base:base + len(fresh)] = types
            rows[fresh] = base + np.arange(len(fresh))
            for offset, index in enumerate(fresh):
                self._rows[int(unique[index])] = base + offset

        request_rows = rows[inverse]
        plan = generator.plan_mutations(n, self._types[request_rows])

        # Occurrence index of each request among the chunk's writes to the
        # same address (0 for the first in-chunk write, ...), vectorised via
        # a stable sort by address -- cross-chunk chains continue through the
        # persistent per-address state.
        order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[order]
        boundaries = np.flatnonzero(np.diff(sorted_inverse)) + 1
        starts = np.concatenate([[0], boundaries])
        group_sizes = np.diff(np.concatenate([starts, [n]]))
        occurrence = np.empty(n, dtype=np.int64)
        occurrence[order] = np.arange(n) - np.repeat(starts, group_sizes)

        old_words = np.empty((n, WORDS_PER_LINE), dtype=np.uint64)
        new_words = np.empty_like(old_words)
        occurrence_order = np.argsort(occurrence, kind="stable")
        round_counts = np.bincount(occurrence)
        offsets = np.concatenate([[0], np.cumsum(round_counts)])
        # Round r rewrites every address receiving its (r+1)-th in-chunk
        # write; within a round each address appears once, so the value
        # updates vectorise cleanly and total work stays O(n).
        for r in range(len(round_counts)):
            idx = occurrence_order[offsets[r]:offsets[r + 1]]
            touched = request_rows[idx]
            prev = self._words[touched]
            old_words[idx] = prev
            value = generator.apply_mutations(plan, prev, idx)
            self._words[touched] = value
            new_words[idx] = value
        return WriteTrace(
            old=LineBatch(old_words),
            new=LineBatch(new_words),
            addresses=addresses,
            name=self.name,
            metadata={"profile": self.profile.name, "source": "ingest"},
        )

    def feed_all(self, chunks: Iterable[np.ndarray]) -> Iterator[WriteTrace]:
        """Synthesise every chunk of an address-chunk iterator, in order."""
        for addresses in chunks:
            yield self.feed(addresses)


def synthesize_write_trace(
    addresses: np.ndarray,
    profile: str = DEFAULT_SYNTHESIS_PROFILE,
    name: str = "ingested",
    seed: Optional[int] = None,
    chunk_lines: int = SYNTHESIS_CHUNK_LINES,
) -> WriteTrace:
    """Turn an address-only write stream into a full (old, new) write trace.

    In-memory wrapper over :class:`StreamingSynthesizer`: the addresses are
    cut into the standard synthesis quanta and the resulting chunks are
    concatenated, so the output is bit-identical to what the streaming path
    writes for the same stream.  Only override ``chunk_lines`` to mirror a
    streaming consumer using the same non-default quantum.
    """
    addresses = np.asarray(addresses, dtype=np.uint64).reshape(-1)
    synthesizer = StreamingSynthesizer(profile=profile, seed=seed, name=name)
    if len(addresses) == 0:
        return WriteTrace(
            old=LineBatch.zeros(0),
            new=LineBatch.zeros(0),
            addresses=addresses,
            name=name,
            metadata=synthesizer.metadata(),
        )
    chunks = [
        synthesizer.feed(addresses[start:start + chunk_lines])
        for start in range(0, len(addresses), chunk_lines)
    ]
    trace = WriteTrace.concat(chunks, name=name, metadata=synthesizer.metadata())
    # concat drops per-part addresses only when absent; rebuild the exact
    # input array either way so callers see their own object semantics.
    trace.addresses = addresses
    return trace


def ingest_trace_file(
    path: Union[str, Path],
    fmt: str = "auto",
    profile: str = DEFAULT_SYNTHESIS_PROFILE,
    name: Optional[str] = None,
    seed: Optional[int] = None,
    chunk_lines: int = SYNTHESIS_CHUNK_LINES,
) -> WriteTrace:
    """Parse an external trace file and synthesise a full write trace.

    ``fmt`` is one of :data:`TRACE_FORMATS` or ``"auto"`` (sniff from the
    first data line).  The result records the source format and file in its
    metadata.  This materialises the whole trace; for traces larger than RAM
    use :func:`stream_ingest_to_wtrc` or :class:`IngestChunkSource`, which
    produce bit-identical data (given the same synthesis quantum
    ``chunk_lines``) with bounded memory.
    """
    path = Path(path)
    if fmt == "auto":
        fmt = detect_trace_format(path)
    parser = _FORMAT_PARSERS.get(fmt)
    if parser is None:
        raise TraceError(
            f"unknown trace format {fmt!r}; supported: {', '.join(TRACE_FORMATS)}"
        )
    # The parser's buffers concatenate straight into the flat array --
    # synthesize_write_trace re-cuts it into quanta itself, so routing
    # through iter_trace_address_chunks' rechunking would just add a copy.
    addresses = _concat_address_chunks(parser(path))
    trace = synthesize_write_trace(
        addresses,
        profile=profile,
        name=name or path.stem,
        seed=seed,
        chunk_lines=chunk_lines,
    )
    trace.metadata["source_format"] = fmt
    trace.metadata["source_file"] = path.name
    return trace


def stream_ingest_to_wtrc(
    path: Union[str, Path],
    out: Union[str, Path],
    fmt: str = "auto",
    profile: str = DEFAULT_SYNTHESIS_PROFILE,
    name: Optional[str] = None,
    seed: Optional[int] = None,
    chunk_lines: int = SYNTHESIS_CHUNK_LINES,
) -> Path:
    """Stream-convert an external ASCII trace straight to a ``.wtrc`` file.

    Parsing, content synthesis and the on-disk write all proceed one
    synthesis quantum at a time (see :class:`~repro.traces.store
    .TraceWriter`), so a multi-gigabyte input trace converts with peak
    memory bounded by the quantum plus the unique-line state -- the input
    never materialises.  The output file is byte-identical to saving
    :func:`ingest_trace_file`'s result with :func:`~repro.traces.store
    .save_trace`.
    """
    from .store import TraceWriter

    return _stream_ingest(TraceWriter, path, out, fmt, profile, name, seed, chunk_lines)


def stream_ingest_to_npz(
    path: Union[str, Path],
    out: Union[str, Path],
    fmt: str = "auto",
    profile: str = DEFAULT_SYNTHESIS_PROFILE,
    name: Optional[str] = None,
    seed: Optional[int] = None,
    chunk_lines: int = SYNTHESIS_CHUNK_LINES,
) -> Path:
    """Stream-convert an external ASCII trace straight to a ``.npz`` archive.

    Same pipeline as :func:`stream_ingest_to_wtrc` -- parse, synthesise and
    spool one quantum at a time -- finalised through
    :class:`~repro.traces.store.NpzTraceWriter`, which streams the spooled
    columns into the compressed archive instead of materialising the whole
    trace.  Loading the result equals loading a save of
    :func:`ingest_trace_file`'s materialised trace, array for array (the zip
    framing itself is not byte-stable across writers).
    """
    from .store import NpzTraceWriter

    return _stream_ingest(NpzTraceWriter, path, out, fmt, profile, name, seed, chunk_lines)


def _stream_ingest(
    writer_cls,
    path: Union[str, Path],
    out: Union[str, Path],
    fmt: str,
    profile: str,
    name: Optional[str],
    seed: Optional[int],
    chunk_lines: int,
) -> Path:
    path = Path(path)
    if fmt == "auto":
        fmt = detect_trace_format(path)
    synthesizer = StreamingSynthesizer(
        profile=profile, seed=seed, name=name or path.stem
    )
    # has_addresses preset: a trace with zero writes yields no chunks, but
    # the in-memory path still records an (empty) address array -- the empty
    # streamed file must say the same to stay byte-identical.
    with writer_cls(out, name=synthesizer.name, has_addresses=True) as writer:
        for chunk in synthesizer.feed_all(
            iter_trace_address_chunks(path, fmt, chunk_lines)
        ):
            writer.append(chunk)
        writer.metadata.update(synthesizer.metadata())
        writer.metadata["source_format"] = fmt
        writer.metadata["source_file"] = path.name
    return writer.path


class IngestChunkSource:
    """A :class:`~repro.workloads.trace.ChunkSource` over an ASCII trace file.

    Evaluating this source streams the file end to end -- parse, synthesise,
    evaluate -- without ever materialising the trace: each ``chunks()`` call
    re-opens the file and replays the deterministic synthesis, so the source
    is re-iterable (several work units can evaluate it) at the cost of
    re-parsing per iteration.  Chunk boundaries and contents are bit-identical
    to ``ingest_trace_file(...)``'s materialised trace cut at ``chunk_size``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fmt: str = "auto",
        profile: str = DEFAULT_SYNTHESIS_PROFILE,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        chunk_lines: int = SYNTHESIS_CHUNK_LINES,
    ):
        self.path = _require_file(path)
        self.fmt = detect_trace_format(self.path) if fmt == "auto" else fmt
        if self.fmt not in _FORMAT_PARSERS:
            raise TraceError(
                f"unknown trace format {self.fmt!r}; "
                f"supported: {', '.join(TRACE_FORMATS)}"
            )
        self.profile = profile
        self.seed = seed
        self.name = name or self.path.stem
        self.chunk_lines = chunk_lines

    def chunks(self, chunk_size: int) -> Iterator[WriteTrace]:
        synthesizer = StreamingSynthesizer(
            profile=self.profile, seed=self.seed, name=self.name
        )
        pieces = synthesizer.feed_all(
            iter_trace_address_chunks(self.path, self.fmt, self.chunk_lines)
        )
        return rechunk_traces(pieces, chunk_size)
