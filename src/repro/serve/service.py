"""``repro serve``: an asyncio HTTP/JSON front-end over the evaluation engine.

The server is deliberately zero-dependency -- a hand-rolled HTTP/1.1 layer on
:func:`asyncio.start_server` -- because the repo bakes in no web framework.
The protocol is small and documented in ``docs/serving.md``:

* ``GET  /healthz``   liveness plus basic capability info;
* ``GET  /metrics``   result-store hit/miss counters, queue occupancy and --
  when an observation session is active -- the obs registry snapshot;
* ``POST /evaluate``  one evaluation request: a scheme name, a trace
  reference (uploaded digest, corpus name, or generator specification) and
  the output-affecting config knobs;
* ``POST /traces``    a raw ``.wtrc`` upload; the response names the content
  digest later ``/evaluate`` calls reference.

Concurrency model: request handlers never block the event loop.  ``POST
/evaluate`` parses and validates, then enqueues the request on a *bounded*
:class:`asyncio.Queue` (overflow answers ``503 queue_full`` immediately --
back-pressure, not unbounded buffering).  A single drain task pops requests
and runs the blocking work -- trace resolution, store lookup, evaluation on
the :func:`~repro.evaluation.parallel.shared_runner` pool -- inside
``loop.run_in_executor``, so the loop stays responsive for health checks
while a long evaluation runs.  Identical concurrently-pending requests are
coalesced onto one future, so a thundering herd of equal requests costs one
evaluation.

Every result is memoised in the service's :class:`~repro.serve.results
.ResultStore`; repeated requests are O(one JSON read) and bit-identical to
the fresh computation, because the store round-trips the raw metric
accumulators exactly.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..coding.registry import available_schemes, make_scheme
from ..core.config import EvaluationConfig
from ..core.errors import ReproError
from ..evaluation.parallel import WorkUnit, shared_runner
from ..obs import active_session, count, span
from ..traces.store import TRACE_SUFFIX, TraceCorpus, load_trace, save_trace
from ..workloads.generator import generate_benchmark_trace
from ..workloads.trace import WriteTrace
from .results import ResultStore, metrics_to_payload, trace_content_digest

#: Largest request body accepted (covers multi-100k-line trace uploads while
#: bounding a misbehaving client's memory impact).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Default bound of the evaluation job queue.
DEFAULT_QUEUE_SIZE = 64

_JSON_HEADERS = "Content-Type: application/json\r\nConnection: close\r\n"


class ServiceError(ReproError):
    """A request is unserviceable; carries the HTTP status and error code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


def _summary_payload(metrics) -> Dict[str, float]:
    """The paper's per-request averages, derived from the raw accumulators."""
    return {
        "avg_energy_pj": metrics.avg_energy_pj,
        "avg_updated_cells": metrics.avg_updated_cells,
        "avg_disturbance_errors": metrics.avg_disturbance_errors,
        "compressed_fraction": metrics.compressed_fraction,
    }


class EvaluationService:
    """The HTTP front-end; owns the store, the job queue and the drain task.

    Parameters
    ----------
    store:
        The :class:`ResultStore` memoising results (and hosting trace
        uploads under ``<store root>/traces/``).
    n_jobs, backend:
        Worker count and pool backend of the evaluation engine; requests
        drain onto :func:`shared_runner(n_jobs, backend)
        <repro.evaluation.parallel.shared_runner>`.
    trace_dir:
        Optional :class:`~repro.traces.store.TraceCorpus` directory.
        Enables ``{"corpus": name}`` trace references and caches generated
        traces on disk across requests.
    queue_size:
        Bound of the evaluation queue; an enqueue past it answers ``503``.
    """

    def __init__(
        self,
        store: ResultStore,
        n_jobs: int = 1,
        backend: str = "process",
        trace_dir: Optional[Path] = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ):
        self.store = store
        self.n_jobs = n_jobs
        self.backend = backend
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.queue_size = queue_size
        self.port: Optional[int] = None
        self.requests = 0
        self.evaluations = 0
        self.rejected = 0
        self.started_at = time.time()
        self._queue: Optional[asyncio.Queue] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._drain_task = asyncio.create_task(self._drain())
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None

    # ------------------------------------------------------------------ #
    # HTTP layer
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except ServiceError as exc:
            status, payload = exc.status, {"error": exc.code, "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            status, payload = 500, {"error": "internal", "message": str(exc)}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  503: "Service Unavailable"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n{_JSON_HEADERS}"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> Tuple[int, Dict]:
        method, path, body = await self._read_request(reader)
        self.requests += 1
        count("serve_requests", method=method, path=path)
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/metrics" and method == "GET":
            return 200, self._metrics()
        if path == "/evaluate" and method == "POST":
            return await self._evaluate_endpoint(body)
        if path == "/traces" and method == "POST":
            return await self._upload_endpoint(body)
        if path in ("/healthz", "/metrics", "/evaluate", "/traces"):
            raise ServiceError(405, "method_not_allowed", f"{method} {path}")
        raise ServiceError(404, "not_found", f"no route for {path}")

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServiceError(400, "bad_request", "malformed request line")
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ServiceError(400, "bad_request", "bad Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise ServiceError(
                413, "body_too_large", f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "schemes": len(available_schemes()),
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self.n_jobs,
            "backend": self.backend,
        }

    def _metrics(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "store": {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "entries": len(self.store),
            },
            "queue": {
                "depth": self._queue.qsize() if self._queue is not None else 0,
                "capacity": self.queue_size,
                "rejected": self.rejected,
            },
            "requests": self.requests,
            "evaluations": self.evaluations,
        }
        session = active_session()
        if session is not None:
            payload["obs"] = session.metrics.snapshot()
        return payload

    async def _evaluate_endpoint(self, body: bytes) -> Tuple[int, Dict]:
        request = self._parse_json(body)
        # Coalesce identical concurrently-pending requests onto one future.
        dedup_key = json.dumps(request, sort_keys=True)
        future = self._inflight.get(dedup_key)
        if future is None:
            assert self._queue is not None, "start() first"
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            try:
                self._queue.put_nowait((request, future))
            except asyncio.QueueFull:
                self.rejected += 1
                count("serve_rejected")
                raise ServiceError(
                    503, "queue_full", f"evaluation queue at capacity {self.queue_size}"
                )
            self._inflight[dedup_key] = future
            future.add_done_callback(lambda _: self._inflight.pop(dedup_key, None))
        response = await asyncio.shield(future)
        return 200, response

    async def _upload_endpoint(self, body: bytes) -> Tuple[int, Dict]:
        if not body:
            raise ServiceError(400, "bad_request", "empty trace upload")
        loop = asyncio.get_running_loop()
        return 200, await loop.run_in_executor(None, self._store_upload, body)

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, "bad_json", f"request body is not JSON: {exc}")
        if not isinstance(request, dict):
            raise ServiceError(400, "bad_request", "request body must be a JSON object")
        return request

    # ------------------------------------------------------------------ #
    # Blocking work (runs in the executor, never on the loop)
    # ------------------------------------------------------------------ #
    async def _drain(self) -> None:
        """The single queue-drain task: evaluations run one at a time, in
        arrival order, each inside the default executor so the loop stays
        free.  Parallelism lives *inside* an evaluation (the shared pool),
        not across requests -- deliberately, so one store and one pool are
        never contended."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            request, future = await self._queue.get()
            try:
                result = await loop.run_in_executor(None, self._evaluate, request)
            except ServiceError as exc:
                if not future.done():
                    future.set_exception(exc)
            except Exception as exc:  # noqa: BLE001 - report, don't kill the drain
                if not future.done():
                    future.set_exception(
                        ServiceError(500, "evaluation_failed", str(exc))
                    )
            else:
                if not future.done():
                    future.set_result(result)
            finally:
                self._queue.task_done()

    def _evaluate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with span("serve_evaluate"):
            encoder = self._resolve_scheme(request)
            config = self._resolve_config(request)
            trace = self._resolve_trace(request)
            key = self.store.key_for(encoder, trace, config)
            started = time.perf_counter()
            metrics = self.store.get(key)
            cached = metrics is not None
            if metrics is None:
                runner = shared_runner(self.n_jobs, self.backend)
                metrics = runner.map(
                    [WorkUnit(key="serve", encoder=encoder, trace=trace, config=config)]
                )[0]
                self.store.put(key, metrics)
                self.evaluations += 1
            return {
                "cached": cached,
                "key": key.digest,
                "scheme": encoder.name,
                "trace_digest": key.payload["trace"],
                "requests": metrics.requests,
                "metrics": metrics_to_payload(metrics),
                "summary": _summary_payload(metrics),
                "elapsed_s": round(time.perf_counter() - started, 6),
            }

    def _resolve_scheme(self, request: Dict[str, Any]):
        name = request.get("scheme")
        if not isinstance(name, str):
            raise ServiceError(400, "bad_request", "request needs a scheme name")
        try:
            return make_scheme(name)
        except (ReproError, KeyError, ValueError) as exc:
            raise ServiceError(404, "unknown_scheme", str(exc))

    @staticmethod
    def _resolve_config(request: Dict[str, Any]) -> EvaluationConfig:
        config = request.get("config", {})
        if not isinstance(config, dict):
            raise ServiceError(400, "bad_request", "config must be a JSON object")
        known = {"chunk_size", "seed", "sample_disturbance"}
        unknown = set(config) - known
        if unknown:
            raise ServiceError(
                400,
                "bad_request",
                f"unknown config fields {sorted(unknown)} (accepted: {sorted(known)})",
            )
        try:
            return EvaluationConfig(
                chunk_size=int(config.get("chunk_size", 2048)),
                seed=int(config.get("seed", 2018)),
                sample_disturbance=bool(config.get("sample_disturbance", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, "bad_request", f"bad config value: {exc}")

    def _resolve_trace(self, request: Dict[str, Any]) -> WriteTrace:
        ref = request.get("trace")
        if not isinstance(ref, dict):
            raise ServiceError(
                400,
                "bad_request",
                "request needs a trace reference: {'digest': ...},"
                " {'corpus': ...} or {'profile': ..., 'length': ..., 'seed': ...}",
            )
        if "digest" in ref:
            path = self.uploads_dir() / f"{ref['digest']}{TRACE_SUFFIX}"
            if not path.exists():
                raise ServiceError(
                    404, "unknown_trace", f"no uploaded trace {ref['digest']!r}"
                )
            return load_trace(path)
        if "corpus" in ref:
            if self.trace_dir is None:
                raise ServiceError(
                    400, "bad_request", "server started without --trace-dir"
                )
            corpus = TraceCorpus(self.trace_dir)
            name = str(ref["corpus"])
            if name not in corpus:
                raise ServiceError(404, "unknown_trace", f"corpus has no trace {name!r}")
            return corpus.load(name)
        if "profile" in ref:
            profile = str(ref["profile"])
            try:
                length = int(ref.get("length", 20_000))
                seed = int(ref.get("seed", 2018))
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, "bad_request", f"bad trace spec: {exc}")
            try:
                if self.trace_dir is not None:
                    return TraceCorpus(self.trace_dir).get_or_generate(
                        profile, length, seed
                    )
                return generate_benchmark_trace(profile, length, seed=seed)
            except (ReproError, KeyError, ValueError) as exc:
                raise ServiceError(404, "unknown_trace", str(exc))
        raise ServiceError(
            400, "bad_request", "trace reference needs 'digest', 'corpus' or 'profile'"
        )

    # ------------------------------------------------------------------ #
    # Uploads
    # ------------------------------------------------------------------ #
    def uploads_dir(self) -> Path:
        return self.store.root / "traces"

    def _store_upload(self, body: bytes) -> Dict[str, Any]:
        """Persist an uploaded ``.wtrc`` body content-addressed by digest."""
        uploads = self.uploads_dir()
        uploads.mkdir(parents=True, exist_ok=True)
        tmp = uploads / f".upload.{os.getpid()}.{id(body):x}{TRACE_SUFFIX}"
        try:
            tmp.write_bytes(body)
            try:
                trace = load_trace(tmp, mmap=False)
            except ReproError as exc:
                raise ServiceError(400, "bad_trace", f"not a valid .wtrc file: {exc}")
            digest = trace_content_digest(trace)
            final = uploads / f"{digest}{TRACE_SUFFIX}"
            if final.exists():
                tmp.unlink()
            else:
                os.replace(tmp, final)
            count("serve_uploads")
            return {"digest": digest, "n_lines": len(trace)}
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - raced
                    pass


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
def submit_request(
    url: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    body: Optional[bytes] = None,
    timeout: float = 600.0,
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP call against a running server (the ``repro submit`` client).

    ``payload`` posts JSON; ``body`` posts raw bytes (trace uploads); neither
    issues a GET.  Returns ``(status, decoded JSON)`` -- error responses are
    returned, not raised, so the CLI can surface the server's error code.
    """
    import urllib.error
    import urllib.request

    if payload is not None and body is not None:
        raise ValueError("pass payload or body, not both")
    data = json.dumps(payload).encode("utf-8") if payload is not None else body
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=data,
        method="GET" if data is None else "POST",
        headers={
            "Content-Type": (
                "application/json" if payload is not None else "application/octet-stream"
            )
        },
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            detail = {"error": "http_error", "message": str(exc)}
        return exc.code, detail


def save_upload_body(trace: WriteTrace) -> bytes:
    """Serialise a trace to the bytes ``POST /traces`` expects."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"upload{TRACE_SUFFIX}"
        save_trace(trace, path)
        return path.read_bytes()
