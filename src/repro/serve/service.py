"""``repro serve``: an asyncio HTTP/JSON front-end over the evaluation engine.

The server is deliberately zero-dependency -- a hand-rolled HTTP/1.1 layer on
:func:`asyncio.start_server` -- because the repo bakes in no web framework.
The protocol is small and documented in ``docs/serving.md``:

* ``GET  /healthz``   liveness plus basic capability info;
* ``GET  /metrics``   result-store hit/miss counters, queue occupancy and --
  when an observation session is active -- the obs registry snapshot;
* ``POST /evaluate``  one evaluation request: a scheme name, a trace
  reference (uploaded digest, corpus name, or generator specification) and
  the output-affecting config knobs;
* ``POST /traces``    a raw ``.wtrc`` upload; the response names the content
  digest later ``/evaluate`` calls reference.

Concurrency model: request handlers never block the event loop.  ``POST
/evaluate`` parses and validates, then enqueues the request on a *bounded*
:class:`asyncio.Queue` (overflow answers ``503 queue_full`` with a
``Retry-After`` hint -- back-pressure, not unbounded buffering).  A
*supervised pool* of drain workers pops requests and runs the blocking work
-- trace resolution, store lookup, evaluation on the
:func:`~repro.evaluation.parallel.shared_runner` pool -- inside
``loop.run_in_executor``, so the loop stays responsive for health checks
while a long evaluation runs.  A drain worker that crashes is restarted by
its supervisor (counted as ``drain_restarts``); the request it was holding
is answered ``503 drain_crashed`` so its client can retry instead of
hanging.  Identical concurrently-pending requests are coalesced onto one
future, so a thundering herd of equal requests costs one evaluation.

Robustness contract (see ``docs/robustness.md``): clients may bound waiting
with a ``deadline_ms`` request field (expiry answers ``504``); every ``503``
carries ``Retry-After``; :func:`submit_request` can retry with exponential
backoff honouring it; and :meth:`EvaluationService.stop` drains gracefully
-- queued requests are flushed with ``503 shutting_down`` and the in-flight
evaluation finishes before the socket closes.

Every result is memoised in the service's :class:`~repro.serve.results
.ResultStore`; repeated requests are O(one JSON read) and bit-identical to
the fresh computation, because the store round-trips the raw metric
accumulators exactly.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import random
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..coding.registry import available_schemes, make_scheme
from ..core.config import EvaluationConfig
from ..core.errors import ReproError
from ..evaluation.parallel import WorkUnit, shared_runner
from ..faults import execute as _execute_fault
from ..faults import injected_counts as _injected_counts
from ..faults import take as _take_fault
from ..obs import active_session, count, span
from ..traces.store import TRACE_SUFFIX, TraceCorpus, load_trace, save_trace
from ..workloads.generator import generate_benchmark_trace
from ..workloads.trace import WriteTrace
from .results import ResultStore, metrics_to_payload, trace_content_digest

#: Largest request body accepted (covers multi-100k-line trace uploads while
#: bounding a misbehaving client's memory impact).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Default bound of the evaluation job queue.
DEFAULT_QUEUE_SIZE = 64

#: Default size of the supervised drain-worker pool.
DEFAULT_DRAIN_WORKERS = 1

#: ``Retry-After`` seconds suggested with back-pressure 503s.
RETRY_AFTER_S = 1

_JSON_HEADERS = "Content-Type: application/json\r\nConnection: close\r\n"

logger = logging.getLogger(__name__)


class ServiceError(ReproError):
    """A request is unserviceable; carries the HTTP status and error code.

    ``retry_after`` (seconds) is rendered as a ``Retry-After`` response
    header: the server's explicit "this is transient, come back" signal,
    honoured by :func:`submit_request`'s retry loop.
    """

    def __init__(
        self, status: int, code: str, message: str, retry_after: Optional[int] = None
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


class _DropConnection(Exception):
    """Internal: close the client's socket without any response (chaos)."""


def _summary_payload(metrics) -> Dict[str, float]:
    """The paper's per-request averages, derived from the raw accumulators."""
    return {
        "avg_energy_pj": metrics.avg_energy_pj,
        "avg_updated_cells": metrics.avg_updated_cells,
        "avg_disturbance_errors": metrics.avg_disturbance_errors,
        "compressed_fraction": metrics.compressed_fraction,
    }


class EvaluationService:
    """The HTTP front-end; owns the store, the job queue and the drain task.

    Parameters
    ----------
    store:
        The :class:`ResultStore` memoising results (and hosting trace
        uploads under ``<store root>/traces/``).
    n_jobs, backend:
        Worker count and pool backend of the evaluation engine; requests
        drain onto :func:`shared_runner(n_jobs, backend)
        <repro.evaluation.parallel.shared_runner>`.
    trace_dir:
        Optional :class:`~repro.traces.store.TraceCorpus` directory.
        Enables ``{"corpus": name}`` trace references and caches generated
        traces on disk across requests.
    queue_size:
        Bound of the evaluation queue; an enqueue past it answers ``503``.
    drain_workers:
        Size of the supervised drain pool.  The default of 1 keeps the
        historical one-evaluation-at-a-time behaviour (one store, one pool,
        never contended); more workers overlap store lookups and trace
        resolution of concurrent distinct requests.
    """

    def __init__(
        self,
        store: ResultStore,
        n_jobs: int = 1,
        backend: str = "process",
        trace_dir: Optional[Path] = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        drain_workers: int = DEFAULT_DRAIN_WORKERS,
    ):
        self.store = store
        self.n_jobs = n_jobs
        self.backend = backend
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.queue_size = queue_size
        if drain_workers < 1:
            raise ReproError(f"drain_workers must be >= 1: {drain_workers}")
        self.drain_workers = drain_workers
        self.port: Optional[int] = None
        self.requests = 0
        self.evaluations = 0
        self.rejected = 0
        self.expired = 0
        self.drain_restarts = 0
        self.started_at = time.time()
        self._evaluating = 0
        self._stopping = False
        self._queue: Optional[asyncio.Queue] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._stopping = False
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._drain_tasks = [
            asyncio.create_task(self._supervise_drain(worker_id))
            for worker_id in range(self.drain_workers)
        ]
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Shut down gracefully: refuse, flush, finish, then close.

        New connections stop being accepted first; every *queued* request is
        answered ``503 shutting_down`` (with ``Retry-After``, so a retrying
        client lands on the restarted server); the evaluations already
        in-flight on drain workers run to completion and answer normally;
        only then are the drain workers cancelled.  A client is therefore
        never left hanging on an accepted request across a restart.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._queue is not None:
            while True:
                try:
                    request, future, _deadline = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._fail_future(
                    future,
                    ServiceError(
                        503,
                        "shutting_down",
                        "server is shutting down",
                        retry_after=RETRY_AFTER_S,
                    ),
                )
                self._queue.task_done()
            # Wait for the in-flight evaluations (requests already popped by
            # drain workers) to finish and answer.
            await self._queue.join()
        for task in self._drain_tasks:
            task.cancel()
        for task in self._drain_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drain_tasks = []

    @staticmethod
    def _fail_future(future: asyncio.Future, exc: ServiceError) -> None:
        if not future.done():
            future.set_exception(exc)
            # Mark the exception retrieved even if every awaiter already
            # timed out or dropped, so no "exception was never retrieved"
            # noise reaches the log.
            future.add_done_callback(lambda f: f.exception())

    # ------------------------------------------------------------------ #
    # HTTP layer
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        extra_headers = ""
        try:
            status, payload = await self._respond(reader)
        except _DropConnection:
            # Injected connection drop: hang up without any response bytes,
            # exactly like a crashed proxy would.
            writer.close()
            return
        except ServiceError as exc:
            status, payload = exc.status, {"error": exc.code, "message": str(exc)}
            if exc.retry_after is not None:
                extra_headers = f"Retry-After: {int(exc.retry_after)}\r\n"
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            status, payload = 500, {"error": "internal", "message": str(exc)}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  503: "Service Unavailable", 504: "Gateway Timeout"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n{_JSON_HEADERS}{extra_headers}"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> Tuple[int, Dict]:
        method, path, body = await self._read_request(reader)
        self.requests += 1
        count("serve_requests", method=method, path=path)
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/metrics" and method == "GET":
            return 200, self._metrics()
        if path == "/evaluate" and method == "POST":
            action = _take_fault("evaluate")
            if action is not None and action.kind == "conn-drop":
                raise _DropConnection()
            return await self._evaluate_endpoint(body)
        if path == "/traces" and method == "POST":
            return await self._upload_endpoint(body)
        if path in ("/healthz", "/metrics", "/evaluate", "/traces"):
            raise ServiceError(405, "method_not_allowed", f"{method} {path}")
        raise ServiceError(404, "not_found", f"no route for {path}")

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServiceError(400, "bad_request", "malformed request line")
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ServiceError(400, "bad_request", "bad Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise ServiceError(
                413, "body_too_large", f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "schemes": len(available_schemes()),
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self.n_jobs,
            "backend": self.backend,
        }

    def _metrics(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "store": {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "corrupted": self.store.corrupted,
                "entries": len(self.store),
            },
            "queue": {
                "depth": self._queue.qsize() if self._queue is not None else 0,
                "capacity": self.queue_size,
                "rejected": self.rejected,
            },
            "inflight": len(self._inflight),
            "drain": {
                "workers": self.drain_workers,
                "alive": sum(1 for task in self._drain_tasks if not task.done()),
                "busy": self._evaluating,
                "restarts": self.drain_restarts,
            },
            "requests": self.requests,
            "requests_expired": self.expired,
            "evaluations": self.evaluations,
        }
        faults = _injected_counts()
        if faults:
            payload["faults_injected"] = faults
        session = active_session()
        if session is not None:
            payload["obs"] = session.metrics.snapshot()
        return payload

    async def _evaluate_endpoint(self, body: bytes) -> Tuple[int, Dict]:
        request = self._parse_json(body)
        deadline_s = self._parse_deadline(request)
        loop = asyncio.get_running_loop()
        # Coalesce identical concurrently-pending requests onto one future.
        # deadline_ms is popped by _parse_deadline first: it bounds *this
        # client's* wait, not the evaluation's identity, so requests that
        # differ only in deadline still coalesce.
        dedup_key = json.dumps(request, sort_keys=True)
        future = self._inflight.get(dedup_key)
        if future is None:
            assert self._queue is not None, "start() first"
            if self._stopping:
                raise ServiceError(
                    503,
                    "shutting_down",
                    "server is shutting down",
                    retry_after=RETRY_AFTER_S,
                )
            future = loop.create_future()
            deadline = None if deadline_s is None else loop.time() + deadline_s
            try:
                self._queue.put_nowait((request, future, deadline))
            except asyncio.QueueFull:
                self.rejected += 1
                count("serve_rejected")
                raise ServiceError(
                    503,
                    "queue_full",
                    f"evaluation queue at capacity {self.queue_size}",
                    retry_after=RETRY_AFTER_S,
                )
            self._inflight[dedup_key] = future
            future.add_done_callback(lambda _: self._inflight.pop(dedup_key, None))
        if deadline_s is None:
            return 200, await asyncio.shield(future)
        try:
            # shield: a coalesced future may have other, later-deadline
            # waiters (and the evaluation result is still worth memoising),
            # so this client giving up must not cancel the work.
            return 200, await asyncio.wait_for(asyncio.shield(future), deadline_s)
        except asyncio.TimeoutError:
            self.expired += 1
            count("requests_expired", where="endpoint")
            raise ServiceError(
                504,
                "deadline_exceeded",
                f"deadline_ms={deadline_s * 1000:g} elapsed before the result",
            )

    @staticmethod
    def _parse_deadline(request: Dict[str, Any]) -> Optional[float]:
        """Pop and validate ``deadline_ms``; seconds, or ``None`` if absent."""
        raw = request.pop("deadline_ms", None)
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except (TypeError, ValueError):
            raise ServiceError(400, "bad_request", f"bad deadline_ms: {raw!r}")
        if deadline_ms <= 0:
            raise ServiceError(400, "bad_request", "deadline_ms must be > 0")
        return deadline_ms / 1000.0

    async def _upload_endpoint(self, body: bytes) -> Tuple[int, Dict]:
        if not body:
            raise ServiceError(400, "bad_request", "empty trace upload")
        loop = asyncio.get_running_loop()
        return 200, await loop.run_in_executor(None, self._store_upload, body)

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, "bad_json", f"request body is not JSON: {exc}")
        if not isinstance(request, dict):
            raise ServiceError(400, "bad_request", "request body must be a JSON object")
        return request

    # ------------------------------------------------------------------ #
    # Blocking work (runs in the executor, never on the loop)
    # ------------------------------------------------------------------ #
    async def _supervise_drain(self, worker_id: int) -> None:
        """Keep drain worker ``worker_id`` alive: restart it whenever it
        crashes (counted as ``drain_restarts``), with a small jittered
        backoff so a deterministically crashing worker cannot spin the
        loop.  Only cancellation (server shutdown) ends the supervision."""
        while True:
            try:
                await self._drain_worker(worker_id)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - supervise, don't die
                self.drain_restarts += 1
                count("drain_restarts")
                logger.warning(
                    "drain worker %d crashed (%s: %s); restarting",
                    worker_id,
                    type(exc).__name__,
                    exc,
                )
                await asyncio.sleep(0.05 * (0.5 + random.random()))

    async def _drain_worker(self, worker_id: int) -> None:
        """One queue-drain worker: evaluations run in arrival order, each
        inside the default executor so the loop stays free.  With the
        default single worker, parallelism lives *inside* an evaluation
        (the shared pool), not across requests -- deliberately, so one
        store and one pool are never contended."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            request, future, deadline = await self._queue.get()
            action = _take_fault("drain")
            if action is not None:
                # Injected drain crash: answer the held request with a
                # retryable 503 -- a real crash-with-request-in-hand must
                # not wedge the client -- then die for the supervisor.
                self._fail_future(
                    future,
                    ServiceError(
                        503,
                        "drain_crashed",
                        "drain worker crashed while holding this request",
                        retry_after=RETRY_AFTER_S,
                    ),
                )
                self._queue.task_done()
                _execute_fault(action)
            if deadline is not None and loop.time() >= deadline:
                # Expired while queued: answering 504 without evaluating
                # keeps a backed-up queue from burning pool time on results
                # nobody is waiting for.
                self.expired += 1
                count("requests_expired", where="queue")
                self._fail_future(
                    future,
                    ServiceError(
                        504, "deadline_exceeded", "deadline elapsed while queued"
                    ),
                )
                self._queue.task_done()
                continue
            self._evaluating += 1
            try:
                result = await loop.run_in_executor(None, self._evaluate, request)
            except ServiceError as exc:
                self._fail_future(future, exc)
            except Exception as exc:  # noqa: BLE001 - report, don't kill the drain
                self._fail_future(
                    future, ServiceError(500, "evaluation_failed", str(exc))
                )
            else:
                if not future.done():
                    future.set_result(result)
            finally:
                self._evaluating -= 1
                self._queue.task_done()

    def _evaluate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with span("serve_evaluate"):
            encoder = self._resolve_scheme(request)
            config = self._resolve_config(request)
            trace = self._resolve_trace(request)
            key = self.store.key_for(encoder, trace, config)
            started = time.perf_counter()
            metrics = self.store.get(key)
            cached = metrics is not None
            if metrics is None:
                runner = shared_runner(self.n_jobs, self.backend)
                metrics = runner.map(
                    [WorkUnit(key="serve", encoder=encoder, trace=trace, config=config)]
                )[0]
                self.store.put(key, metrics)
                self.evaluations += 1
            return {
                "cached": cached,
                "key": key.digest,
                "scheme": encoder.name,
                "trace_digest": key.payload["trace"],
                "requests": metrics.requests,
                "metrics": metrics_to_payload(metrics),
                "summary": _summary_payload(metrics),
                "elapsed_s": round(time.perf_counter() - started, 6),
            }

    def _resolve_scheme(self, request: Dict[str, Any]):
        name = request.get("scheme")
        if not isinstance(name, str):
            raise ServiceError(400, "bad_request", "request needs a scheme name")
        try:
            return make_scheme(name)
        except (ReproError, KeyError, ValueError) as exc:
            raise ServiceError(404, "unknown_scheme", str(exc))

    @staticmethod
    def _resolve_config(request: Dict[str, Any]) -> EvaluationConfig:
        config = request.get("config", {})
        if not isinstance(config, dict):
            raise ServiceError(400, "bad_request", "config must be a JSON object")
        known = {"chunk_size", "seed", "sample_disturbance"}
        unknown = set(config) - known
        if unknown:
            raise ServiceError(
                400,
                "bad_request",
                f"unknown config fields {sorted(unknown)} (accepted: {sorted(known)})",
            )
        try:
            return EvaluationConfig(
                chunk_size=int(config.get("chunk_size", 2048)),
                seed=int(config.get("seed", 2018)),
                sample_disturbance=bool(config.get("sample_disturbance", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, "bad_request", f"bad config value: {exc}")

    def _resolve_trace(self, request: Dict[str, Any]) -> WriteTrace:
        ref = request.get("trace")
        if not isinstance(ref, dict):
            raise ServiceError(
                400,
                "bad_request",
                "request needs a trace reference: {'digest': ...},"
                " {'corpus': ...} or {'profile': ..., 'length': ..., 'seed': ...}",
            )
        if "digest" in ref:
            path = self.uploads_dir() / f"{ref['digest']}{TRACE_SUFFIX}"
            if not path.exists():
                raise ServiceError(
                    404, "unknown_trace", f"no uploaded trace {ref['digest']!r}"
                )
            return load_trace(path)
        if "corpus" in ref:
            if self.trace_dir is None:
                raise ServiceError(
                    400, "bad_request", "server started without --trace-dir"
                )
            corpus = TraceCorpus(self.trace_dir)
            name = str(ref["corpus"])
            if name not in corpus:
                raise ServiceError(404, "unknown_trace", f"corpus has no trace {name!r}")
            return corpus.load(name)
        if "profile" in ref:
            profile = str(ref["profile"])
            try:
                length = int(ref.get("length", 20_000))
                seed = int(ref.get("seed", 2018))
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, "bad_request", f"bad trace spec: {exc}")
            try:
                if self.trace_dir is not None:
                    return TraceCorpus(self.trace_dir).get_or_generate(
                        profile, length, seed
                    )
                return generate_benchmark_trace(profile, length, seed=seed)
            except (ReproError, KeyError, ValueError) as exc:
                raise ServiceError(404, "unknown_trace", str(exc))
        raise ServiceError(
            400, "bad_request", "trace reference needs 'digest', 'corpus' or 'profile'"
        )

    # ------------------------------------------------------------------ #
    # Uploads
    # ------------------------------------------------------------------ #
    def uploads_dir(self) -> Path:
        return self.store.root / "traces"

    def _store_upload(self, body: bytes) -> Dict[str, Any]:
        """Persist an uploaded ``.wtrc`` body content-addressed by digest."""
        uploads = self.uploads_dir()
        uploads.mkdir(parents=True, exist_ok=True)
        tmp = uploads / f".upload.{os.getpid()}.{id(body):x}{TRACE_SUFFIX}"
        try:
            tmp.write_bytes(body)
            try:
                trace = load_trace(tmp, mmap=False)
            except ReproError as exc:
                raise ServiceError(400, "bad_trace", f"not a valid .wtrc file: {exc}")
            digest = trace_content_digest(trace)
            final = uploads / f"{digest}{TRACE_SUFFIX}"
            if final.exists():
                tmp.unlink()
            else:
                os.replace(tmp, final)
            count("serve_uploads")
            return {"digest": digest, "n_lines": len(trace)}
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - raced
                    pass


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
def submit_request(
    url: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    body: Optional[bytes] = None,
    timeout: float = 600.0,
    retries: int = 0,
    backoff_s: float = 0.5,
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP call against a running server (the ``repro submit`` client).

    ``payload`` posts JSON; ``body`` posts raw bytes (trace uploads); neither
    issues a GET.  Returns ``(status, decoded JSON)`` -- error responses are
    returned, not raised, so the CLI can surface the server's error code.

    ``retries`` grants additional attempts after *transient* failures: a
    ``503`` response, a connection error (refused, reset, dropped
    mid-response -- a restarting or chaos-injected server).  The wait
    between attempts is a jittered exponential backoff
    (``backoff_s * 2**attempt``), overridden by the server's ``Retry-After``
    header when one was sent.  Non-transient statuses (400s, 500, 504)
    return immediately: retrying cannot change them.
    """
    import urllib.error
    import urllib.request

    if payload is not None and body is not None:
        raise ValueError("pass payload or body, not both")
    data = json.dumps(payload).encode("utf-8") if payload is not None else body
    attempt = 0
    while True:
        request = urllib.request.Request(
            url.rstrip("/") + path,
            data=data,
            method="GET" if data is None else "POST",
            headers={
                "Content-Type": (
                    "application/json"
                    if payload is not None
                    else "application/octet-stream"
                )
            },
        )
        retry_after: Optional[float] = None
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                detail = {"error": "http_error", "message": str(exc)}
            if exc.code != 503 or attempt >= retries:
                return exc.code, detail
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
        except (urllib.error.URLError, ConnectionError, json.JSONDecodeError) as exc:
            # Connection refused/reset or a response cut mid-body: the
            # server is restarting or the connection was chaos-dropped.
            if attempt >= retries:
                if isinstance(exc, json.JSONDecodeError):
                    return 0, {"error": "bad_response", "message": str(exc)}
                return 0, {"error": "unreachable", "message": str(exc)}
        count("submit_retries")
        wait = retry_after
        if wait is None:
            wait = backoff_s * 2**attempt * (0.5 + random.random())
        time.sleep(wait)
        attempt += 1


def save_upload_body(trace: WriteTrace) -> bytes:
    """Serialise a trace to the bytes ``POST /traces`` expects."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"upload{TRACE_SUFFIX}"
        save_trace(trace, path)
        return path.read_bytes()
