"""Evaluation-as-a-service: result memoisation and the HTTP front-end.

Two pieces, layered strictly *above* the evaluation engine:

* :mod:`repro.serve.results` -- :class:`ResultStore`, a content-addressed
  on-disk cache of evaluation metrics keyed by
  ``(trace content, scheme + params, output-affecting config,
  GENERATOR_VERSION)``.  The experiment drivers, ``repro bench run`` and the
  server all consult the same store (``--results-dir``), so identical
  requests cost one JSON read instead of an encode pass.
* :mod:`repro.serve.service` -- ``repro serve``, a zero-dependency asyncio
  HTTP/JSON front-end draining a bounded job queue into the shared worker
  pools, plus the ``repro submit`` client.

See ``docs/serving.md`` for the wire protocol and the cache-key rules.
"""

from .results import (
    RESULT_STORE_VERSION,
    ResultKey,
    ResultStore,
    ResultStoreError,
    metrics_from_payload,
    metrics_to_payload,
    result_cache_key,
    scheme_cache_key,
    trace_content_digest,
)

__all__ = [
    "RESULT_STORE_VERSION",
    "ResultKey",
    "ResultStore",
    "ResultStoreError",
    "metrics_from_payload",
    "metrics_to_payload",
    "result_cache_key",
    "scheme_cache_key",
    "trace_content_digest",
]
