"""Content-addressed result store: the memoisation layer behind ``repro serve``.

:class:`TraceCorpus` (PR 2) content-addresses *traces*; this module extends
the same idea to evaluation *results*.  A :class:`ResultStore` maps a
canonical digest of

``(trace content hash, scheme + its parameters, output-affecting
EvaluationConfig fields, GENERATOR_VERSION)``

to the eight raw accumulator fields of a
:class:`~repro.core.metrics.WriteMetrics`.  Identical evaluation requests --
the common case in CI's sharded bench matrix and in repeated figure runs --
become one JSON read instead of a full encode pass.

Cache-key semantics (see ``docs/serving.md`` for the rationale):

* the **trace** participates through a SHA-256 over its old/new line words
  (addresses, name and metadata are excluded: the evaluation metrics depend
  on line contents only);
* the **scheme** participates through its name *plus* its
  :class:`~repro.core.energy.EnergyModel` -- ``encoder.name`` alone is not
  unique (the figure-14 sensitivity sweep evaluates one scheme name under
  many energy models) -- and the :class:`~repro.core.disturbance
  .DisturbanceModel` rates;
* of :class:`~repro.core.config.EvaluationConfig`, only ``chunk_size`` and
  ``sample_disturbance`` always participate.  ``seed`` and the unit index
  join the key only when ``sample_disturbance`` is on (the deterministic
  expected-value path never draws from the RNG streams).  ``n_jobs``, pool
  backend, array backend, super-batching, fused tiling, transport and trace
  cache budgets are deliberately *excluded*: the engine proves results
  bit-identical across all of them, so entries written under one
  parallelisation serve every other;
* :data:`~repro.workloads.generator.GENERATOR_VERSION` folds in so that a
  generator change -- which redefines what a ``(profile, length, seed)``
  request means -- cannot resurrect stale results even for callers that
  address traces by specification rather than by content.

On-disk layout mirrors the trace corpus: ``index.json`` plus one
``results/<digest>.json`` record per entry, written with the same
flock-serialised read-modify-write and unique-temp-then-``os.replace``
atomicity, so concurrent CI shards can share one store directory.  Floats
round-trip through JSON via ``repr`` exactly, which is what makes store hits
*bit*-identical to fresh computation, not merely close.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..coding.base import WriteEncoder
from ..core.config import EvaluationConfig
from ..core.disturbance import DEFAULT_DISTURBANCE_MODEL, DisturbanceModel
from ..core.errors import ReproError
from ..core.metrics import WriteMetrics
from ..faults import corrupt_file as _corrupt_file
from ..faults import take as _take_fault
from ..obs import count
from ..traces.store import _atomic_write
from ..workloads.trace import WriteTrace

logger = logging.getLogger(__name__)

try:  # POSIX advisory locking for concurrent store writers (CI shards)
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    _fcntl = None

#: Version of the key derivation *and* the record layout.  Bump on any change
#: to either; old entries then miss instead of being misread.
RESULT_STORE_VERSION = 1

#: Name of the store index file.
RESULT_INDEX_NAME = "index.json"

#: Lines hashed per block when digesting a (possibly memory-mapped) trace,
#: so multi-GB corpus traces digest without materialising in RAM.
_DIGEST_BLOCK_LINES = 1 << 16


class ResultStoreError(ReproError):
    """A result-store record or index is unusable."""


# ---------------------------------------------------------------------- #
# Key derivation
# ---------------------------------------------------------------------- #
def trace_content_digest(trace: WriteTrace) -> str:
    """SHA-256 over the trace's old/new line words.

    Addresses, the trace name and metadata are excluded on purpose: the
    evaluation metrics are a pure function of line contents, so traces that
    differ only in labelling share results.  The digest is memoised on the
    trace instance -- slicing produces a new instance, which is exactly when
    the content changes.
    """
    cached = getattr(trace, "_content_digest", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(b"wtrc-content-v1")
    digest.update(len(trace).to_bytes(8, "little"))
    for words in (trace.old.words, trace.new.words):
        for start in range(0, len(words), _DIGEST_BLOCK_LINES):
            block = words[start : start + _DIGEST_BLOCK_LINES]
            digest.update(block.astype("<u8", copy=False).tobytes())
    value = digest.hexdigest()
    trace._content_digest = value  # memoised; WriteTrace is not frozen
    return value


def scheme_cache_key(encoder: WriteEncoder) -> Dict[str, Any]:
    """The scheme's contribution to the result key.

    ``encoder.name`` is canonical for every registry scheme (it already
    encodes granularity, coset counts and the endurance threshold), but it
    does *not* encode the energy model -- the figure-14 sensitivity sweep
    evaluates the same name under several -- so the model's pJ figures ride
    along explicitly.
    """
    key: Dict[str, Any] = {"scheme": encoder.name}
    model = getattr(encoder, "energy_model", None)
    if model is not None:
        key["energy"] = [model.reset_energy_pj, *model.set_energy_pj]
    return key


def result_cache_key(
    encoder: WriteEncoder,
    trace: WriteTrace,
    config: EvaluationConfig,
    disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
    unit_index: int = 0,
) -> "ResultKey":
    """Canonical key of one ``(scheme, trace, config)`` evaluation.

    Only output-affecting inputs participate -- see the module docstring for
    the full inclusion/exclusion rationale.
    """
    from ..workloads.generator import GENERATOR_VERSION

    payload: Dict[str, Any] = {
        "store_version": RESULT_STORE_VERSION,
        "generator_version": GENERATOR_VERSION,
        "trace": trace_content_digest(trace),
        "scheme": scheme_cache_key(encoder),
        "disturbance": list(disturbance_model.rates),
        "chunk_size": int(config.chunk_size),
        "sample_disturbance": bool(config.sample_disturbance),
    }
    if config.sample_disturbance:
        # Sampled error counts draw from SeedSequence streams spawned from
        # (seed, unit_index, chunk_index); both therefore shape the output.
        payload["seed"] = int(config.seed)
        payload["unit_index"] = int(unit_index)
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return ResultKey(hashlib.sha256(blob).hexdigest(), payload)


@dataclass(frozen=True)
class ResultKey:
    """A derived store key: the digest plus the payload it hashes.

    The payload is persisted inside the record for debuggability (``repro``'s
    answer to "why did this miss?") and verified on read, so a hash collision
    or a hand-edited record cannot silently serve the wrong metrics.
    """

    digest: str
    payload: Dict[str, Any]


# ---------------------------------------------------------------------- #
# Metrics (de)serialisation
# ---------------------------------------------------------------------- #
_METRIC_FIELDS = (
    "requests",
    "data_energy_pj",
    "aux_energy_pj",
    "updated_data_cells",
    "updated_aux_cells",
    "disturbance_errors",
    "compressed_lines",
    "encoded_lines",
)
_INT_METRIC_FIELDS = {"requests", "compressed_lines", "encoded_lines"}


def metrics_to_payload(metrics: WriteMetrics) -> Dict[str, Union[int, float]]:
    """The eight raw accumulator fields, JSON-serialisable and exact."""
    return {name: getattr(metrics, name) for name in _METRIC_FIELDS}


def metrics_from_payload(payload: Dict[str, Any]) -> WriteMetrics:
    """Rebuild a :class:`WriteMetrics` bit-identically from its payload."""
    kwargs: Dict[str, Union[int, float]] = {}
    for name in _METRIC_FIELDS:
        if name not in payload:
            raise ResultStoreError(f"result record missing metric field {name!r}")
        value = payload[name]
        kwargs[name] = int(value) if name in _INT_METRIC_FIELDS else float(value)
    return WriteMetrics(**kwargs)


# ---------------------------------------------------------------------- #
# The store
# ---------------------------------------------------------------------- #
class ResultStore:
    """A directory of memoised evaluation results.

    Layout::

        <root>/index.json              digest -> record file, sizes, labels
        <root>/results/<digest>.json   {"key": ..., "metrics": ...}

    :meth:`get` is lock-free (one file read keyed directly by digest);
    :meth:`put` and :meth:`gc` serialise index updates behind an flock, so
    any number of processes -- CI shards, a long-lived ``repro serve``, ad
    hoc CLI runs -- can share one store.  ``max_bytes`` turns on LRU
    eviction after every write; recency is ``max(atime, mtime)``, with
    :meth:`get` advancing the atime on each hit.
    """

    def __init__(self, root: Union[str, Path], max_bytes: Optional[int] = None):
        self.root = Path(root)
        if max_bytes is not None and max_bytes < 0:
            raise ResultStoreError("max_bytes must be non-negative")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.corrupted = 0

    # ------------------------------------------------------------------ #
    # Paths and locking
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / RESULT_INDEX_NAME

    def results_dir(self) -> Path:
        return self.root / "results"

    def corrupt_dir(self) -> Path:
        """Where quarantined (unparseable) records are moved for diagnosis."""
        return self.root / "corrupt"

    def _record_path(self, digest: str) -> Path:
        return self.results_dir() / f"{digest}.json"

    def _quarantine(self, digest: str, path: Path, reason: str) -> None:
        """Move an unparseable record aside and drop it from the index.

        Counts as a miss (the caller re-evaluates and rewrites the entry),
        but unlike a plain miss the event is loud -- ``result_store_corrupt``
        counter, warning log -- and the damaged bytes are preserved under
        :meth:`corrupt_dir` instead of being re-read (and re-failed) on
        every subsequent request.
        """
        target = self.corrupt_dir() / path.name
        try:
            self.corrupt_dir().mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:  # pragma: no cover - raced with gc/another reader
            with contextlib.suppress(OSError):
                path.unlink()
        logger.warning(
            "quarantined corrupt result record %s -> %s (%s)", path, target, reason
        )
        self.corrupted += 1
        self.misses += 1
        count("result_store_corrupt")
        count("result_store", result="miss")
        with self._index_lock():
            entries = self._read_index()
            if entries.pop(digest, None) is not None:
                self._write_index(entries)

    @contextlib.contextmanager
    def _index_lock(self):
        """Exclusive advisory lock serialising index read-modify-write."""
        if _fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".index.lock", "w") as lock:
            _fcntl.flock(lock, _fcntl.LOCK_EX)
            try:
                yield
            finally:
                _fcntl.flock(lock, _fcntl.LOCK_UN)

    def _read_index(self) -> Dict[str, Dict[str, Any]]:
        if not self.index_path.exists():
            return {}
        try:
            raw = json.loads(self.index_path.read_text())
        except json.JSONDecodeError as exc:
            raise ResultStoreError(
                f"corrupt result-store index {self.index_path}: {exc}"
            ) from exc
        return dict(raw.get("results", {}))

    def _write_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.index_path,
            "w",
            lambda fh: json.dump(
                {"version": RESULT_STORE_VERSION, "results": entries},
                fh,
                indent=2,
                sort_keys=True,
            ),
        )

    # ------------------------------------------------------------------ #
    # Key helpers
    # ------------------------------------------------------------------ #
    def key_for(
        self,
        encoder: WriteEncoder,
        trace: WriteTrace,
        config: EvaluationConfig,
        disturbance_model: DisturbanceModel = DEFAULT_DISTURBANCE_MODEL,
        unit_index: int = 0,
    ) -> ResultKey:
        return result_cache_key(encoder, trace, config, disturbance_model, unit_index)

    def unit_key(self, unit: Any, unit_index: int = 0) -> Optional[ResultKey]:
        """The key of a :class:`~repro.evaluation.parallel.WorkUnit`.

        Streaming units (a :class:`~repro.workloads.trace.ChunkSource`
        instead of a materialised trace) return ``None``: hashing them would
        require a full extra pass over a possibly larger-than-RAM stream, so
        they always evaluate fresh.
        """
        if not isinstance(unit.trace, WriteTrace):
            return None
        return self.key_for(
            unit.encoder, unit.trace, unit.config, unit.disturbance_model, unit_index
        )

    # ------------------------------------------------------------------ #
    # get / put / gc
    # ------------------------------------------------------------------ #
    def get(self, key: ResultKey) -> Optional[WriteMetrics]:
        """The memoised metrics for ``key``, or ``None`` on a miss.

        A hit advances the record's atime (the LRU recency signal) and
        verifies the stored key payload against the requested one, so a
        digest collision serves a miss rather than wrong numbers.  A record
        that exists but cannot be parsed is *quarantined* -- moved to
        ``<root>/corrupt/`` and dropped from the index, with a
        ``result_store_corrupt`` counter and a logged warning -- instead of
        silently missing forever: the next evaluation rewrites the entry,
        and the damaged bytes stay on disk for diagnosis.
        """
        path = self._record_path(key.digest)
        action = _take_fault("get")
        if action is not None and action.kind == "store-corrupt":
            _corrupt_file(path)
        try:
            record = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            count("result_store", result="miss")
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._quarantine(key.digest, path, f"invalid JSON: {exc}")
            return None
        if record.get("key") != key.payload:
            # A different key's record under this digest: a collision (or a
            # hand-edited payload), not corruption -- serve a plain miss.
            self.misses += 1
            count("result_store", result="miss")
            return None
        try:
            metrics = metrics_from_payload(record.get("metrics", {}))
        except ResultStoreError as exc:
            self._quarantine(key.digest, path, str(exc))
            return None
        try:
            stat = path.stat()
            os.utime(path, ns=(max(stat.st_atime_ns, stat.st_mtime_ns), stat.st_mtime_ns))
        except OSError:  # pragma: no cover - raced with concurrent gc
            pass
        self.hits += 1
        count("result_store", result="hit")
        return metrics

    def put(self, key: ResultKey, metrics: WriteMetrics) -> Path:
        """Persist ``metrics`` under ``key``; returns the record path.

        Idempotent: concurrent writers of the same key race benignly (both
        write identical bytes; whichever ``os.replace`` lands last wins).
        """
        path = self._record_path(key.digest)
        self.results_dir().mkdir(parents=True, exist_ok=True)
        record = {
            "version": RESULT_STORE_VERSION,
            "key": key.payload,
            "metrics": metrics_to_payload(metrics),
        }
        _atomic_write(
            path, "w", lambda fh: json.dump(record, fh, indent=2, sort_keys=True)
        )
        action = _take_fault("put")
        if action is not None and action.kind == "store-corrupt":
            _corrupt_file(path)
        entry = {
            "file": str(path.relative_to(self.root)),
            "bytes": path.stat().st_size,
            "scheme": key.payload["scheme"]["scheme"],
            "trace": key.payload["trace"],
        }
        with self._index_lock():
            entries = self._read_index()
            entries[key.digest] = entry
            self._write_index(entries)
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return path

    def gc(
        self, max_bytes: Optional[int] = None, dry_run: bool = False
    ) -> Dict[str, Any]:
        """Evict least-recently-used records until the store fits.

        Same contract as :meth:`TraceCorpus.gc`: recency is
        ``max(atime, mtime)`` (hits touch the atime), eviction is oldest
        first, and the returned report carries ``budget_bytes``, ``removed``
        (digests, oldest first), ``freed_bytes``, ``kept_bytes`` and
        ``dry_run``.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            raise ResultStoreError(
                "result-store gc needs a byte budget (constructor max_bytes "
                "or the max_bytes argument)"
            )
        if budget < 0:
            raise ResultStoreError("gc max_bytes must be non-negative")
        with self._index_lock():
            files = []
            if self.results_dir().is_dir():
                for path in self.results_dir().glob("*.json"):
                    try:
                        stat = path.stat()
                    except OSError:  # raced with a concurrent eviction
                        continue
                    recency = max(stat.st_atime_ns, stat.st_mtime_ns)
                    files.append((recency, path.stem, path, stat.st_size))
            files.sort()
            total = sum(size for _, _, _, size in files)
            removed: List[str] = []
            freed = 0
            for _, digest, path, size in files:
                if total <= budget:
                    break
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - concurrent eviction
                        continue
                removed.append(digest)
                total -= size
                freed += size
            if not dry_run and removed:
                entries = self._read_index()
                kept = {
                    digest: entry
                    for digest, entry in entries.items()
                    if digest not in removed
                }
                if kept != entries:
                    self._write_index(kept)
        return {
            "budget_bytes": int(budget),
            "removed": removed,
            "freed_bytes": int(freed),
            "kept_bytes": int(total),
            "dry_run": bool(dry_run),
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.results_dir().is_dir():
            return 0
        return sum(1 for _ in self.results_dir().glob("*.json"))

    def stats(self) -> Dict[str, int]:
        """Hit/miss/corruption counters of this store instance (process-local)."""
        return {"hits": self.hits, "misses": self.misses, "corrupted": self.corrupted}
