"""Analytical hardware-overhead model of the WLCRC encoder/decoder pipeline.

Section VI-B of the paper synthesises a Verilog implementation of WLCRC-16
with Synopsys Design Compiler against the 45 nm FreePDK library and reports
the area, delay and energy of the on-chip modules.  Synthesis tooling is not
reproducible in pure Python, so this module provides an analytical model
calibrated to those published numbers and scaled by the architecture's
structure (eight per-word encoder modules, each evaluating three coset
candidates for every data block, plus the tiny WLC compress/decompress logic).

Reference numbers (WLCRC-16, 45 nm):

=====================  ==========================
Total module area      0.0498 mm^2
Write (encode) delay   2.63 ns
Read (decode) delay    0.89 ns
Energy per line write  0.94 pJ
Energy per line read   0.27 pJ
WLC-only area          0.0002 mm^2
WLC-only delay         0.13 ns
WLC-only energy        0.0017 pJ
=====================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.errors import ConfigurationError

#: Published reference numbers for WLCRC-16 at 45 nm (Section VI-B).
REFERENCE_GRANULARITY_BITS = 16
REFERENCE_AREA_MM2 = 0.0498
REFERENCE_WRITE_DELAY_NS = 2.63
REFERENCE_READ_DELAY_NS = 0.89
REFERENCE_WRITE_ENERGY_PJ = 0.94
REFERENCE_READ_ENERGY_PJ = 0.27
REFERENCE_WLC_AREA_MM2 = 0.0002
REFERENCE_WLC_DELAY_NS = 0.13
REFERENCE_WLC_ENERGY_PJ = 0.0017

#: Typical MLC PCM array write energy per line (for overhead-percentage context).
TYPICAL_LINE_WRITE_ENERGY_PJ = 14_000.0
#: Approximate die area of a PCM chip at this node, for overhead-percentage context.
TYPICAL_PCM_DIE_AREA_MM2 = 60.0


@dataclass(frozen=True)
class SynthesisEstimate:
    """Area / delay / energy estimate of one WLCRC configuration."""

    granularity_bits: int
    encoder_modules: int
    area_mm2: float
    write_delay_ns: float
    read_delay_ns: float
    write_energy_pj: float
    read_energy_pj: float
    wlc_area_mm2: float
    wlc_delay_ns: float
    wlc_energy_pj: float

    @property
    def area_overhead_fraction(self) -> float:
        """Module area relative to a typical PCM die."""
        return self.area_mm2 / TYPICAL_PCM_DIE_AREA_MM2

    @property
    def write_energy_overhead_fraction(self) -> float:
        """Encoder energy relative to the energy of programming the cells."""
        return self.write_energy_pj / TYPICAL_LINE_WRITE_ENERGY_PJ

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the hardware-overhead benchmark table."""
        return {
            "granularity_bits": float(self.granularity_bits),
            "encoder_modules": float(self.encoder_modules),
            "area_mm2": self.area_mm2,
            "write_delay_ns": self.write_delay_ns,
            "read_delay_ns": self.read_delay_ns,
            "write_energy_pj": self.write_energy_pj,
            "read_energy_pj": self.read_energy_pj,
            "wlc_area_mm2": self.wlc_area_mm2,
            "wlc_delay_ns": self.wlc_delay_ns,
            "wlc_energy_pj": self.wlc_energy_pj,
            "area_overhead_pct": 100.0 * self.area_overhead_fraction,
            "write_energy_overhead_pct": 100.0 * self.write_energy_overhead_fraction,
        }


class WLCRCSynthesisModel:
    """Scale the published WLCRC-16 synthesis numbers to other configurations.

    The model assumes the encoder area and energy grow with the number of
    per-word data blocks (each block adds a cost evaluator per coset
    candidate), the combinational depth grows logarithmically with the number
    of blocks (the per-word cost-comparison tree), and the WLC front-end cost
    is independent of granularity.
    """

    def __init__(self, encoder_modules: int = 8, candidates: int = 3):
        if encoder_modules <= 0 or candidates <= 0:
            raise ConfigurationError("encoder_modules and candidates must be positive")
        self.encoder_modules = encoder_modules
        self.candidates = candidates

    def _block_scale(self, granularity_bits: int) -> float:
        if granularity_bits not in (8, 16, 32, 64):
            raise ConfigurationError("granularity must be 8, 16, 32 or 64 bits")
        reference_blocks = 64 // REFERENCE_GRANULARITY_BITS
        blocks = 64 // granularity_bits
        return blocks / reference_blocks

    def _depth_scale(self, granularity_bits: int) -> float:
        import math

        reference_blocks = 64 // REFERENCE_GRANULARITY_BITS
        blocks = 64 // granularity_bits
        return (1 + math.log2(max(blocks, 1))) / (1 + math.log2(reference_blocks))

    def estimate(self, granularity_bits: int = 16) -> SynthesisEstimate:
        """Estimate area / delay / energy of a WLCRC configuration."""
        block_scale = self._block_scale(granularity_bits)
        depth_scale = self._depth_scale(granularity_bits)
        module_scale = self.encoder_modules / 8
        encoder_area = (REFERENCE_AREA_MM2 - REFERENCE_WLC_AREA_MM2) * block_scale * module_scale
        encoder_write_energy = (REFERENCE_WRITE_ENERGY_PJ - REFERENCE_WLC_ENERGY_PJ) * block_scale
        encoder_read_energy = (REFERENCE_READ_ENERGY_PJ - REFERENCE_WLC_ENERGY_PJ) * block_scale
        return SynthesisEstimate(
            granularity_bits=granularity_bits,
            encoder_modules=self.encoder_modules,
            area_mm2=encoder_area + REFERENCE_WLC_AREA_MM2,
            write_delay_ns=(REFERENCE_WRITE_DELAY_NS - REFERENCE_WLC_DELAY_NS) * depth_scale
            + REFERENCE_WLC_DELAY_NS,
            read_delay_ns=(REFERENCE_READ_DELAY_NS - REFERENCE_WLC_DELAY_NS) * depth_scale
            + REFERENCE_WLC_DELAY_NS,
            write_energy_pj=encoder_write_energy + REFERENCE_WLC_ENERGY_PJ,
            read_energy_pj=encoder_read_energy + REFERENCE_WLC_ENERGY_PJ,
            wlc_area_mm2=REFERENCE_WLC_AREA_MM2,
            wlc_delay_ns=REFERENCE_WLC_DELAY_NS,
            wlc_energy_pj=REFERENCE_WLC_ENERGY_PJ,
        )

    def overhead_table(self) -> Dict[int, Dict[str, float]]:
        """Estimates for every supported granularity (hardware-overhead bench)."""
        return {g: self.estimate(g).as_dict() for g in (8, 16, 32, 64)}
