"""Analytical hardware-overhead model of the WLCRC on-chip modules."""

from .synthesis import (
    REFERENCE_AREA_MM2,
    REFERENCE_READ_DELAY_NS,
    REFERENCE_READ_ENERGY_PJ,
    REFERENCE_WRITE_DELAY_NS,
    REFERENCE_WRITE_ENERGY_PJ,
    SynthesisEstimate,
    WLCRCSynthesisModel,
)

__all__ = [
    "REFERENCE_AREA_MM2",
    "REFERENCE_READ_DELAY_NS",
    "REFERENCE_READ_ENERGY_PJ",
    "REFERENCE_WRITE_DELAY_NS",
    "REFERENCE_WRITE_ENERGY_PJ",
    "SynthesisEstimate",
    "WLCRCSynthesisModel",
]
