"""Deterministic fault injection for chaos-testing the evaluation stack.

See :mod:`repro.faults.plan` for the grammar and determinism model, and
``docs/robustness.md`` for the user-facing guide.
"""

from .plan import (
    CRASH_EXIT_CODE,
    DEFAULT_HANG_S,
    FAULTS_ENV,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    InjectedStoreCorruption,
    InjectedTransportError,
    InjectedWorkerCrash,
    TransientError,
    active_injector,
    clear,
    corrupt_file,
    execute,
    injected_counts,
    install,
    take,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_HANG_S",
    "FAULTS_ENV",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "InjectedStoreCorruption",
    "InjectedTransportError",
    "InjectedWorkerCrash",
    "TransientError",
    "active_injector",
    "clear",
    "corrupt_file",
    "execute",
    "injected_counts",
    "install",
    "take",
]
