"""Deterministic fault injection: the plan grammar and the injector.

A *fault plan* is a comma-separated list of fault specifications::

    worker-crash@task:7,worker-hang@task:12:30s,store-corrupt@put:3,conn-drop@evaluate:2

Each specification is ``<kind>@<site>:<n>[:<duration>]``:

``kind``
    What goes wrong.  ``worker-crash`` (the worker process dies hard, as an
    OOM kill would), ``worker-hang`` (the worker stalls for ``duration``),
    ``store-corrupt`` (the result-store record's bytes are scribbled over),
    ``conn-drop`` (the server closes the client's connection without a
    response), ``attach-fail`` (the zero-copy trace attachment raises a
    transient error).
``site``
    Where it goes wrong.  Each site is one instrumented code location that
    asks the injector "does this invocation fault?": ``task`` (parallel-engine
    shard dispatch), ``attach`` (trace-transport attachment, counted per
    dispatched shard), ``put`` / ``get`` (:class:`~repro.serve.results
    .ResultStore` writes/reads), ``evaluate`` (the ``repro serve`` connection
    handler for ``POST /evaluate``), ``drain`` (the service's drain workers,
    counted per drained request).
``n``
    The 1-based invocation ordinal of the site at which the fault fires --
    ``worker-crash@task:3`` kills the worker executing the third dispatched
    shard.  Each specification fires exactly once.
``duration``
    ``worker-hang`` only: how long the worker stalls (``30s``, ``250ms`` or
    a plain float of seconds; default 30s).

Determinism is the whole point: the schedule is a pure function of the plan
and the per-site invocation counters, and the sites are consulted from the
*dispatching* process in its deterministic submission order -- never from
pool workers, whose scheduling is nondeterministic.  Fired faults travel to
workers as explicit :class:`FaultAction` directives attached to the
dispatched task, so a chaos run is exactly reproducible: the same plan
against the same workload faults the same shard, every time.  Recovered
(resubmitted) work carries no directives, which is what makes each
specification one-shot even when the faulted task is retried.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..obs import count

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_HANG_S",
    "FAULTS_ENV",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "InjectedStoreCorruption",
    "InjectedTransportError",
    "InjectedWorkerCrash",
    "TransientError",
    "active_injector",
    "clear",
    "corrupt_file",
    "execute",
    "injected_counts",
    "install",
    "take",
]

#: Environment variable holding a fault plan (same grammar as
#: ``--inject-faults``); parsed lazily when no plan was installed explicitly.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status an injected ``worker-crash`` kills the worker process with.
CRASH_EXIT_CODE = 87

#: kind -> sites it may be planted at.
KIND_SITES: Dict[str, Tuple[str, ...]] = {
    "worker-crash": ("task", "drain"),
    "worker-hang": ("task",),
    "store-corrupt": ("put", "get"),
    "conn-drop": ("evaluate",),
    "attach-fail": ("attach",),
}

#: Default stall of a ``worker-hang`` with no explicit duration.
DEFAULT_HANG_S = 30.0


class FaultPlanError(ReproError):
    """A fault-plan specification cannot be parsed."""


class TransientError(ReproError):
    """A retryable task failure: the work is intact, only this attempt died.

    The parallel engine resubmits tasks failing with a :class:`TransientError`
    (bounded per-task attempts) instead of aborting the run.
    """


class InjectedFault(TransientError):
    """Base class of every deliberately injected failure."""


class InjectedWorkerCrash(InjectedFault):
    """An injected worker death, surfaced as an exception where the worker
    shares the dispatcher's process (serial path, thread backend)."""


class InjectedTransportError(InjectedFault):
    """An injected trace-transport attachment failure."""


class InjectedStoreCorruption(InjectedFault):
    """Marker raised by tests around injected store corruption."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind@site:n[:duration]`` entry of a plan."""

    kind: str
    site: str
    nth: int
    duration_s: float = 0.0

    def render(self) -> str:
        text = f"{self.kind}@{self.site}:{self.nth}"
        if self.kind == "worker-hang":
            text += f":{self.duration_s:g}s"
        return text


@dataclass(frozen=True)
class FaultAction:
    """A fired fault, shipped to the injection point as an explicit directive.

    ``parent_pid`` distinguishes "the worker is a separate process" (a crash
    may really kill it) from inline/thread execution (a crash degrades to an
    :class:`InjectedWorkerCrash` exception the engine retries).
    """

    kind: str
    duration_s: float = 0.0
    parent_pid: int = 0


def _parse_duration(text: str, spec: str) -> float:
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("ms"):
        raw, scale = raw[:-2], 1e-3
    elif raw.endswith("s"):
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise FaultPlanError(
            f"bad duration {text!r} in fault spec {spec!r} "
            "(use e.g. '30s', '250ms' or a plain float of seconds)"
        )
    if not value >= 0:
        raise FaultPlanError(f"duration must be non-negative in fault spec {spec!r}")
    return value * scale


def _parse_spec(text: str) -> FaultSpec:
    spec = text.strip()
    kind, sep, rest = spec.partition("@")
    kind = kind.strip()
    if not sep or not kind:
        raise FaultPlanError(
            f"bad fault spec {spec!r}: expected '<kind>@<site>:<n>[:<duration>]'"
        )
    if kind not in KIND_SITES:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} in {spec!r} "
            f"(known: {', '.join(sorted(KIND_SITES))})"
        )
    parts = [part.strip() for part in rest.split(":")]
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise FaultPlanError(
            f"bad fault spec {spec!r}: expected '<kind>@<site>:<n>[:<duration>]'"
        )
    site = parts[0]
    if site not in KIND_SITES[kind]:
        raise FaultPlanError(
            f"fault kind {kind!r} cannot be planted at site {site!r} "
            f"(valid sites: {', '.join(KIND_SITES[kind])})"
        )
    try:
        nth = int(parts[1])
    except ValueError:
        raise FaultPlanError(f"bad ordinal {parts[1]!r} in fault spec {spec!r}")
    if nth < 1:
        raise FaultPlanError(f"fault ordinal must be >= 1 in {spec!r}")
    duration = 0.0
    if len(parts) >= 3:
        if kind != "worker-hang":
            raise FaultPlanError(
                f"only worker-hang takes a duration (fault spec {spec!r})"
            )
        duration = _parse_duration(":".join(parts[2:]), spec)
    elif kind == "worker-hang":
        duration = DEFAULT_HANG_S
    return FaultSpec(kind=kind, site=site, nth=nth, duration_s=duration)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, parsed fault schedule."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--inject-faults`` / :data:`FAULTS_ENV` grammar."""
        specs = tuple(
            _parse_spec(part) for part in text.split(",") if part.strip()
        )
        return cls(specs=specs)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        text = os.environ.get(FAULTS_ENV)
        if not text or not text.strip():
            return None
        return cls.parse(text)

    def render(self) -> str:
        return ",".join(spec.render() for spec in self.specs)


class FaultInjector:
    """Process-local fault scheduler: per-site counters over one plan.

    ``take(site)`` advances the site's invocation counter and returns the
    :class:`FaultAction` of a spec whose ordinal just came up (consuming it),
    or ``None``.  Counting is lock-protected -- the serve drain workers and
    concurrent runner calls may share one injector -- but the determinism
    guarantee only covers single-driver runs, where sites are consulted in
    the dispatcher's serial order.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._site_counts: Dict[str, int] = {}
        self._pending: List[FaultSpec] = list(plan.specs)
        self._injected: Dict[str, int] = {}

    def take(self, site: str) -> Optional[FaultAction]:
        """Advance ``site``'s counter; the fired directive, or ``None``."""
        with self._lock:
            ordinal = self._site_counts.get(site, 0) + 1
            self._site_counts[site] = ordinal
            for index, spec in enumerate(self._pending):
                if spec.site == site and spec.nth == ordinal:
                    del self._pending[index]
                    self._injected[site] = self._injected.get(site, 0) + 1
                    count("faults_injected", site=site)
                    return FaultAction(
                        kind=spec.kind,
                        duration_s=spec.duration_s,
                        parent_pid=os.getpid(),
                    )
        return None

    def injected_counts(self) -> Dict[str, int]:
        """Faults fired so far, keyed by site (for ``/metrics`` and tests)."""
        with self._lock:
            return dict(self._injected)

    def pending(self) -> Tuple[FaultSpec, ...]:
        with self._lock:
            return tuple(self._pending)


# ---------------------------------------------------------------------- #
# Process-wide installation
# ---------------------------------------------------------------------- #
_INSTALLED: Optional[FaultInjector] = None
_ENV_CHECKED = False


def install(plan: "FaultPlan | str | None") -> Optional[FaultInjector]:
    """Install ``plan`` as the process's active injector (``None`` clears).

    Accepts a parsed :class:`FaultPlan` or the raw spec string; returns the
    injector (or ``None``).  Installing replaces any previous plan and resets
    all site counters.
    """
    global _INSTALLED, _ENV_CHECKED
    if plan is None:
        _INSTALLED = None
        _ENV_CHECKED = True  # an explicit clear also wins over the env var
        return None
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _INSTALLED = FaultInjector(plan)
    _ENV_CHECKED = True
    return _INSTALLED


def clear() -> None:
    """Remove the active injector and re-arm :data:`FAULTS_ENV` discovery."""
    global _INSTALLED, _ENV_CHECKED
    _INSTALLED = None
    _ENV_CHECKED = False


def active_injector() -> Optional[FaultInjector]:
    """The installed injector; lazily adopts :data:`FAULTS_ENV` if none is.

    The environment variable is consulted once per install/clear cycle, so a
    long-lived process does not re-parse it on every dispatch.
    """
    global _INSTALLED, _ENV_CHECKED
    if _INSTALLED is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        plan = FaultPlan.from_env()
        if plan is not None and plan.specs:
            _INSTALLED = FaultInjector(plan)
    return _INSTALLED


def take(site: str) -> Optional[FaultAction]:
    """Consult the active injector for ``site`` (``None`` when chaos is off)."""
    injector = active_injector()
    if injector is None:
        return None
    return injector.take(site)


def injected_counts() -> Dict[str, int]:
    """Fired-fault counts of the active injector (empty when chaos is off)."""
    injector = active_injector()
    if injector is None:
        return {}
    return injector.injected_counts()


def execute(action: FaultAction) -> None:
    """Carry out a directive at its injection point.

    * ``worker-crash`` in a real worker process: the process dies hard
      (``os._exit``), exactly like an OOM kill -- the parent sees a broken
      pool.  Inline or on the thread backend it raises
      :class:`InjectedWorkerCrash` instead, which the engine retries.
    * ``worker-hang``: stalls for the spec's duration; the parent's watchdog
      (``task_timeout``) is what turns the stall into a recovery.
    * ``attach-fail``: raises :class:`InjectedTransportError` (retried).
    """
    if action.kind == "worker-crash":
        if action.parent_pid and os.getpid() != action.parent_pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedWorkerCrash("injected worker crash")
    if action.kind == "worker-hang":
        time.sleep(action.duration_s)
        return
    if action.kind == "attach-fail":
        raise InjectedTransportError("injected trace-attach failure")
    raise FaultPlanError(f"directive kind {action.kind!r} has no executor")


def corrupt_file(path: "os.PathLike[str] | str") -> None:
    """Scribble over ``path`` so any later JSON read fails to parse."""
    try:
        with open(path, "wb") as fh:
            fh.write(b'{"corrupt": \x00\xff truncated')
    except OSError:
        pass
