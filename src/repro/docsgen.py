"""Generated CLI reference and the docs-tree checker.

``docs/cli.md`` is *generated* from the argparse tree (``repro docs cli``)
rather than hand-written, so it cannot drift from the real flags -- the exact
failure mode this PR cleaned out of the README.  Generation walks the parser
actions directly instead of ``format_help()``: help formatting wraps to the
terminal width (``COLUMNS``), which would make a regenerate-and-diff CI check
flap; the action walk is deterministic byte-for-byte.

``check_links`` is the zero-dependency link checker CI runs over ``docs/``:
relative links must resolve on disk and same-file anchors must match a
heading.  External ``http(s)`` links are skipped -- CI must not depend on
third-party uptime.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Subcommand groups collapsed into one section: the per-experiment aliases
#: all share ``run``'s options, so documenting each would repeat one option
#: table 16 times.
_HEADER = (
    "# CLI reference\n"
    "\n"
    "This page is generated from the argparse tree by `repro docs cli`;\n"
    "regenerate with `repro docs cli --write` (CI fails if it is stale).\n"
)


def _option_signature(action: argparse.Action) -> str:
    if action.option_strings:
        signature = ", ".join(action.option_strings)
        if action.nargs != 0 and not isinstance(
            action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
        ):
            metavar = action.metavar or action.dest.upper()
            signature += f" {metavar}"
        return signature
    return action.metavar or action.dest


def _option_rows(parser: argparse.ArgumentParser) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = []
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction, argparse._SubParsersAction)):
            continue
        help_text = " ".join((action.help or "").split())
        details = []
        if action.choices is not None:
            details.append("one of: " + ", ".join(str(c) for c in action.choices))
        if (
            action.default is not None
            and action.default is not argparse.SUPPRESS
            and action.default is not False
            and action.default != ""
        ):
            details.append(f"default: {action.default}")
        if action.required:
            details.append("required")
        if details:
            help_text = (help_text + " " if help_text else "") + f"({'; '.join(details)})"
        rows.append((_option_signature(action), help_text))
    return rows


def _subparsers_of(
    parser: argparse.ArgumentParser,
) -> Dict[str, argparse.ArgumentParser]:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            # ``choices`` maps aliases to shared parser objects; keep the
            # first name each parser appears under.
            seen: Dict[int, str] = {}
            ordered: Dict[str, argparse.ArgumentParser] = {}
            for name, sub in action.choices.items():
                if id(sub) not in seen:
                    seen[id(sub)] = name
                    ordered[name] = sub
            return ordered
    return {}


def _emit_command(
    lines: List[str],
    invocation: str,
    parser: argparse.ArgumentParser,
    depth: int,
) -> None:
    lines.append(f"{'#' * depth} `{invocation}`")
    lines.append("")
    description = " ".join((parser.description or "").split())
    if description:
        lines.append(description)
        lines.append("")
    rows = _option_rows(parser)
    if rows:
        lines.append("| option | description |")
        lines.append("| --- | --- |")
        for signature, help_text in rows:
            lines.append(f"| `{signature}` | {help_text or '—'} |")
        lines.append("")
    for name, sub in _subparsers_of(parser).items():
        _emit_command(lines, f"{invocation} {name}", sub, min(depth + 1, 6))


def generate_cli_reference(
    parser: Optional[argparse.ArgumentParser] = None,
    collapse: Optional[Iterable[str]] = None,
    collapse_title: str = "experiment commands",
) -> str:
    """The full markdown CLI reference for ``parser`` (default: the repro CLI).

    ``collapse`` names sibling top-level subcommands that share one option
    set (the per-experiment aliases); they are documented as a single group
    section instead of one near-identical section each.
    """
    if parser is None:
        from .cli import EXPERIMENTS, _build_parser

        parser = _build_parser()
        collapse = sorted(EXPERIMENTS) if collapse is None else collapse
    collapse = set(collapse or ())
    lines: List[str] = [_HEADER]
    prog = parser.prog
    description = " ".join((parser.description or "").split())
    if description:
        lines.append(description)
        lines.append("")
    top_rows = _option_rows(parser)
    if top_rows:
        lines.append("## Global options")
        lines.append("")
        lines.append("| option | description |")
        lines.append("| --- | --- |")
        for signature, help_text in top_rows:
            lines.append(f"| `{signature}` | {help_text or '—'} |")
        lines.append("")
    collapsed_example: Optional[argparse.ArgumentParser] = None
    for name, sub in _subparsers_of(parser).items():
        if name in collapse:
            if collapsed_example is None:
                collapsed_example = sub
            continue
        _emit_command(lines, f"{prog} {name}", sub, 2)
    if collapsed_example is not None:
        lines.append(f"## {collapse_title}")
        lines.append("")
        lines.append(
            "One direct alias per experiment -- equivalent to `"
            f"{prog} run <experiment>` -- all sharing the option set below:"
        )
        lines.append("")
        lines.append(
            ", ".join(f"`{prog} {name}`" for name in sorted(collapse))
        )
        lines.append("")
        rows = _option_rows(collapsed_example)
        if rows:
            lines.append("| option | description |")
            lines.append("| --- | --- |")
            for signature, help_text in rows:
                lines.append(f"| `{signature}` | {help_text or '—'} |")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------- #
# Link checking
# ---------------------------------------------------------------------- #
_LINK_RE = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _anchor_of(title: str) -> str:
    """GitHub-style heading slug (lowercase, spaces to dashes, punctuation
    dropped -- backticks included)."""
    slug = title.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors_of(text: str) -> set:
    return {_anchor_of(match.group("title")) for match in _HEADING_RE.finditer(text)}


def check_links(paths: Iterable[Path]) -> List[str]:
    """Validate every relative markdown link in ``paths``.

    Returns human-readable problem strings (empty = clean).  Checks: the
    linked file exists relative to the linking file, and a ``#fragment``
    against the *target* file's headings (same-file for bare ``#anchor``
    links).  ``http(s)``/``mailto`` links are not fetched.
    """
    problems: List[str] = []
    paths = list(paths)
    for path in paths:
        try:
            text = path.read_text()
        except OSError as exc:
            problems.append(f"{path}: unreadable ({exc})")
            continue
        searchable = _CODE_FENCE_RE.sub("", text)
        for match in _LINK_RE.finditer(searchable):
            target = match.group("target")
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                if not resolved.exists():
                    problems.append(f"{path}: broken link -> {target}")
                    continue
            else:
                resolved = path.resolve()
            if fragment and resolved.suffix == ".md":
                try:
                    anchors = _anchors_of(Path(resolved).read_text())
                except OSError:
                    continue
                if _anchor_of(fragment) not in anchors:
                    problems.append(f"{path}: broken anchor -> {target}")
    return problems
