"""Benchmark-orchestration subsystem: registry, sharding, merge and perf gate.

The paper's evaluation is reproduced by the ``bench_*`` modules under
``benchmarks/``; this package turns them from a serial pytest suite into a
distributable harness:

* :mod:`~repro.bench.registry` -- per-module :class:`BenchSpec` metadata and
  :func:`discover`;
* :mod:`~repro.bench.partition` -- deterministic cost-balanced ``K/N``
  sharding (greedy bin-packing over cache-sharing groups);
* :mod:`~repro.bench.harness` -- the artifact writers and config shared by
  the pytest path and the in-process runner;
* :mod:`~repro.bench.runner` -- run one shard in-process on a single shared
  worker pool;
* :mod:`~repro.bench.manifest` -- merge per-shard outputs into a
  deterministic ``BENCH_manifest.json`` (sharded == unsharded, byte for
  byte);
* :mod:`~repro.bench.compare` -- the perf-regression gate against
  ``benchmarks/baselines/``.

CLI: ``repro bench ls | run | merge | compare``.
"""

from .compare import CompareReport, GateCheck, compare, update_baselines
from .harness import (
    BenchmarkRecorder,
    bench_config,
    config_snapshot,
    results_dir,
    run_once,
    write_json,
    write_result,
)
from .manifest import (
    MANIFEST_NAME,
    build_manifest,
    copy_trajectory,
    merge_shards,
    write_manifest,
)
from .partition import parse_shard, partition, shard_names
from .registry import BenchSpec, DiscoveredBench, Gate, default_bench_dir, discover
from .runner import BenchOutcome, ShardReport, run_shard

__all__ = [
    "BenchOutcome",
    "BenchSpec",
    "BenchmarkRecorder",
    "CompareReport",
    "DiscoveredBench",
    "Gate",
    "GateCheck",
    "MANIFEST_NAME",
    "ShardReport",
    "bench_config",
    "build_manifest",
    "compare",
    "config_snapshot",
    "copy_trajectory",
    "default_bench_dir",
    "discover",
    "merge_shards",
    "parse_shard",
    "partition",
    "results_dir",
    "run_once",
    "run_shard",
    "shard_names",
    "update_baselines",
    "write_json",
    "write_manifest",
    "write_result",
]
