"""Shared helpers of the figure benchmarks: config, artifact writers, timing.

These used to live in ``benchmarks/conftest.py``; they moved here so the two
ways of executing a bench module share one implementation:

* under **pytest** (``pytest benchmarks -o python_files='bench_*.py' ...``)
  the ``benchmark`` argument is the pytest-benchmark fixture;
* under the **in-process shard runner** (``repro bench run``) it is the
  :class:`BenchmarkRecorder` stub below, which satisfies the same
  ``pedantic`` contract while reusing one process -- and therefore one
  :func:`repro.evaluation.shared_runner` worker pool and one experiment
  cache -- across every figure of the shard.

The results directory honours ``REPRO_BENCH_RESULTS_DIR`` so sharded runs
and tests can redirect artifacts without touching the module state.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..evaluation.experiments import ExperimentConfig
from .registry import default_bench_dir

#: Environment override of the artifact directory (default benchmarks/results).
RESULTS_DIR_ENV = "REPRO_BENCH_RESULTS_DIR"

#: Environment knobs shared by every figure benchmark.
TRACE_LEN_ENV = "REPRO_BENCH_TRACE_LEN"
RANDOM_LINES_ENV = "REPRO_BENCH_RANDOM_LINES"
SEED_ENV = "REPRO_BENCH_SEED"
JOBS_ENV = "REPRO_BENCH_JOBS"
#: Content-addressed result-store directory (``repro bench run
#: --results-dir``); empty/unset disables memoisation.
RESULTS_STORE_ENV = "REPRO_BENCH_RESULTS_STORE"


def results_dir() -> Path:
    """Directory the benchmarks write artifacts to (created lazily)."""
    override = os.environ.get(RESULTS_DIR_ENV)
    if override:
        return Path(override)
    return default_bench_dir() / "results"


def bench_config() -> ExperimentConfig:
    """Experiment configuration shared by all figure benchmarks."""
    return ExperimentConfig(
        trace_length=int(os.environ.get(TRACE_LEN_ENV, "1200")),
        random_lines=int(os.environ.get(RANDOM_LINES_ENV, "4000")),
        seed=int(os.environ.get(SEED_ENV, "2018")),
        n_jobs=int(os.environ.get(JOBS_ENV, "1")),
        results_dir=os.environ.get(RESULTS_STORE_ENV) or None,
    )


def config_snapshot(config: Optional[ExperimentConfig] = None) -> Dict[str, int]:
    """The determinism-relevant trace-generation knobs of a bench run.

    This trio fully determines the regenerated tables (the deterministic
    artifacts), so shard records carry it and the merge step requires it to
    agree across shards before stitching a manifest.
    """
    config = config if config is not None else bench_config()
    return {
        "trace_length": config.trace_length,
        "random_lines": config.random_lines,
        "seed": config.seed,
    }


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated figure/table under the results directory."""
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def write_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark result as ``BENCH_<name>.json``.

    CI uploads every ``BENCH_*.json`` under the results directory as a build
    artifact and ``bench merge`` copies the merged set to the repository
    root, so these files are the accumulating perf trajectory of the
    project; keep their schemas append-only.
    """
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark: Any, func: Callable, *args: Any, **kwargs: Any) -> Any:
    """Run an experiment exactly once under a benchmark fixture/recorder."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


class BenchmarkRecorder:
    """In-process stand-in for the pytest-benchmark fixture.

    Supports the ``pedantic`` single-round protocol the benchmarks use (the
    regenerated table is the artefact of interest, not micro-timing) and
    records the summed wall clock of the measured calls.
    """

    def __init__(self) -> None:
        self.elapsed_s = 0.0

    def pedantic(
        self,
        func: Callable,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        rounds: int = 1,
        iterations: int = 1,
    ) -> Any:
        result = None
        for _ in range(max(1, rounds) * max(1, iterations)):
            start = time.perf_counter()
            result = func(*args, **(kwargs or {}))
            self.elapsed_s += time.perf_counter() - start
        return result

    def __call__(self, func: Callable, *args: Any, **kwargs: Any) -> Any:
        return self.pedantic(func, args=args, kwargs=kwargs)
