"""Deterministic cost-balanced shard partitioning of the benchmark registry.

``--shard K/N`` splits the registered benchmarks into ``N`` disjoint shards
whose summed costs are as equal as greedy bin-packing gets them (sort the
work units by decreasing cost, always assign to the lightest shard), so
parallel CI jobs finish together instead of waiting on one long pole.

The unit of assignment is the *group*, not the module: benches sharing an
in-process evaluation cache (Figures 8/9/10 read three metrics of one
evaluation; Figures 11/12/13 share one granularity sweep) declare a common
``BenchSpec.group`` and always land in the same shard, where name-ordered
execution lets the first member prime the cache for the rest.  Ties break on
the group name and then the lowest shard index, so the partition is a pure
function of the registry: every bench lands in exactly one shard, and every
invocation -- any machine, any process -- computes the same split.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.errors import BenchError
from .registry import BenchSpec, DiscoveredBench

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``K/N`` shard selector into ``(index, count)`` (1-based)."""
    match = _SHARD_RE.match(text.strip())
    if not match:
        raise BenchError(f"invalid shard selector {text!r}; expected K/N, e.g. 2/4")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise BenchError(
            f"invalid shard selector {text!r}: need 1 <= K <= N, got K={index} N={count}"
        )
    return index, count


def partition(registry: Mapping[str, DiscoveredBench], n_shards: int) -> List[List[str]]:
    """Split the registry into ``n_shards`` cost-balanced shards.

    Returns a list of ``n_shards`` name lists (some possibly empty when there
    are more shards than groups); each shard is sorted by bench name so that
    grouped benches run cache-primer first.
    """
    if n_shards < 1:
        raise BenchError(f"shard count must be >= 1, got {n_shards}")
    groups: Dict[str, List[BenchSpec]] = {}
    for bench in registry.values():
        groups.setdefault(bench.spec.group, []).append(bench.spec)
    # Heaviest group first; name tie-break keeps the order total.
    ordered = sorted(
        groups.items(),
        key=lambda item: (-sum(spec.cost for spec in item[1]), item[0]),
    )
    loads = [0.0] * n_shards
    shards: List[List[str]] = [[] for _ in range(n_shards)]
    for _name, specs in ordered:
        lightest = min(range(n_shards), key=lambda i: (loads[i], i))
        shards[lightest].extend(spec.name for spec in specs)
        loads[lightest] += sum(spec.cost for spec in specs)
    return [sorted(shard) for shard in shards]


def shard_names(registry: Mapping[str, DiscoveredBench], index: int, count: int) -> Sequence[str]:
    """The bench names of shard ``index`` (1-based) out of ``count``."""
    if not 1 <= index <= count:
        raise BenchError(f"shard index {index} out of range 1..{count}")
    return partition(registry, count)[index - 1]
