"""Perf-regression gate: diff current ``BENCH_*.json`` metrics vs baselines.

The gate policy lives in the registry (each :class:`~.registry.BenchSpec`
declares :class:`~.registry.Gate` entries naming a metric, a good direction
and a tolerance); the reference *values* live in small JSON files under
``benchmarks/baselines/``, one per bench, checked into the repository.
``repro bench compare`` re-reads the current results, extracts every gated
metric and fails (exit 1) when any metric regresses past its tolerance --
the CI job that runs after ``bench merge`` is what keeps the perf wins of
the parallel engine, the zero-copy transport and the streaming ingest from
silently rotting.

``--update`` rewrites the baseline files from the current results (run it
locally with the CI environment knobs after an intentional perf change).
Baselines are compared only when their recorded *context* (input sizes and
other shape knobs) matches the current run; a mismatch skips the gate with
a warning, because comparing a 60k-line run to a 400k-line baseline would
be noise, not signal.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..core.errors import BenchError
from .registry import BenchSpec, Gate

logger = logging.getLogger(__name__)

#: Schema marker of the baseline files.
BASELINE_SCHEMA = 1

#: Gate states.  ``regression``, ``missing-result`` and ``missing-metric``
#: always fail the gate; ``missing-baseline`` and ``context-mismatch`` only
#: warn unless strict mode is on.  For *optional* gates (metrics that only
#: exist when an optional dependency like numba or cupy is installed) a
#: missing metric or missing baseline warns instead of failing, even under
#: ``--strict`` -- a runner without the extra must not trip the perf gate.
OK = "ok"
REGRESSION = "regression"
MISSING_BASELINE = "missing-baseline"
MISSING_RESULT = "missing-result"
MISSING_METRIC = "missing-metric"
CONTEXT_MISMATCH = "context-mismatch"


@dataclass
class GateCheck:
    """The outcome of one gate comparison."""

    bench: str
    artifact: str
    metric: str
    direction: str
    tolerance_pct: float
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    detail: str = ""
    optional: bool = False

    @property
    def change_pct(self) -> Optional[float]:
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return 100.0 * (self.current - self.baseline) / self.baseline

    def as_dict(self) -> dict:
        return {
            "bench": self.bench,
            "artifact": self.artifact,
            "metric": self.metric,
            "direction": self.direction,
            "tolerance_pct": self.tolerance_pct,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "change_pct": self.change_pct,
            "detail": self.detail,
            "optional": self.optional,
        }


@dataclass
class CompareReport:
    """All gate outcomes of one ``bench compare`` invocation."""

    checks: List[GateCheck]
    strict: bool = False

    @property
    def failures(self) -> List[GateCheck]:
        failing = {REGRESSION, MISSING_RESULT, MISSING_METRIC}
        if self.strict:
            failing |= {MISSING_BASELINE, CONTEXT_MISMATCH}
        # Optional gates (metrics behind an optional dependency) never fail on
        # absence -- only on an actual regression of a value that is present.
        soft_when_optional = {MISSING_METRIC, MISSING_BASELINE, MISSING_RESULT}
        return [
            check
            for check in self.checks
            if check.status in failing
            and not (check.optional and check.status in soft_when_optional)
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "strict": self.strict,
            "checks": [check.as_dict() for check in self.checks],
        }


def baseline_path(baselines_dir: Path, bench_name: str) -> Path:
    return Path(baselines_dir) / f"{bench_name}.json"


def extract_metric(payload: Mapping, dotted: str) -> Optional[float]:
    """Resolve a dotted path into a JSON payload; None when absent/non-numeric."""
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return None
        value = value[part]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _load_artifact(results_dir: Path, artifact: str) -> Optional[Mapping]:
    path = results_dir / artifact
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise BenchError(f"cannot parse benchmark artifact {path}: {exc}")
    return payload if isinstance(payload, Mapping) else None


def _within_tolerance(gate: Gate, baseline: float, current: float) -> bool:
    allowance = gate.tolerance_pct / 100.0
    if gate.direction == "lower":
        return current <= baseline * (1.0 + allowance)
    return current >= baseline * (1.0 - allowance)


def _gate_context(gates: List[Gate], artifact: str, payload: Mapping) -> Dict[str, object]:
    keys = sorted({key for gate in gates if gate.artifact == artifact for key in gate.context})
    return {key: payload.get(key) for key in keys}


def update_baselines(
    specs: Mapping[str, BenchSpec], results_dir: Path, baselines_dir: Path
) -> List[Path]:
    """Rewrite the baseline files of every gated bench from current results."""
    baselines_dir = Path(baselines_dir)
    baselines_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in sorted(specs):
        spec = specs[name]
        if not spec.gates:
            continue
        metrics: Dict[str, Dict[str, float]] = {}
        context: Dict[str, Dict[str, object]] = {}
        for gate in spec.gates:
            payload = _load_artifact(Path(results_dir), gate.artifact)
            if payload is None:
                if gate.optional:
                    logger.warning(
                        "bench %r: optional artifact %r missing; baseline not updated",
                        name,
                        gate.artifact,
                    )
                    continue
                raise BenchError(
                    f"bench {name!r}: cannot update baseline, artifact "
                    f"{gate.artifact!r} missing from {results_dir}"
                )
            value = extract_metric(payload, gate.metric)
            if value is None:
                if gate.optional:
                    logger.warning(
                        "bench %r: optional metric %r absent from %r; baseline not updated",
                        name,
                        gate.metric,
                        gate.artifact,
                    )
                    continue
                raise BenchError(
                    f"bench {name!r}: metric {gate.metric!r} not found in "
                    f"{gate.artifact!r}"
                )
            metrics.setdefault(gate.artifact, {})[gate.metric] = value
            context[gate.artifact] = _gate_context(list(spec.gates), gate.artifact, payload)
        path = baseline_path(baselines_dir, name)
        payload = {
            "schema": BASELINE_SCHEMA,
            "bench": name,
            "context": context,
            "metrics": metrics,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def compare(
    specs: Mapping[str, BenchSpec],
    results_dir: Path,
    baselines_dir: Path,
    strict: bool = False,
) -> CompareReport:
    """Check every registered gate against the checked-in baselines."""
    results_dir = Path(results_dir)
    baselines_dir = Path(baselines_dir)
    checks: List[GateCheck] = []
    for name in sorted(specs):
        spec = specs[name]
        if not spec.gates:
            continue
        base_file = baseline_path(baselines_dir, name)
        baseline: Optional[Mapping] = None
        if base_file.is_file():
            try:
                baseline = json.loads(base_file.read_text())
            except ValueError as exc:
                raise BenchError(f"cannot parse baseline {base_file}: {exc}")
        for gate in spec.gates:
            check = GateCheck(
                bench=name,
                artifact=gate.artifact,
                metric=gate.metric,
                direction=gate.direction,
                tolerance_pct=gate.tolerance_pct,
                status=OK,
                optional=gate.optional,
            )
            checks.append(check)
            if baseline is None:
                check.status = MISSING_BASELINE
                check.detail = f"no baseline file {base_file.name}; run compare --update"
                continue
            payload = _load_artifact(results_dir, gate.artifact)
            if payload is None:
                check.status = MISSING_RESULT
                check.detail = f"artifact {gate.artifact} missing from {results_dir}"
                continue
            check.current = extract_metric(payload, gate.metric)
            if check.current is None:
                check.status = MISSING_METRIC
                check.detail = f"metric {gate.metric!r} absent from {gate.artifact}"
                continue
            recorded = (baseline.get("context") or {}).get(gate.artifact, {})
            current_context = _gate_context(list(spec.gates), gate.artifact, payload)
            if recorded != current_context:
                check.status = CONTEXT_MISMATCH
                check.detail = (
                    f"baseline context {recorded} != current {current_context}; "
                    "re-record with compare --update"
                )
                continue
            recorded_metrics = (baseline.get("metrics") or {}).get(gate.artifact) or {}
            raw = recorded_metrics.get(gate.metric)
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                check.baseline = float(raw)
            if check.baseline is None:
                check.status = MISSING_BASELINE
                check.detail = (
                    f"baseline has no value for {gate.metric!r}; "
                    "run compare --update"
                )
                continue
            if not _within_tolerance(gate, check.baseline, check.current):
                check.status = REGRESSION
                worse = "above" if gate.direction == "lower" else "below"
                check.detail = (
                    f"{check.current:g} is more than {gate.tolerance_pct:g}% "
                    f"{worse} baseline {check.baseline:g}"
                )
    return CompareReport(checks=checks, strict=strict)
