"""In-process shard runner: execute a cost-balanced slice of the benchmarks.

``repro bench run --shard K/N`` discovers the registry, takes shard ``K`` of
the deterministic partition, and calls every bench function of the shard
directly in this process -- no pytest collection, and crucially no
per-module worker-pool start-up: the experiment drivers all fan out through
:func:`repro.evaluation.shared_runner`, so one persistent pool (and one
experiment result cache) serves every figure of the shard.

Each run writes a shard record ``BENCH_shard_<K>of<N>.json`` with per-bench
wall clocks and the trace-generation config; ``bench merge`` later stitches
the records and artifacts of all shards into ``BENCH_manifest.json``.  An
unsharded run (``--shard 1/1``, the default) writes the manifest itself,
byte-identical to what merging any sharded split produces.
"""

from __future__ import annotations

import inspect
import json
import os
import shutil
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.errors import BenchError
from ..evaluation.experiments import ExperimentConfig
from ..obs import observation, profile_summary, span, write_session
from . import harness
from .registry import DiscoveredBench, discover
from .partition import shard_names

#: Name pattern of the per-shard run records.
SHARD_RECORD_TEMPLATE = "BENCH_shard_{index}of{count}.json"

#: Name pattern of the per-shard span logs (``.jsonl`` deliberately: the
#: ``BENCH_*.json`` globs of manifest/trajectory code must not pick these up).
SHARD_TRACE_TEMPLATE = "BENCH_shard_{index}of{count}.trace.jsonl"


class _TmpPathFactory:
    """Minimal stand-in for pytest's ``tmp_path_factory`` fixture."""

    def __init__(self, root: Path) -> None:
        self._root = root
        self._counter = 0

    def mktemp(self, basename: str, numbered: bool = True) -> Path:
        name = f"{basename}{self._counter}" if numbered else basename
        self._counter += 1
        path = self._root / name
        path.mkdir(parents=True, exist_ok=False)
        return path


@dataclass
class BenchOutcome:
    """What happened to one bench module during a shard run."""

    name: str
    module: str
    status: str = "passed"
    error: str = ""
    functions: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_clock_s(self) -> float:
        return sum(self.functions.values())


@dataclass
class ShardReport:
    """The result of :func:`run_shard`."""

    index: int
    count: int
    names: List[str]
    outcomes: List[BenchOutcome]
    config: Dict[str, int]
    record_path: Optional[Path] = None
    manifest_path: Optional[Path] = None
    profile: Optional[dict] = None
    trace_path: Optional[Path] = None

    @property
    def failures(self) -> List[BenchOutcome]:
        return [outcome for outcome in self.outcomes if outcome.status != "passed"]

    @property
    def wall_clock_s(self) -> float:
        return sum(outcome.wall_clock_s for outcome in self.outcomes)

    def as_dict(self) -> dict:
        payload = {
            "schema": 1,
            "shard": {"index": self.index, "count": self.count},
            "config": dict(self.config),
            "benches": {
                outcome.name: {
                    "module": outcome.module,
                    "status": outcome.status,
                    "functions": {
                        name: round(seconds, 6)
                        for name, seconds in outcome.functions.items()
                    },
                    "wall_clock_s": round(outcome.wall_clock_s, 6),
                }
                for outcome in self.outcomes
            },
            "wall_clock_s": round(self.wall_clock_s, 6),
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload


def _resolve_fixtures(
    function, config: ExperimentConfig, tmp_factory: _TmpPathFactory
) -> Tuple[harness.BenchmarkRecorder, dict]:
    """Build the fixture arguments a bench function asks for by name."""
    recorder = harness.BenchmarkRecorder()
    available = {
        "benchmark": recorder,
        "experiment_config": config,
        "tmp_path_factory": tmp_factory,
    }
    kwargs = {}
    for parameter in inspect.signature(function).parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.name not in available:
            raise BenchError(
                f"bench function {function.__name__!r} requests unsupported "
                f"fixture {parameter.name!r} (have: {', '.join(sorted(available))})"
            )
        kwargs[parameter.name] = available[parameter.name]
    return recorder, kwargs


def _run_bench(
    bench: DiscoveredBench,
    config: ExperimentConfig,
    results: Path,
    tmp_factory: _TmpPathFactory,
) -> BenchOutcome:
    outcome = BenchOutcome(name=bench.name, module=bench.spec.module)
    # Drop stale copies first: in a reused results directory a bench that
    # silently stopped writing a declared artifact must fail the check below
    # rather than pass against (and checksum) last run's file.
    for artifact in bench.spec.all_artifacts:
        try:
            (results / artifact).unlink()
        except FileNotFoundError:
            pass
    for function_name, function in bench.functions:
        try:
            recorder, kwargs = _resolve_fixtures(function, config, tmp_factory)
            with span("bench_function", bench=bench.name, function=function_name):
                function(**kwargs)
            outcome.functions[function_name] = recorder.elapsed_s
        except Exception:
            outcome.status = "failed"
            outcome.error = traceback.format_exc()
            return outcome
    missing = [
        artifact
        for artifact in bench.spec.all_artifacts
        if not (results / artifact).is_file()
    ]
    if missing:
        outcome.status = "failed"
        outcome.error = (
            f"bench {bench.name!r} did not produce declared artifact(s): "
            + ", ".join(missing)
        )
    return outcome


def run_shard(
    bench_dir: Optional[Path] = None,
    shard: Tuple[int, int] = (1, 1),
    results_dir: Optional[Path] = None,
    jobs: Optional[int] = None,
    registry: Optional[Mapping[str, DiscoveredBench]] = None,
    profile: bool = False,
    trace_out: Optional[Path] = None,
    results_store: Optional[Path] = None,
) -> ShardReport:
    """Run shard ``(index, count)`` of the benchmark registry in this process.

    Benches execute in name order (cache-priming members of a group first).
    A failing bench does not stop the shard -- the remaining benches still
    run so one CI job reports every failure -- but the report's ``failures``
    list is non-empty and no manifest is written.  ``jobs`` sets the worker
    count of the shared evaluation pool for every figure of the shard.
    ``results_store`` points the figure drivers at a content-addressed
    :class:`~repro.serve.results.ResultStore` directory (``--results-dir``):
    a repeat of the same shard under the same config then performs zero
    ``encode_batch`` calls and regenerates byte-identical artifacts.

    ``profile=True`` runs the shard under an observation session: the span
    log lands next to the record as ``BENCH_shard_KofN.trace.jsonl`` (a
    suffix the ``BENCH_*.json`` manifest/trajectory globs cannot match) and
    the record gains a ``"profile"`` summary section; ``bench merge``
    stitches every shard's log into one Perfetto-loadable Chrome trace.
    ``trace_out`` writes the session to an explicit path as well (Chrome
    JSON, or the span log for a ``.jsonl`` suffix) and implies profiling.
    """
    index, count = shard
    profile = profile or trace_out is not None
    registry = dict(registry) if registry is not None else discover(bench_dir)
    names = list(shard_names(registry, index, count))

    overrides = {}
    if results_dir is not None:
        overrides[harness.RESULTS_DIR_ENV] = str(results_dir)
    if jobs is not None:
        overrides[harness.JOBS_ENV] = str(jobs)
    if results_store is not None:
        overrides[harness.RESULTS_STORE_ENV] = str(results_store)
    saved = {key: os.environ.get(key) for key in overrides}
    tmp_root: Optional[Path] = None
    try:
        os.environ.update(overrides)
        tmp_root = Path(tempfile.mkdtemp(prefix="repro-bench-"))
        config = harness.bench_config()
        results = harness.results_dir()
        results.mkdir(parents=True, exist_ok=True)
        # A reused results directory must not leak the previous run's
        # conclusions: drop any manifest and this shard's own record now so
        # a failed run leaves neither behind. Records of *other* shards are
        # kept -- running shards sequentially into one directory and merging
        # it is a supported local workflow.
        from .manifest import MANIFEST_NAME

        for stale in (
            results / MANIFEST_NAME,
            results / SHARD_RECORD_TEMPLATE.format(index=index, count=count),
            results / SHARD_TRACE_TEMPLATE.format(index=index, count=count),
        ):
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
        tmp_factory = _TmpPathFactory(tmp_root)
        session = None
        if profile:
            with observation(f"bench-shard-{index}of{count}") as session:
                outcomes = [
                    _run_bench(registry[name], config, results, tmp_factory)
                    for name in names
                ]
        else:
            outcomes = [
                _run_bench(registry[name], config, results, tmp_factory)
                for name in names
            ]
        report = ShardReport(
            index=index,
            count=count,
            names=names,
            outcomes=outcomes,
            config=harness.config_snapshot(config),
        )
        if session is not None:
            metrics = session.metrics.snapshot()
            report.profile = profile_summary(session.spans, metrics)
            report.trace_path = write_session(
                session,
                results / SHARD_TRACE_TEMPLATE.format(index=index, count=count),
                fmt="jsonl",
            )
            if trace_out is not None:
                write_session(session, Path(trace_out))
        record = results / SHARD_RECORD_TEMPLATE.format(index=index, count=count)
        record.write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
        report.record_path = record
        if count == 1 and not report.failures:
            from .manifest import build_manifest, write_manifest

            report.manifest_path = write_manifest(
                build_manifest(
                    {name: bench.spec for name, bench in registry.items()},
                    results,
                    report.config,
                ),
                results,
            )
        return report
    finally:
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        from ..evaluation.parallel import shutdown_shared_runners

        shutdown_shared_runners()
