"""Benchmark registry: metadata and discovery of the ``bench_*`` figure modules.

Every module under ``benchmarks/`` that reproduces one figure or table of the
paper declares a module-level ``BENCHMARK = BenchSpec(...)`` describing what
it regenerates: the figure id, a relative cost (measured seconds at the
default trace length, used by the cost-balanced shard partitioning), the
environment knobs it reads, the artifacts it writes under
``benchmarks/results/``, and the perf-regression gates that ``repro bench
compare`` enforces against ``benchmarks/baselines/``.

:func:`discover` imports each ``bench_*.py`` file of a benchmark directory,
validates its spec, and returns the registry that the shard partitioner, the
in-process runner, the manifest merge, and the regression gate all share.
"""

from __future__ import annotations

import hashlib
import importlib.util
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from types import ModuleType
from typing import Callable, Dict, Tuple

from ..core.errors import BenchError

#: Module-level attribute every bench module must define.
SPEC_ATTRIBUTE = "BENCHMARK"

#: Prefix of both the module files and the benchmark functions inside them.
BENCH_PREFIX = "bench_"


@dataclass(frozen=True)
class Gate:
    """One perf-regression gate: a metric of a ``BENCH_*.json`` artifact.

    ``metric`` is a dotted path into the artifact's JSON payload (e.g.
    ``"per_chunk_ipc_bytes.mmap"``).  ``direction`` says which way is good:
    ``"lower"`` metrics (peak bytes, wall clock) fail when the current value
    exceeds ``baseline * (1 + tolerance_pct / 100)``; ``"higher"`` metrics
    (throughput, reduction ratios) fail when the current value drops below
    ``baseline * (1 - tolerance_pct / 100)``.  ``context`` lists top-level
    payload keys that must match between the run and the baseline for the
    comparison to be meaningful (e.g. the input trace length); on a mismatch
    the gate is skipped with a warning instead of comparing apples to pears.
    ``optional`` gates guard metrics that only exist when an optional
    dependency is installed (e.g. a per-array-backend throughput column that
    needs ``numba``); a missing metric or missing baseline downgrades to a
    warning instead of failing the comparison.
    """

    artifact: str
    metric: str
    direction: str
    tolerance_pct: float
    context: Tuple[str, ...] = ()
    optional: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise BenchError(
                f"gate {self.metric!r}: direction must be 'lower' or 'higher', "
                f"not {self.direction!r}"
            )
        if self.tolerance_pct < 0:
            raise BenchError(f"gate {self.metric!r}: tolerance_pct must be >= 0")


@dataclass(frozen=True)
class BenchSpec:
    """Metadata a ``bench_*`` module declares about itself.

    ``artifacts`` are deterministic outputs (regenerated tables): given the
    same trace-generation config they are byte-identical on every machine,
    so the merged ``BENCH_manifest.json`` records their SHA-256.
    ``perf_artifacts`` carry wall-clock or peak-memory measurements; they are
    copied by ``bench merge`` but never checksummed.  ``group`` co-schedules
    benches that share the in-process evaluation cache (e.g. Figures 8-10
    read different metrics of one evaluation) into the same shard; it
    defaults to the bench's own name.  ``cost`` is the measured standalone
    runtime in seconds at the default trace length -- only the relative
    magnitudes matter, they steer the greedy bin-packing.
    ``backend_sensitive`` marks benches whose measurements depend on the
    active array backend (``repro bench ls`` surfaces them so CI legs with
    compiled/GPU backends know what to re-run).
    """

    figure: str
    title: str
    cost: float
    artifacts: Tuple[str, ...] = ()
    perf_artifacts: Tuple[str, ...] = ()
    env: Tuple[str, ...] = ()
    gates: Tuple[Gate, ...] = ()
    group: str = ""
    backend_sensitive: bool = False
    # Filled in by discovery:
    name: str = ""
    module: str = ""

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise BenchError(f"bench {self.figure!r}: cost must be positive")
        overlap = set(self.artifacts) & set(self.perf_artifacts)
        if overlap:
            raise BenchError(
                f"bench {self.figure!r}: {', '.join(sorted(overlap))} listed as "
                "both a deterministic artifact and a perf artifact"
            )
        for gate in self.gates:
            if gate.artifact not in self.artifacts + self.perf_artifacts:
                raise BenchError(
                    f"bench {self.figure!r}: gate artifact {gate.artifact!r} "
                    "is not a declared artifact"
                )

    @property
    def all_artifacts(self) -> Tuple[str, ...]:
        """Every file this bench writes under the results directory."""
        return self.artifacts + self.perf_artifacts


@dataclass(frozen=True)
class DiscoveredBench:
    """A registered bench module: its spec plus the imported callables."""

    spec: BenchSpec
    path: Path
    functions: Tuple[Tuple[str, Callable], ...] = field(repr=False)

    @property
    def name(self) -> str:
        return self.spec.name


def default_bench_dir() -> Path:
    """The repository's ``benchmarks/`` directory (cwd fallback)."""
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "benchmarks"
    if candidate.is_dir():
        return candidate
    return Path.cwd() / "benchmarks"


#: Path -> module name of the version currently in ``sys.modules``; a
#: re-import of an edited file evicts its predecessor instead of leaking one
#: superseded module object per file version.
_MODULE_NAMES: Dict[str, str] = {}


def _import_bench_module(path: Path) -> ModuleType:
    """Import one ``bench_*.py`` file under a collision-free module name.

    The name folds in a digest of the absolute path and the file's current
    size/mtime, so equally named modules from different benchmark
    directories (the real harness and test fixtures) coexist in
    ``sys.modules``, unchanged files are reused across re-discoveries, and
    an edited file is re-imported instead of served stale.
    """
    stat = path.stat()
    identity = f"{path}:{stat.st_size}:{stat.st_mtime_ns}"
    digest = hashlib.sha256(identity.encode()).hexdigest()[:12]
    module_name = f"repro_bench_{digest}_{path.stem}"
    cached = sys.modules.get(module_name)
    if cached is not None:
        return cached
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib guard
        raise BenchError(f"cannot import benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    # Let bench modules resolve sibling imports (e.g. a local conftest).
    sys.path.insert(0, str(path.parent))
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(module_name, None)
        raise
    finally:
        try:
            sys.path.remove(str(path.parent))
        except ValueError:  # pragma: no cover - somebody else removed it
            pass
    superseded = _MODULE_NAMES.get(str(path))
    if superseded is not None and superseded != module_name:
        sys.modules.pop(superseded, None)
    _MODULE_NAMES[str(path)] = module_name
    return module


def discover(bench_dir: Path | str | None = None) -> Dict[str, DiscoveredBench]:
    """Import every ``bench_*`` module of ``bench_dir`` and build the registry.

    Returns ``{name: DiscoveredBench}`` ordered by name.  A module without a
    ``BENCHMARK`` spec, without ``bench_*`` functions, or redeclaring an
    artifact already claimed by another module is a :class:`BenchError` --
    the merge step relies on every artifact having exactly one producer.
    """
    directory = Path(bench_dir) if bench_dir is not None else default_bench_dir()
    directory = directory.resolve()
    if not directory.is_dir():
        raise BenchError(f"benchmark directory not found: {directory}")
    paths = sorted(directory.glob(f"{BENCH_PREFIX}*.py"))
    if not paths:
        raise BenchError(f"no {BENCH_PREFIX}*.py modules under {directory}")

    registry: Dict[str, DiscoveredBench] = {}
    artifact_owners: Dict[str, str] = {}
    for path in paths:
        module = _import_bench_module(path)
        spec = getattr(module, SPEC_ATTRIBUTE, None)
        if not isinstance(spec, BenchSpec):
            raise BenchError(f"{path.name} does not declare {SPEC_ATTRIBUTE} = BenchSpec(...)")
        name = path.stem[len(BENCH_PREFIX) :]
        spec = replace(
            spec,
            name=name,
            module=path.name,
            group=spec.group or name,
        )
        functions = tuple(
            (attr, value)
            for attr, value in vars(module).items()
            if attr.startswith(BENCH_PREFIX) and callable(value)
        )
        if not functions:
            raise BenchError(f"{path.name} defines no {BENCH_PREFIX}* functions")
        for artifact in spec.all_artifacts:
            owner = artifact_owners.setdefault(artifact, name)
            if owner != name:
                raise BenchError(
                    f"artifact {artifact!r} is declared by both "
                    f"{owner!r} and {name!r}"
                )
        registry[name] = DiscoveredBench(spec=spec, path=path, functions=functions)
    return dict(sorted(registry.items()))
