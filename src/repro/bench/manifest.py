"""Merge per-shard benchmark outputs into one deterministic manifest.

``bench merge`` takes the results directories of any number of shard runs
(CI downloads one artifact directory per matrix job), validates that
together they cover the registry exactly once with a consistent
trace-generation config, copies every declared artifact and shard record
into the output directory, and writes ``BENCH_manifest.json``.

The manifest is deliberately free of wall-clock data so that it is a pure
function of the registry and the deterministic artifacts: for each bench it
records the figure id, cost, module, and the SHA-256 of every deterministic
table (perf artifacts are listed with a ``null`` digest).  An unsharded
``bench run`` therefore produces a byte-identical manifest to merging any
``K/N`` split of the same tree -- the acceptance check of the sharded
harness, and a standing test that the shards really are independent.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from ..core.errors import BenchError
from .registry import BenchSpec, discover

#: File name of the merged manifest.
MANIFEST_NAME = "BENCH_manifest.json"

#: Glob matching the per-shard run records.
SHARD_RECORD_GLOB = "BENCH_shard_*of*.json"

#: Glob matching the per-shard observability span logs (profiled runs only).
SHARD_TRACE_GLOB = "BENCH_shard_*of*.trace.jsonl"

#: File name of the merged Perfetto-loadable trace (when shards were
#: profiled).  Deliberately outside the ``BENCH_*.json`` namespace so the
#: trajectory copy and the manifest globs never pick it up.
MERGED_TRACE_NAME = "profile.trace.json"

_SHARD_RECORD_RE = re.compile(r"^BENCH_shard_(\d+)of(\d+)\.json$")


def file_digest(path: Path) -> str:
    """The ``sha256:<hex>`` digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return f"sha256:{digest.hexdigest()}"


def build_manifest(
    specs: Mapping[str, BenchSpec],
    results_dir: Path,
    config: Mapping[str, int],
) -> dict:
    """The manifest payload for a fully populated results directory."""
    benchmarks = {}
    for name in sorted(specs):
        spec = specs[name]
        artifacts: Dict[str, Optional[str]] = {}
        for artifact in spec.artifacts:
            path = results_dir / artifact
            if not path.is_file():
                raise BenchError(f"bench {name!r}: missing artifact {artifact!r}")
            artifacts[artifact] = file_digest(path)
        for artifact in spec.perf_artifacts:
            if not (results_dir / artifact).is_file():
                raise BenchError(f"bench {name!r}: missing perf artifact {artifact!r}")
            artifacts[artifact] = None
        benchmarks[name] = {
            "figure": spec.figure,
            "title": spec.title,
            "module": spec.module,
            "group": spec.group,
            "cost": spec.cost,
            "artifacts": artifacts,
        }
    return {"schema": 1, "config": dict(config), "benchmarks": benchmarks}


def write_manifest(payload: dict, results_dir: Path) -> Path:
    path = results_dir / MANIFEST_NAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def copy_trajectory(results_dir: Path, trajectory_dir: Path) -> List[Path]:
    """Copy every ``BENCH_*.json`` of a results directory somewhere else.

    The repository root keeps the latest merged ``BENCH_*.json`` set checked
    in as the tracked perf trajectory; CI refreshes it from the merge job.
    Shard run records are skipped -- their wall clocks differ on every
    machine and would re-dirty the tracked set on each run.
    """
    trajectory_dir.mkdir(parents=True, exist_ok=True)
    copied = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if _SHARD_RECORD_RE.match(path.name):
            continue
        target = trajectory_dir / path.name
        if target.resolve() != path.resolve():
            shutil.copyfile(path, target)
        copied.append(target)
    return copied


def _load_shard_records(shard_dirs: Iterable[Path]) -> Dict[Path, dict]:
    records: Dict[Path, dict] = {}
    for directory in shard_dirs:
        if not directory.is_dir():
            raise BenchError(f"shard directory not found: {directory}")
        for path in sorted(directory.glob(SHARD_RECORD_GLOB)):
            if _SHARD_RECORD_RE.match(path.name):
                records[path] = json.loads(path.read_text())
    if not records:
        raise BenchError(
            "no shard records (BENCH_shard_<K>of<N>.json) found in: "
            + ", ".join(str(d) for d in shard_dirs)
        )
    return records


def merge_shards(
    shard_dirs: Iterable[Path],
    out_dir: Path,
    bench_dir: Optional[Path] = None,
    registry: Optional[Mapping[str, BenchSpec]] = None,
) -> dict:
    """Stitch shard results into ``out_dir`` and write the merged manifest.

    Validates full, non-overlapping coverage -- every registered bench ran in
    exactly one shard -- and config agreement across shards; returns the
    manifest payload.  Merging an already merged directory is idempotent
    (the manifest is rebuilt from the same inputs to the same bytes).
    """
    shard_dirs = [Path(d) for d in shard_dirs]
    if registry is None:
        registry = {name: bench.spec for name, bench in discover(bench_dir).items()}
    records = _load_shard_records(shard_dirs)

    config: Optional[dict] = None
    owner_record: Dict[str, Path] = {}
    failed: List[str] = []
    for path, record in sorted(records.items()):
        record_config = record.get("config", {})
        if config is None:
            config = record_config
        elif record_config != config:
            raise BenchError(
                f"shard record {path} ran with config {record_config}, "
                f"other shards used {config}; refusing to merge mixed runs"
            )
        for name, entry in record.get("benches", {}).items():
            if entry.get("status") != "passed":
                failed.append(name)
            if name in owner_record:
                raise BenchError(
                    f"bench {name!r} appears in more than one shard record "
                    f"({owner_record[name]} and {path})"
                )
            owner_record[name] = path
    if failed:
        raise BenchError("cannot merge shards with failed benches: " + ", ".join(sorted(failed)))
    missing = sorted(set(registry) - set(owner_record))
    if missing:
        raise BenchError("shards do not cover the full registry; missing: " + ", ".join(missing))
    unknown = sorted(set(owner_record) - set(registry))
    if unknown:
        raise BenchError("shard records mention unregistered benches: " + ", ".join(unknown))

    out_dir.mkdir(parents=True, exist_ok=True)
    for name, record_path in sorted(owner_record.items()):
        source_dir = record_path.parent
        for artifact in registry[name].all_artifacts:
            source = source_dir / artifact
            if not source.is_file():
                raise BenchError(
                    f"bench {name!r}: artifact {artifact!r} missing from {source_dir}"
                )
            target = out_dir / artifact
            if source.resolve() != target.resolve():
                shutil.copyfile(source, target)
    for path in records:
        target = out_dir / path.name
        if path.resolve() != target.resolve():
            shutil.copyfile(path, target)

    # Profiled shards leave span logs next to their records; collect them
    # and stitch one Perfetto-loadable trace for the merged run.  Purely
    # additive: the manifest below never digests these files.
    trace_logs: List[Path] = []
    for directory in dict.fromkeys([*shard_dirs, out_dir]):
        trace_logs.extend(sorted(directory.glob(SHARD_TRACE_GLOB)))
    copied_logs: Dict[str, Path] = {}
    for source in trace_logs:
        target = out_dir / source.name
        if source.resolve() != target.resolve():
            shutil.copyfile(source, target)
        copied_logs[target.name] = target
    if copied_logs:
        from ..obs import merge_jsonl_to_chrome

        merge_jsonl_to_chrome(copied_logs.values(), out_dir / MERGED_TRACE_NAME)

    assert config is not None  # records is non-empty
    payload = build_manifest(registry, out_dir, config)
    write_manifest(payload, out_dir)
    return payload
