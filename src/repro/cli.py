"""Command-line interface: run any figure/table experiment from the shell.

Examples
--------
List the available experiments and schemes::

    wlcrc-repro list

Reproduce Figure 8 with short traces::

    wlcrc-repro figure8 --trace-length 2000

Evaluate a single scheme on a single benchmark::

    wlcrc-repro evaluate --scheme wlcrc-16 --benchmark gcc --trace-length 5000
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from . import evaluation
from .coding import available_schemes, make_scheme
from .evaluation import ExperimentConfig, evaluate_schemes, format_series_table
from .hardware import WLCRCSynthesisModel
from .workloads import ALL_BENCHMARKS, generate_benchmark_trace

#: Experiment name -> driver function in :mod:`repro.evaluation.experiments`.
EXPERIMENTS: Dict[str, Callable] = {
    "figure1-random": lambda cfg: evaluation.figure1("random", cfg),
    "figure1-biased": lambda cfg: evaluation.figure1("biased", cfg),
    "figure2": evaluation.figure2,
    "figure3": evaluation.figure3,
    "figure4": evaluation.figure4,
    "figure5": evaluation.figure5,
    "figure8": evaluation.figure8,
    "figure9": evaluation.figure9,
    "figure10": evaluation.figure10,
    "figure11": evaluation.figure11,
    "figure12": evaluation.figure12,
    "figure13": evaluation.figure13,
    "figure14": evaluation.figure14,
    "section8d": evaluation.section8d_multiobjective,
    "table1": lambda cfg: evaluation.table1(),
    "hardware": lambda cfg: WLCRCSynthesisModel().overhead_table(),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wlcrc-repro",
        description="Reproduce the WLCRC (HPCA 2018) evaluation figures and tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments and schemes")

    run = subparsers.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_config_arguments(run)

    for name in EXPERIMENTS:
        experiment = subparsers.add_parser(name, help=f"run the {name} experiment")
        _add_config_arguments(experiment)

    evaluate = subparsers.add_parser("evaluate", help="evaluate one scheme on one benchmark")
    evaluate.add_argument("--scheme", default="wlcrc-16", help="scheme name (see 'list')")
    evaluate.add_argument("--benchmark", default="gcc", choices=list(ALL_BENCHMARKS))
    _add_config_arguments(evaluate)
    return parser


def _jobs_argument(value: str) -> int:
    jobs = int(value)
    if jobs < -1:
        raise argparse.ArgumentTypeError("must be a positive integer, 0 or -1 (all cores)")
    return jobs


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-length", type=int, default=4000, help="write requests per benchmark")
    parser.add_argument("--seed", type=int, default=2018, help="trace-generation seed")
    parser.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=1,
        help="worker processes for the evaluation (1 = serial, 0 or -1 = all cores)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a text table")


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        trace_length=args.trace_length, seed=args.seed, n_jobs=args.jobs
    )


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result, indent=2, default=float))
        return
    if isinstance(result, dict) and result and isinstance(next(iter(result.values())), dict):
        flattened = {}
        for row, columns in result.items():
            flattened[str(row)] = {
                str(col): (value if isinstance(value, (int, float, str)) else str(value))
                for col, value in columns.items()
            }
        print(format_series_table(flattened, precision=2))
    else:
        print(result)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``wlcrc-repro`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("schemes:")
        for name in available_schemes():
            print(f"  {name}")
        return 0

    if args.command == "evaluate":
        config = _config_from_args(args)
        trace = generate_benchmark_trace(args.benchmark, config.trace_length, config.seed)
        results = evaluate_schemes(
            [make_scheme(args.scheme)], trace, config.evaluation, n_jobs=config.n_jobs
        )
        metrics = next(iter(results.values()))
        _print_result({args.scheme: metrics.as_dict()}, args.json)
        return 0

    experiment_name = args.experiment if args.command == "run" else args.command
    config = _config_from_args(args)
    result = EXPERIMENTS[experiment_name](config)
    _print_result(result, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
