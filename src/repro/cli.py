"""Command-line interface: run any figure/table experiment from the shell.

Examples
--------
List the available experiments and schemes::

    wlcrc-repro list

Reproduce Figure 8 with short traces::

    wlcrc-repro figure8 --trace-length 2000

Evaluate a single scheme on a single benchmark::

    wlcrc-repro evaluate --scheme wlcrc-16 --benchmark gcc --trace-length 5000

Work with trace files and corpora (see README, "Trace formats" and
"Streaming large traces")::

    wlcrc-repro trace gen --benchmark gcc --length 20000 --corpus traces/
    wlcrc-repro trace convert memory_access.trace --out converted.wtrc
    wlcrc-repro trace info converted.wtrc
    wlcrc-repro trace ls traces/
    wlcrc-repro trace gc traces/ --max-bytes 2G
    wlcrc-repro evaluate --scheme wlcrc-16 --trace converted.wtrc
    wlcrc-repro evaluate --scheme wlcrc-16 --trace memory_access.trace --jobs 4

``trace convert`` to a ``.wtrc`` target and ``evaluate --trace`` on a raw
ASCII trace both *stream*: the input is parsed, synthesised and written (or
evaluated) in fixed-size chunks, so traces far larger than RAM work with
bounded memory.

Orchestrate the figure benchmarks (see README, "Benchmark harness & perf
gate")::

    wlcrc-repro bench ls --shards 4
    wlcrc-repro bench run --shard 2/4 --results /tmp/s2 --jobs 2
    wlcrc-repro bench merge /tmp/s1 /tmp/s2 /tmp/s3 /tmp/s4
    wlcrc-repro bench compare
"""

from __future__ import annotations

import argparse
import contextlib
import difflib
import json
import logging
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from . import evaluation
from .coding import available_schemes, make_scheme
from .core.errors import ReproError, TraceError
from .evaluation import ExperimentConfig, evaluate_schemes, format_series_table
from .hardware import WLCRCSynthesisModel
from .traces.ingest import TRACE_FORMATS
from .workloads import ALL_BENCHMARKS, WriteTrace, generate_benchmark_trace

#: CLI diagnostics go through logging (to stderr), never stdout: JSON and
#: table output must stay machine-parseable under redirection.
_LOG = logging.getLogger("repro.cli")

#: ``--log-level`` choices.
LOG_LEVELS = ("debug", "info", "warning", "error")


def _setup_logging(level: str) -> None:
    logging.basicConfig(
        level=getattr(logging, level.upper(), logging.WARNING),
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )

#: Experiment name -> driver function in :mod:`repro.evaluation.experiments`.
EXPERIMENTS: Dict[str, Callable] = {
    "figure1-random": lambda cfg: evaluation.figure1("random", cfg),
    "figure1-biased": lambda cfg: evaluation.figure1("biased", cfg),
    "figure2": evaluation.figure2,
    "figure3": evaluation.figure3,
    "figure4": evaluation.figure4,
    "figure5": evaluation.figure5,
    "figure8": evaluation.figure8,
    "figure9": evaluation.figure9,
    "figure10": evaluation.figure10,
    "figure11": evaluation.figure11,
    "figure12": evaluation.figure12,
    "figure13": evaluation.figure13,
    "figure14": evaluation.figure14,
    "section8d": evaluation.section8d_multiobjective,
    "table1": lambda cfg: evaluation.table1(),
    "hardware": lambda cfg: WLCRCSynthesisModel().overhead_table(),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wlcrc-repro",
        description="Reproduce the WLCRC (HPCA 2018) evaluation figures and tables.",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="diagnostic verbosity; all diagnostics go to stderr so stdout "
        "stays machine-parseable (default: warning)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments and schemes")

    run = subparsers.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_config_arguments(run)

    for name in EXPERIMENTS:
        experiment = subparsers.add_parser(name, help=f"run the {name} experiment")
        _add_config_arguments(experiment)

    evaluate = subparsers.add_parser("evaluate", help="evaluate one scheme on one benchmark")
    evaluate.add_argument("--scheme", default="wlcrc-16", help="scheme name (see 'list')")
    evaluate.add_argument("--benchmark", default="gcc", help=f"benchmark name, one of: {', '.join(ALL_BENCHMARKS)}")
    evaluate.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="evaluate on a trace file instead of a generated benchmark: "
        ".wtrc/.npz files load directly, a raw ASCII address trace "
        "(ramulator2 / ramulator2-inst / tracehm) is streamed through a "
        "temporary .wtrc with bounded memory",
    )
    evaluate.add_argument(
        "--trace-format",
        default="auto",
        choices=["auto", *TRACE_FORMATS],
        help="dialect of an ASCII --trace input (default: sniff)",
    )
    evaluate.add_argument(
        "--content-profile",
        default="gcc",
        dest="content_profile",
        help="content profile used to synthesise line data for an ASCII --trace input",
    )
    _add_config_arguments(evaluate)

    trace = subparsers.add_parser("trace", help="generate, convert, and inspect trace files")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    gen = trace_commands.add_parser("gen", help="generate a synthetic benchmark trace")
    gen.add_argument("--benchmark", default="gcc", help=f"benchmark profile, one of: {', '.join(ALL_BENCHMARKS)}")
    gen.add_argument("--length", type=_positive_int, default=20_000, help="write requests to generate")
    gen.add_argument("--seed", type=_nonnegative_int, default=2018, help="trace-generation seed")
    _add_trace_output_arguments(gen)

    convert = trace_commands.add_parser(
        "convert",
        help="ingest an external address trace (ramulator2 / ramulator2-inst "
        "/ tracehm); .wtrc and corpus targets stream with bounded memory",
    )
    convert.add_argument("input", help="path of the external ASCII trace")
    convert.add_argument(
        "--format",
        dest="fmt",
        default="auto",
        choices=["auto", *TRACE_FORMATS],
        help="input dialect (default: sniff from the first line)",
    )
    convert.add_argument(
        "--profile",
        default="gcc",
        help="content profile used to synthesise line data for the addresses",
    )
    convert.add_argument("--seed", type=_nonnegative_int, default=None, help="extra seed folded into the synthesis")
    _add_trace_output_arguments(convert)

    info = trace_commands.add_parser("info", help="print a trace file's header and statistics")
    info.add_argument("path", help="trace file (.wtrc or .npz)")
    info.add_argument(
        "--stats",
        action="store_true",
        help="also scan the trace data for statistics (full-file read)",
    )
    info.add_argument("--json", action="store_true", help="emit JSON")

    ls = trace_commands.add_parser("ls", help="list the traces of a corpus directory")
    ls.add_argument("corpus", help="corpus directory (holds index.json)")
    ls.add_argument("--json", action="store_true", help="emit JSON")

    gc = trace_commands.add_parser(
        "gc",
        help="evict least-recently-used cached traces until the corpus's "
        "cache/ directory fits a byte budget (named traces are never evicted)",
    )
    gc.add_argument("corpus", help="corpus directory (holds index.json)")
    gc.add_argument(
        "--max-bytes",
        type=_size_argument,
        required=True,
        metavar="SIZE",
        help="cache byte budget; plain bytes or a K/M/G/T-suffixed size (e.g. 2G)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    gc.add_argument("--json", action="store_true", help="emit JSON")

    bench = subparsers.add_parser(
        "bench",
        help="orchestrate the figure benchmarks: list, run shards, merge, "
        "gate against perf baselines (see README, 'Benchmark harness & perf gate')",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    def _add_bench_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--bench-dir",
            default=None,
            metavar="DIR",
            help="directory holding the bench_* modules (default: the "
            "repository's benchmarks/)",
        )

    bench_ls = bench_commands.add_parser(
        "ls", help="list the registered benchmarks and their shard assignment"
    )
    _add_bench_dir(bench_ls)
    bench_ls.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="also show the deterministic N-way shard assignment",
    )
    bench_ls.add_argument("--json", action="store_true", help="emit JSON")

    bench_run = bench_commands.add_parser(
        "run", help="run one shard of the benchmarks in-process"
    )
    _add_bench_dir(bench_run)
    bench_run.add_argument(
        "--shard",
        default="1/1",
        metavar="K/N",
        help="run shard K of the deterministic N-way partition (default 1/1 "
        "= everything, which also writes BENCH_manifest.json)",
    )
    bench_run.add_argument(
        "--results",
        default=None,
        metavar="DIR",
        help="artifact directory (default benchmarks/results)",
    )
    bench_run.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes of the shared evaluation pool, reused across "
        "every figure of the shard (1 = serial, 0 or -1 = all cores)",
    )
    bench_run.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result store shared by the figure drivers: "
        "a repeated identical run performs zero encode calls and "
        "regenerates byte-identical artifacts (also REPRO_BENCH_RESULTS_STORE)",
    )
    bench_run.add_argument(
        "--trajectory-dir",
        default=None,
        metavar="DIR",
        help="where an unsharded run copies the BENCH_*.json perf trajectory "
        "(default: current directory; sharded runs never copy)",
    )
    bench_run.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not copy BENCH_*.json out of the results directory",
    )
    bench_run.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="deterministic chaos testing: execute this fault plan while "
        "the shard runs, e.g. 'worker-crash@task:3'; recovered artifacts "
        "stay byte-identical (see docs/robustness.md)",
    )
    bench_run.add_argument(
        "--profile",
        action="store_true",
        help="run the shard under an observation session: writes "
        "BENCH_shard_KofN.trace.jsonl next to the record and embeds a "
        "'profile' summary section in it ('bench merge' stitches the logs "
        "into one Perfetto-loadable profile.trace.json)",
    )
    bench_run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="also write the shard's trace to this path (Chrome trace-event "
        "JSON; use a .jsonl suffix for the span-log format); implies --profile",
    )
    bench_run.add_argument("--json", action="store_true", help="emit JSON")

    bench_merge = bench_commands.add_parser(
        "merge",
        help="stitch per-shard results into one directory and write "
        "BENCH_manifest.json (byte-identical to an unsharded run)",
    )
    _add_bench_dir(bench_merge)
    bench_merge.add_argument(
        "shard_dirs",
        nargs="+",
        metavar="SHARD_DIR",
        help="results directories of the shard runs (shard records included)",
    )
    bench_merge.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="merged output directory (default benchmarks/results)",
    )
    bench_merge.add_argument(
        "--trajectory-dir",
        default=None,
        metavar="DIR",
        help="where to copy the merged BENCH_*.json perf trajectory "
        "(default: current directory)",
    )
    bench_merge.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not copy BENCH_*.json out of the merged directory",
    )
    bench_merge.add_argument("--json", action="store_true", help="emit JSON")

    bench_compare = bench_commands.add_parser(
        "compare",
        help="diff current BENCH_*.json metrics against the checked-in "
        "baselines; exit 1 on any perf regression past its tolerance",
    )
    _add_bench_dir(bench_compare)
    bench_compare.add_argument(
        "--results",
        default=None,
        metavar="DIR",
        help="results directory to compare (default benchmarks/results)",
    )
    bench_compare.add_argument(
        "--baselines",
        default=None,
        metavar="DIR",
        help="baseline directory (default benchmarks/baselines)",
    )
    bench_compare.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from the current results instead of comparing",
    )
    bench_compare.add_argument(
        "--strict",
        action="store_true",
        help="also fail on missing baselines and context mismatches",
    )
    bench_compare.add_argument("--json", action="store_true", help="emit JSON")

    profile = subparsers.add_parser(
        "profile",
        help="summarise an observability trace written by --trace-out, a "
        "profiled bench shard, or 'bench merge' (span log or Chrome trace)",
    )
    profile.add_argument(
        "path",
        help="trace file: a .trace.jsonl span log or a Chrome trace-event .json",
    )
    profile.add_argument("--json", action="store_true", help="emit JSON")

    serve = subparsers.add_parser(
        "serve",
        help="run the evaluation service: an HTTP/JSON front-end with a "
        "content-addressed result store (see docs/serving.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8787,
        help="TCP port; 0 picks an ephemeral port, printed on stdout "
        "(default: 8787)",
    )
    serve.add_argument(
        "--results-dir",
        required=True,
        metavar="DIR",
        help="result-store directory (created if missing); also hosts trace "
        "uploads under traces/",
    )
    serve.add_argument(
        "--results-budget",
        type=_size_argument,
        default=None,
        metavar="SIZE",
        help="byte budget of the result store; least-recently-used records "
        "are evicted past it (bytes or K/M/G/T suffix)",
    )
    serve.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=1,
        help="worker processes of the evaluation pool requests drain into "
        "(1 = serial, 0 or -1 = all cores)",
    )
    serve.add_argument(
        "--backend",
        choices=["process", "thread"],
        default="process",
        help="worker-pool backend of the evaluation pool (default: process)",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace-corpus directory: enables {'corpus': name} trace "
        "references and caches generated traces across requests",
    )
    serve.add_argument(
        "--queue-size",
        type=_positive_int,
        default=64,
        metavar="N",
        help="bound of the evaluation queue; requests past it get 503 "
        "with a Retry-After hint (default: 64)",
    )
    serve.add_argument(
        "--drain-workers",
        type=_positive_int,
        default=1,
        metavar="M",
        help="supervised drain workers popping the evaluation queue; each "
        "is restarted if it crashes (default: 1 -- one evaluation at a "
        "time, so the store and worker pool are never contended)",
    )
    serve.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="deterministic chaos testing of the service, e.g. "
        "'worker-crash@drain:1,conn-drop@evaluate:2' "
        "(see docs/robustness.md; also the REPRO_FAULTS env var)",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit one evaluation request to a running 'repro serve'",
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8787",
        help="server base URL (default: http://127.0.0.1:8787)",
    )
    submit.add_argument("--scheme", default="wlcrc-16", help="scheme name (see 'list')")
    source = submit.add_mutually_exclusive_group()
    source.add_argument(
        "--benchmark",
        default=None,
        help="evaluate a generated benchmark trace "
        f"(one of: {', '.join(ALL_BENCHMARKS)}; the default, as 'gcc')",
    )
    source.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="upload this .wtrc trace first, then evaluate it by digest",
    )
    source.add_argument(
        "--trace-digest",
        default=None,
        metavar="DIGEST",
        help="evaluate a previously uploaded trace by its content digest",
    )
    source.add_argument(
        "--corpus-name",
        default=None,
        metavar="NAME",
        help="evaluate a trace of the server's --trace-dir corpus by name",
    )
    submit.add_argument(
        "--trace-length",
        type=_positive_int,
        default=20_000,
        help="write requests of a generated --benchmark trace (default: 20000)",
    )
    submit.add_argument(
        "--seed",
        type=_nonnegative_int,
        default=2018,
        help="trace-generation seed of a --benchmark trace (default: 2018)",
    )
    submit.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=2048,
        help="evaluation chunk size (output-affecting; default: 2048)",
    )
    submit.add_argument(
        "--sample-disturbance",
        action="store_true",
        help="Monte-Carlo sample disturbance errors instead of the "
        "deterministic expected-value count",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="client-side request timeout (default: 600)",
    )
    submit.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="extra attempts after a transient failure (503, connection "
        "refused/dropped), spaced by exponential backoff and honouring the "
        "server's Retry-After header (default: 0)",
    )
    submit.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base of the jittered exponential retry backoff (default: 0.5)",
    )
    submit.add_argument(
        "--deadline-ms",
        type=_positive_int,
        default=None,
        metavar="MS",
        help="server-side deadline of the evaluation request: the server "
        "answers 504 if the result is not ready within it",
    )
    submit.add_argument("--json", action="store_true", help="emit the raw JSON response")

    docs = subparsers.add_parser(
        "docs",
        help="generate and check the docs/ tree (CLI reference, link checker)",
    )
    docs_commands = docs.add_subparsers(dest="docs_command", required=True)
    docs_cli = docs_commands.add_parser(
        "cli",
        help="emit the generated CLI reference (docs/cli.md) from the "
        "argparse tree",
    )
    docs_cli.add_argument(
        "--write",
        action="store_true",
        help="write docs/cli.md in place instead of printing to stdout",
    )
    docs_cli.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/cli.md is stale (CI's regenerate-and-diff)",
    )
    docs_cli.add_argument(
        "--docs-dir",
        default="docs",
        metavar="DIR",
        help="docs directory holding cli.md (default: docs)",
    )
    docs_check = docs_commands.add_parser(
        "check",
        help="validate the docs tree: relative links and anchors resolve, "
        "and the generated CLI reference is current",
    )
    docs_check.add_argument(
        "--docs-dir",
        default="docs",
        metavar="DIR",
        help="docs directory to check (default: docs)",
    )
    return parser


def _add_trace_output_arguments(parser: argparse.ArgumentParser) -> None:
    output = parser.add_mutually_exclusive_group(required=True)
    output.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="output trace file (.wtrc for the raw mmap format, .npz for the archive)",
    )
    output.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="register the trace in this corpus directory instead of --out",
    )
    parser.add_argument("--name", default=None, help="trace name inside the corpus")


def _jobs_argument(value: str) -> int:
    jobs = int(value)
    if jobs < -1:
        raise argparse.ArgumentTypeError("must be a positive integer, 0 or -1 (all cores)")
    return jobs


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return parsed


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be a non-negative integer")
    return parsed


_SIZE_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def _size_argument(value: str) -> int:
    """Byte count, plain (``1048576``) or binary-suffixed (``1M``, ``2G``)."""
    text = value.strip().upper()
    if text.endswith("B") and len(text) > 1:  # accept 2GB / 512KB spellings
        text = text[:-1]
    scale = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        parsed = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse size {value!r}; use bytes or a K/M/G/T suffix"
        )
    if not (0 <= parsed < float(1 << 62)):  # rejects negatives, inf and nan
        raise argparse.ArgumentTypeError(
            f"size {value!r} must be a finite non-negative byte count"
        )
    return int(parsed * scale)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-length", type=_positive_int, default=4000, help="write requests per benchmark")
    parser.add_argument("--seed", type=_nonnegative_int, default=2018, help="trace-generation seed")
    parser.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=1,
        help="worker processes for the evaluation (1 = serial, 0 or -1 = all cores)",
    )
    parser.add_argument(
        "--backend",
        choices=["process", "thread"],
        default="process",
        help="worker-pool backend for --jobs > 1: 'process' isolates workers "
        "(best for long sweeps), 'thread' skips process start-up and trace "
        "export (the GIL-free compression kernels make this competitive for "
        "small sweeps); results are bit-identical either way",
    )
    parser.add_argument(
        "--array-backend",
        default=None,
        metavar="NAME",
        help="array backend of the compression kernels: 'numpy' (reference), "
        "'numba' (compiled hot kernels) or 'cupy' (GPU); results are "
        "bit-identical for every backend, only throughput changes "
        "(default: the REPRO_ARRAY_BACKEND env var, else numpy)",
    )
    parser.add_argument(
        "--superbatch",
        type=_positive_int,
        default=None,
        metavar="LINES",
        help="coalesce evaluation chunks into encoder batches of at least "
        "this many lines before encoding (results stay bit-identical; "
        "large values feed compiled/GPU backends better)",
    )
    parser.add_argument(
        "--fused-tile-lines",
        type=int,
        default=8192,
        metavar="LINES",
        help="tile size of the fused encode+metrics path: chunk groups "
        "larger than this are encoded tile by tile with metrics accumulated "
        "in the same pass, bounding peak memory (results stay bit-identical; "
        "0 disables tiling; default: 8192)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace-corpus directory: benchmark traces are cached there and memory-mapped",
    )
    parser.add_argument(
        "--trace-cache-budget",
        type=_size_argument,
        default=None,
        metavar="SIZE",
        help="byte budget of the --trace-dir generation cache; least-recently-"
        "used cached traces are evicted past it (bytes or K/M/G/T suffix)",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result-store directory: evaluation results "
        "are memoised there keyed by (trace content, scheme, config), so "
        "repeated identical runs skip recomputation; store hits are "
        "bit-identical to fresh computation (see docs/serving.md)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task watchdog of the parallel engine: a worker task "
        "exceeding it is presumed hung, the pool is rebuilt and only the "
        "lost work resubmitted (results stay bit-identical; default: off)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="deterministic chaos testing: a comma-separated fault plan like "
        "'worker-crash@task:3,worker-hang@task:5:2s' executed at the named "
        "injection sites; recovered runs stay bit-identical "
        "(see docs/robustness.md; also the REPRO_FAULTS env var)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the run and print a span/metric profile summary to "
        "stderr (stdout output is unaffected; results stay bit-identical)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the run's trace to this path -- Chrome trace-event JSON "
        "loadable in Perfetto, or the JSON-lines span log for a .jsonl "
        "suffix; implies tracing on",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a text table")


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        trace_length=args.trace_length,
        seed=args.seed,
        n_jobs=args.jobs,
        backend=args.backend,
        trace_dir=args.trace_dir,
        trace_cache_budget=args.trace_cache_budget,
        array_backend=args.array_backend,
        superbatch_size=args.superbatch,
        fused_tile_lines=args.fused_tile_lines if args.fused_tile_lines > 0 else None,
        results_dir=args.results_dir,
        task_timeout=args.task_timeout,
    )


def _check_array_backend(name: Optional[str]) -> Optional[int]:
    """Validate an ``--array-backend`` value; exit code 2 on a bad one.

    Unknown names get the CLI's usual did-you-mean treatment; registered but
    unavailable backends (e.g. ``numba`` without the compiled extra
    installed) fail with the backend's own installation hint.
    """
    if name is None:
        return None
    from .compression.backend import backend_names, get_backend

    if name not in backend_names():
        return _unknown_name("array backend", name, backend_names())
    try:
        get_backend(name)
    except ReproError as exc:
        return _fail(str(exc))
    return None


def _fail(message: str, candidates: Sequence[str] = ()) -> int:
    """Print a friendly error (with 'did you mean' suggestions) and return 2."""
    print(f"error: {message}", file=sys.stderr)
    if candidates:
        print(f"did you mean: {', '.join(candidates)}?", file=sys.stderr)
    return 2


def _suggest(name: str, known: Sequence[str]) -> Sequence[str]:
    return difflib.get_close_matches(name, list(known), n=3, cutoff=0.4)


def _unknown_name(kind: str, value: str, known: Sequence[str]) -> int:
    """Exit-2 error for an unrecognised name, with close-match suggestions."""
    return _fail(f"unknown {kind} {value!r}", _suggest(value, known))


def _format_profile(summary: Dict) -> str:
    """Human rendering of an :func:`repro.obs.profile_summary` payload."""
    parts = []
    span_rows = {
        name: {
            "count": entry["count"],
            "total_ms": entry["total_ms"],
            "mean_ms": entry["mean_ms"],
            "max_ms": entry["max_ms"],
        }
        for name, entry in summary["spans"].items()
    }
    if span_rows:
        parts.append(
            format_series_table(
                span_rows, precision=2, title="Span summary", row_header="span"
            )
        )
    metrics = summary["metrics"]
    if metrics:
        lines = ["metrics:"]
        for key, value in metrics.items():
            if isinstance(value, dict):
                lines.append(
                    f"  {key}: count={value['count']} mean={value['mean']:.3f} "
                    f"min={value['min']:.3f} max={value['max']:.3f}"
                )
            else:
                lines.append(f"  {key}: {value}")
        parts.append("\n".join(lines))
    return "\n\n".join(parts) if parts else "no spans recorded"


@contextlib.contextmanager
def _observation_scope(args: argparse.Namespace, label: str):
    """Trace a command's run when ``--profile`` / ``--trace-out`` ask for it.

    On exit: ``--trace-out`` writes the session to the requested file and
    ``--profile`` prints the summary table to *stderr* -- stdout belongs to
    the command's own (often JSON) output.
    """
    from . import obs

    trace_out = getattr(args, "trace_out", None)
    profiling = getattr(args, "profile", False) or trace_out is not None
    if not profiling:
        yield
        return
    with obs.observation(label) as session:
        yield
    if trace_out is not None:
        path = obs.write_session(session, Path(trace_out))
        _LOG.info("wrote trace to %s", path)
    if getattr(args, "profile", False):
        summary = obs.profile_summary(session.spans, session.metrics.snapshot())
        print(_format_profile(summary), file=sys.stderr)


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result, indent=2, default=float))
        return
    if isinstance(result, dict) and result and isinstance(next(iter(result.values())), dict):
        flattened = {}
        for row, columns in result.items():
            flattened[str(row)] = {
                str(col): (value if isinstance(value, (int, float, str)) else str(value))
                for col, value in columns.items()
            }
        print(format_series_table(flattened, precision=2))
    else:
        print(result)


# ---------------------------------------------------------------------- #
# Trace subcommands
# ---------------------------------------------------------------------- #
def _write_trace_output(
    trace: WriteTrace,
    args: argparse.Namespace,
    profile: Optional[str] = None,
    seed: Optional[int] = None,
) -> int:
    """Store a trace per ``--out`` / ``--corpus`` and report where it went."""
    from .traces import TraceCorpus

    try:
        if args.corpus is not None:
            path = TraceCorpus(args.corpus).add(
                trace, name=args.name, profile=profile, seed=seed
            )
        else:  # --out (argparse enforces exactly one of --out/--corpus)
            if args.name:
                trace.name = args.name
            path = trace.save(args.out)
    except (TraceError, OSError) as exc:  # missing directory, permissions, ...
        return _fail(str(exc))
    print(f"wrote {len(trace)} write requests to {path}")
    return 0


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    if args.benchmark not in ALL_BENCHMARKS:
        return _unknown_name("benchmark", args.benchmark, ALL_BENCHMARKS)
    trace = generate_benchmark_trace(args.benchmark, args.length, args.seed)
    if args.name:
        trace.name = args.name
    return _write_trace_output(trace, args, profile=args.benchmark, seed=args.seed)


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from .traces import (
        TRACE_SUFFIX,
        TraceCorpus,
        read_npz_trace_lines,
        read_trace_header,
        stream_ingest_to_npz,
        stream_ingest_to_wtrc,
    )

    if args.profile not in ALL_BENCHMARKS:
        return _unknown_name("profile", args.profile, ALL_BENCHMARKS)
    streamed_target = None
    corpus = None
    if args.corpus is not None:
        corpus = TraceCorpus(args.corpus)
        name = args.name or Path(args.input).stem
        try:
            TraceCorpus.validate_name(name)
        except TraceError as exc:
            return _fail(str(exc))
        streamed_target = corpus.root / f"{name}{TRACE_SUFFIX}"
    elif Path(args.out).suffix == TRACE_SUFFIX:
        name = args.name or Path(args.input).stem
        streamed_target = Path(args.out)
    if streamed_target is not None:
        # Raw-format targets stream: parse -> synthesise -> write, one chunk
        # at a time, so multi-GB ASCII traces convert with bounded memory.
        try:
            stream_ingest_to_wtrc(
                args.input,
                streamed_target,
                fmt=args.fmt,
                profile=args.profile,
                name=name,
                seed=args.seed,
            )
            if corpus is not None:
                corpus.add_path(
                    streamed_target, name=name, profile=args.profile, seed=args.seed
                )
            n_lines = read_trace_header(streamed_target).n_lines
        except (TraceError, OSError) as exc:
            return _fail(str(exc))
        print(f"wrote {n_lines} write requests to {streamed_target}")
        return 0
    # .npz archives stream too: spooled columns are fed straight into the
    # compressed zip members, so no target format materialises the trace.
    out = Path(args.out)
    if out.suffix != ".npz":  # mirror WriteTrace.save's suffix coercion
        out = out.with_name(out.name + ".npz")
    try:
        stream_ingest_to_npz(
            args.input,
            out,
            fmt=args.fmt,
            profile=args.profile,
            name=args.name or Path(args.input).stem,
            seed=args.seed,
        )
        n_lines = read_npz_trace_lines(out)
    except (TraceError, OSError) as exc:
        return _fail(str(exc))
    print(f"wrote {n_lines} write requests to {out}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from .traces import is_wtrc_file, read_trace_header

    path = Path(args.path)
    try:
        is_wtrc = path.exists() and is_wtrc_file(path)
    except TraceError as exc:
        return _fail(str(exc))
    try:
        if is_wtrc and not args.stats:
            # Header-only: O(1) regardless of trace size.
            header = read_trace_header(path)
            info = {
                "name": header.name,
                "requests": header.n_lines,
                "has_addresses": header.has_addresses,
                "memory_mapped": True,
                "metadata": dict(header.metadata),
            }
        else:
            trace = WriteTrace.load(path)
            info = {
                "name": trace.name,
                "requests": len(trace),
                "has_addresses": trace.addresses is not None,
                "memory_mapped": trace.mmap_path is not None,
                "metadata": dict(trace.metadata),
            }
            if args.stats:
                info["changed_bit_fraction"] = round(trace.changed_bit_fraction(), 6)
    except TraceError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(info, indent=2, default=str))
    else:
        for key, value in info.items():
            print(f"{key}: {value}")
    return 0


def _cmd_trace_ls(args: argparse.Namespace) -> int:
    from .traces import TraceCorpus

    corpus = TraceCorpus(args.corpus)
    if not corpus.index_path.exists():
        return _fail(f"{args.corpus} is not a trace corpus (no {corpus.index_path.name})")
    try:
        entries = corpus.entries()
    except TraceError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps({name: entry.as_dict() for name, entry in sorted(entries.items())}, indent=2))
        return 0
    if not entries:
        print("corpus is empty")
        return 0
    rows = {
        name: {
            "lines": entry.n_lines,
            "profile": entry.profile or "-",
            # verbatim, not through the numeric formatter ("2018", not "2,018")
            "seed": str(entry.seed) if entry.seed is not None else "-",
            "file": entry.file,
        }
        for name, entry in sorted(entries.items())
    }
    print(format_series_table(rows, row_header="trace"))
    return 0


def _cmd_trace_gc(args: argparse.Namespace) -> int:
    from .traces import TraceCorpus

    corpus = TraceCorpus(args.corpus)
    if not corpus.root.is_dir():
        return _fail(f"{args.corpus} is not a trace corpus directory")
    try:
        report = corpus.gc(budget_bytes=args.max_bytes, dry_run=args.dry_run)
    except TraceError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    verb = "would evict" if args.dry_run else "evicted"
    removed = report["removed"]
    if removed:
        print(f"{verb} {len(removed)} cached trace(s), freeing {report['freed_bytes']} bytes:")
        for name in removed:
            print(f"  cache/{name}")
    else:
        print("cache already within budget; nothing to evict")
    print(f"cache size: {report['kept_bytes']} bytes (budget {report['budget_bytes']})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "gen": _cmd_trace_gen,
        "convert": _cmd_trace_convert,
        "info": _cmd_trace_info,
        "ls": _cmd_trace_ls,
        "gc": _cmd_trace_gc,
    }
    return handlers[args.trace_command](args)


# ---------------------------------------------------------------------- #
# Bench subcommands
# ---------------------------------------------------------------------- #
def _bench_registry(args: argparse.Namespace):
    """Resolve ``--bench-dir`` and discover the benchmark registry."""
    from .bench import default_bench_dir, discover

    bench_dir = Path(args.bench_dir) if args.bench_dir else default_bench_dir()
    return bench_dir, discover(bench_dir)


def _cmd_bench_ls(args: argparse.Namespace) -> int:
    from .bench import partition

    try:
        _bench_dir, registry = _bench_registry(args)
        shards = partition(registry, args.shards) if args.shards else None
    except (ReproError, OSError) as exc:
        return _fail(str(exc))
    shard_of = {}
    if shards is not None:
        for index, names in enumerate(shards, 1):
            for name in names:
                shard_of[name] = index
    if args.json:
        payload = {
            name: {
                "figure": bench.spec.figure,
                "title": bench.spec.title,
                "module": bench.spec.module,
                "group": bench.spec.group,
                "cost": bench.spec.cost,
                "env": list(bench.spec.env),
                "artifacts": list(bench.spec.artifacts),
                "perf_artifacts": list(bench.spec.perf_artifacts),
                "gates": len(bench.spec.gates),
                "backend_sensitive": bench.spec.backend_sensitive,
                **({"shard": shard_of[name]} if name in shard_of else {}),
            }
            for name, bench in registry.items()
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = {}
    for name, bench in registry.items():
        row = {
            "figure": bench.spec.figure,
            "cost_s": bench.spec.cost,
            "group": bench.spec.group if bench.spec.group != name else "-",
            "artifacts": len(bench.spec.all_artifacts),
            "gates": len(bench.spec.gates),
            "backend": "sensitive" if bench.spec.backend_sensitive else "-",
        }
        if name in shard_of:
            row["shard"] = f"{shard_of[name]}/{args.shards}"
        rows[name] = row
    print(format_series_table(rows, row_header="bench"))
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .bench import copy_trajectory, parse_shard, run_shard

    try:
        bench_dir, registry = _bench_registry(args)
        index, count = parse_shard(args.shard)
        report = run_shard(
            bench_dir=bench_dir,
            shard=(index, count),
            results_dir=Path(args.results) if args.results else None,
            jobs=args.jobs,
            registry=registry,
            profile=args.profile,
            trace_out=Path(args.trace_out) if args.trace_out else None,
            results_store=Path(args.results_dir) if args.results_dir else None,
        )
    except (ReproError, OSError) as exc:
        return _fail(str(exc))
    if report.trace_path is not None:
        _LOG.info("wrote span log to %s", report.trace_path)
    if args.json:
        payload = report.as_dict()
        payload["record"] = str(report.record_path)
        if report.manifest_path is not None:
            payload["manifest"] = str(report.manifest_path)
        if report.trace_path is not None:
            payload["trace"] = str(report.trace_path)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = {
            outcome.name: {
                "status": outcome.status,
                "wall_clock_s": outcome.wall_clock_s,
                "functions": len(outcome.functions),
            }
            for outcome in report.outcomes
        }
        if rows:
            title = f"Benchmark shard {index}/{count} ({report.wall_clock_s:.1f}s)"
            print(format_series_table(rows, title=title, row_header="bench"))
        else:
            print(f"shard {index}/{count} is empty (more shards than groups)")
    for outcome in report.failures:
        print(f"\nFAILED {outcome.name}:\n{outcome.error}", file=sys.stderr)
    if report.failures:
        return 1
    if report.record_path is not None and not args.no_trajectory and count == 1:
        try:
            copy_trajectory(
                report.record_path.parent, Path(args.trajectory_dir or ".")
            )
        except OSError as exc:
            return _fail(f"cannot copy the BENCH trajectory: {exc}")
    return 0


def _cmd_bench_merge(args: argparse.Namespace) -> int:
    from .bench import copy_trajectory, merge_shards

    try:
        bench_dir, registry = _bench_registry(args)
        out_dir = Path(args.out) if args.out else bench_dir / "results"
        payload = merge_shards(
            [Path(directory) for directory in args.shard_dirs],
            out_dir,
            registry={name: bench.spec for name, bench in registry.items()},
        )
        if not args.no_trajectory:
            copy_trajectory(out_dir, Path(args.trajectory_dir or "."))
    except (ReproError, OSError) as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"merged {len(payload['benchmarks'])} benchmarks from "
            f"{len(args.shard_dirs)} shard director"
            f"{'y' if len(args.shard_dirs) == 1 else 'ies'} into {out_dir}"
        )
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .bench import compare, update_baselines

    try:
        bench_dir, registry = _bench_registry(args)
        results = Path(args.results) if args.results else bench_dir / "results"
        baselines = Path(args.baselines) if args.baselines else bench_dir / "baselines"
        specs = {name: bench.spec for name, bench in registry.items()}
        if args.update:
            written = update_baselines(specs, results, baselines)
            for path in written:
                print(f"wrote {path}")
            return 0
        report = compare(specs, results, baselines, strict=args.strict)
    except (ReproError, OSError) as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        rows = {}
        for check in report.checks:
            change = check.change_pct
            rows[f"{check.bench}: {check.metric}"] = {
                "baseline": check.baseline if check.baseline is not None else "-",
                "current": check.current if check.current is not None else "-",
                "change": f"{change:+.1f}%" if change is not None else "-",
                "allowed": f"{check.direction} +-{check.tolerance_pct:g}%",
                "status": check.status,
            }
        if rows:
            print(format_series_table(rows, precision=4, row_header="gate"))
        else:
            print("no perf gates registered")
    # Diagnostics go to stderr via logging, never interleaved with the
    # result table/JSON on stdout.
    for check in report.checks:
        if check.detail:
            _LOG.warning("%s: %s: %s", check.bench, check.metric, check.detail)
    if not report.ok:
        _LOG.error("perf regression gate FAILED")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    handlers = {
        "ls": _cmd_bench_ls,
        "run": _cmd_bench_run,
        "merge": _cmd_bench_merge,
        "compare": _cmd_bench_compare,
    }
    return handlers[args.bench_command](args)


# ---------------------------------------------------------------------- #
# Evaluate
# ---------------------------------------------------------------------- #
def _load_evaluation_trace(args: argparse.Namespace):
    """Resolve ``--trace`` into a trace plus a cleanup callback.

    ``.wtrc``/``.npz`` files (by suffix or sniffed magic) load as before --
    raw traces memory-mapped, archives decompressed.  Anything else is
    treated as a raw ASCII address trace and *streamed*: ingest writes a
    temporary ``.wtrc`` one chunk at a time, the evaluation memory-maps it
    (so ``--jobs`` ships workers mmap descriptors), and the cleanup callback
    removes the temporary file afterwards.  Peak memory is bounded by the
    synthesis quantum, never the trace length.
    """
    import shutil
    import tempfile

    from .traces import is_wtrc_file, stream_ingest_to_wtrc
    from .traces.store import load_trace

    path = Path(args.trace)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    known_container = path.suffix in (".wtrc", ".npz")
    if not known_container and path.is_file():
        with open(path, "rb") as fh:
            magic = fh.read(4)
        known_container = magic.startswith(b"PK") or is_wtrc_file(path)
    if known_container or not path.is_file():
        return WriteTrace.load(args.trace), lambda: None
    if args.content_profile not in ALL_BENCHMARKS:
        raise TraceError(
            f"unknown profile {args.content_profile!r} for ASCII trace synthesis "
            f"(have: {', '.join(ALL_BENCHMARKS)})"
        )
    tmp_dir = Path(tempfile.mkdtemp(prefix="wlcrc-stream-"))
    try:
        # seed=None matches `trace convert`'s default synthesis, so
        # evaluating the ASCII file directly is bit-identical to converting
        # it first and evaluating the .wtrc (--seed only seeds generated
        # benchmark traces and disturbance sampling).
        spooled = stream_ingest_to_wtrc(
            path,
            tmp_dir / f"{path.stem}.wtrc",
            fmt=args.trace_format,
            profile=args.content_profile,
        )
        return load_trace(spooled, mmap=True), lambda: shutil.rmtree(
            tmp_dir, ignore_errors=True
        )
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise


def _cmd_evaluate(args: argparse.Namespace) -> int:
    error = _check_array_backend(args.array_backend)
    if error is not None:
        return error
    config = _config_from_args(args)
    try:
        encoder = make_scheme(args.scheme)
    except (ReproError, ValueError):
        return _unknown_name("scheme", args.scheme, available_schemes())
    cleanup = lambda: None  # noqa: E731 - trivial default
    if args.trace is not None:
        try:
            trace, cleanup = _load_evaluation_trace(args)
        except (TraceError, OSError) as exc:
            candidates = ()
            parent = Path(args.trace).parent
            if not Path(args.trace).exists() and parent.is_dir():
                candidates = _suggest(
                    Path(args.trace).name,
                    [p.name for p in parent.iterdir() if p.suffix in (".wtrc", ".npz")],
                )
            return _fail(str(exc), candidates)
        label = args.scheme  # keyed by scheme either way, so outputs compare
    else:
        if args.benchmark not in ALL_BENCHMARKS:
            return _unknown_name("benchmark", args.benchmark, ALL_BENCHMARKS)
        if config.trace_dir:
            from .traces import TraceCorpus

            try:
                trace = TraceCorpus(
                    config.trace_dir, cache_budget_bytes=config.trace_cache_budget
                ).get_or_generate(args.benchmark, config.trace_length, config.seed)
            except (TraceError, OSError) as exc:
                return _fail(f"cannot use trace corpus {config.trace_dir}: {exc}")
        else:
            trace = generate_benchmark_trace(args.benchmark, config.trace_length, config.seed)
        label = args.scheme
    try:
        with _observation_scope(args, f"evaluate-{args.scheme}"):
            results = evaluate_schemes(
                [encoder],
                trace,
                config.evaluation,
                n_jobs=config.n_jobs,
                backend=config.backend,
                results_store=config.results_store(),
                task_timeout=config.task_timeout,
            )
    finally:
        cleanup()
    metrics = next(iter(results.values()))
    _print_result({label: metrics.as_dict()}, args.json)
    return 0


# ---------------------------------------------------------------------- #
# Profile
# ---------------------------------------------------------------------- #
def _cmd_profile(args: argparse.Namespace) -> int:
    from . import obs

    path = Path(args.path)
    if not path.is_file():
        return _fail(f"trace file not found: {path}")
    try:
        if path.suffix == ".jsonl":
            spans, metrics, _meta = obs.read_jsonl(path)
        else:
            spans, metrics = obs.read_chrome_trace(path)
    except (ValueError, OSError) as exc:
        return _fail(f"cannot parse trace {path}: {exc}")
    summary = obs.profile_summary(spans, metrics)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_format_profile(summary))
    return 0


# ---------------------------------------------------------------------- #
# Serve / submit
# ---------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ResultStore
    from .serve.service import EvaluationService

    store = ResultStore(Path(args.results_dir), max_bytes=args.results_budget)
    service = EvaluationService(
        store,
        n_jobs=args.jobs,
        backend=args.backend,
        trace_dir=Path(args.trace_dir) if args.trace_dir else None,
        queue_size=args.queue_size,
        drain_workers=args.drain_workers,
    )

    async def _serve() -> None:
        await service.start(args.host, args.port)
        # The bound address goes to stdout (machine-parseable, like every
        # other stdout line of this CLI) so scripts using --port 0 can read
        # the ephemeral port; diagnostics stay on stderr.
        print(f"http://{args.host}:{service.port}", flush=True)
        _LOG.info(
            "serving on %s:%s (jobs=%s backend=%s store=%s)",
            args.host, service.port, args.jobs, args.backend, store.root,
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        _LOG.info("interrupted; shutting down")
    except OSError as exc:
        return _fail(f"cannot serve on {args.host}:{args.port}: {exc}")
    finally:
        from .evaluation.parallel import shutdown_shared_runners

        shutdown_shared_runners()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve.service import submit_request

    trace_ref: Dict[str, object]
    if args.trace is not None:
        path = Path(args.trace)
        if not path.is_file():
            return _fail(f"trace file not found: {path}")
        if path.suffix != ".wtrc":
            return _fail(
                f"only .wtrc traces upload directly: {path} "
                "(convert first with 'repro trace convert')"
            )
        try:
            status, response = submit_request(
                args.url,
                "/traces",
                body=path.read_bytes(),
                timeout=args.timeout,
                retries=args.retries,
                backoff_s=args.retry_backoff,
            )
        except (OSError, ValueError) as exc:
            return _fail(f"cannot reach {args.url}: {exc}")
        if status == 0:
            return _fail(
                f"cannot reach {args.url}: {response.get('message', response)}"
            )
        if status != 200:
            return _fail(f"upload failed ({status}): {response}")
        trace_ref = {"digest": response["digest"]}
    elif args.trace_digest is not None:
        trace_ref = {"digest": args.trace_digest}
    elif args.corpus_name is not None:
        trace_ref = {"corpus": args.corpus_name}
    else:
        trace_ref = {
            "profile": args.benchmark or "gcc",
            "length": args.trace_length,
            "seed": args.seed,
        }
    payload = {
        "scheme": args.scheme,
        "trace": trace_ref,
        "config": {
            "chunk_size": args.chunk_size,
            "seed": args.seed,
            "sample_disturbance": args.sample_disturbance,
        },
    }
    if args.deadline_ms is not None:
        payload["deadline_ms"] = args.deadline_ms
    try:
        status, response = submit_request(
            args.url,
            "/evaluate",
            payload=payload,
            timeout=args.timeout,
            retries=args.retries,
            backoff_s=args.retry_backoff,
        )
    except (OSError, ValueError) as exc:
        return _fail(f"cannot reach {args.url}: {exc}")
    if status == 0:
        return _fail(f"cannot reach {args.url}: {response.get('message', response)}")
    if status != 200:
        return _fail(
            f"evaluation failed ({status} {response.get('error', '?')}): "
            f"{response.get('message', response)}"
        )
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    else:
        rows = {
            args.scheme: {
                "cached": response["cached"],
                "requests": response["requests"],
                **{k: round(v, 6) for k, v in response["summary"].items()},
            }
        }
        print(format_series_table(rows, title="Evaluation", row_header="scheme"))
        _LOG.info("result key %s (%.3fs)", response["key"], response["elapsed_s"])
    return 0


# ---------------------------------------------------------------------- #
# Docs
# ---------------------------------------------------------------------- #
def _cmd_docs(args: argparse.Namespace) -> int:
    from .docsgen import check_links, generate_cli_reference

    docs_dir = Path(args.docs_dir)
    reference = generate_cli_reference()
    cli_page = docs_dir / "cli.md"
    if args.docs_command == "cli":
        if args.check:
            current = cli_page.read_text() if cli_page.is_file() else None
            if current != reference:
                return _fail(
                    f"{cli_page} is stale; regenerate with "
                    "'repro docs cli --write'"
                )
            print(f"{cli_page} is current")
            return 0
        if args.write:
            docs_dir.mkdir(parents=True, exist_ok=True)
            cli_page.write_text(reference)
            print(str(cli_page))
            return 0
        print(reference, end="")
        return 0
    # docs check: link integrity over docs/ + README, and cli.md freshness.
    if not docs_dir.is_dir():
        return _fail(f"docs directory not found: {docs_dir}")
    pages = sorted(docs_dir.glob("*.md"))
    readme = docs_dir.parent / "README.md"
    if readme.is_file():
        pages.append(readme)
    problems = check_links(pages)
    if cli_page.is_file():
        if cli_page.read_text() != reference:
            problems.append(f"{cli_page}: stale (run 'repro docs cli --write')")
    else:
        problems.append(f"{cli_page}: missing (run 'repro docs cli --write')")
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"docs ok: {len(pages)} pages checked")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``wlcrc-repro`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    if getattr(args, "inject_faults", None):
        from . import faults

        try:
            faults.install(args.inject_faults)
        except faults.FaultPlanError as exc:
            return _fail(str(exc))

    if args.command == "list":
        print("experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("schemes:")
        for name in available_schemes():
            print(f"  {name}")
        print("benchmarks:")
        for name in ALL_BENCHMARKS:
            print(f"  {name}")
        return 0

    if args.command == "trace":
        return _cmd_trace(args)

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "evaluate":
        return _cmd_evaluate(args)

    if args.command == "profile":
        return _cmd_profile(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "submit":
        return _cmd_submit(args)

    if args.command == "docs":
        return _cmd_docs(args)

    experiment_name = args.experiment if args.command == "run" else args.command
    error = _check_array_backend(args.array_backend)
    if error is not None:
        return error
    config = _config_from_args(args)
    try:
        with _observation_scope(args, f"experiment-{experiment_name}"):
            result = EXPERIMENTS[experiment_name](config)
    except (ReproError, OSError) as exc:
        return _fail(str(exc))
    _print_result(result, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
