"""`repro.obs` — zero-dependency tracing, metrics, and profiling.

Off by default: every primitive is a no-op until an :func:`observation`
session is active, so instrumentation stays in the hot paths permanently
without perturbing benchmarks or bit-identity.
"""

from .core import (
    ObsPayload,
    ObsSession,
    SpanRecord,
    TaskContext,
    absorb,
    active_session,
    collect,
    count,
    gauge,
    is_active,
    observation,
    observe,
    peak_rss_bytes,
    span,
    task_context,
    timer,
)
from .export import (
    merge_jsonl_to_chrome,
    profile_summary,
    read_chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_session,
)

__all__ = [
    "ObsPayload",
    "ObsSession",
    "SpanRecord",
    "TaskContext",
    "absorb",
    "active_session",
    "collect",
    "count",
    "gauge",
    "is_active",
    "merge_jsonl_to_chrome",
    "observation",
    "observe",
    "peak_rss_bytes",
    "profile_summary",
    "read_chrome_trace",
    "read_jsonl",
    "span",
    "task_context",
    "timer",
    "write_chrome_trace",
    "write_jsonl",
    "write_session",
]
