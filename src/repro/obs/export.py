"""Exporters for observation sessions.

Three output shapes, all derived from the same ``(spans, metrics)`` pair:

* **JSON-lines span log** (``.trace.jsonl``) -- one self-describing JSON
  object per line: a ``meta`` header, one ``span`` line per record, and a
  trailing ``metrics`` snapshot.  Line-oriented so sharded bench runs can
  concatenate per-shard logs without parsing them.
* **Chrome trace-event JSON** (``.trace.json``) -- the ``traceEvents``
  array format Perfetto and ``chrome://tracing`` load directly: complete
  ("X") events with microsecond timestamps plus process-name metadata.
* **Profile summary** -- per-span-name count/total/mean/max aggregates and
  a flat metrics listing, rendered through the repo's standard series
  table for the ``repro profile`` command.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .core import MetricsRegistry, ObsSession, SpanRecord

__all__ = [
    "merge_jsonl_to_chrome",
    "profile_summary",
    "read_chrome_trace",
    "read_jsonl",
    "spans_to_chrome_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_session",
]

JSONL_SCHEMA = 1


def write_jsonl(
    path: Path,
    spans: Sequence[SpanRecord],
    metrics: Dict[str, Dict[str, Any]],
    *,
    trace_id: str,
    label: str,
) -> Path:
    """Write one span log: meta line, span lines, metrics line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        meta = {
            "type": "meta",
            "schema": JSONL_SCHEMA,
            "trace_id": trace_id,
            "label": label,
        }
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for record in sorted(spans, key=lambda r: (r.start_ns, r.span_id)):
            fh.write(
                json.dumps({"type": "span", **record.as_dict()}, sort_keys=True)
                + "\n"
            )
        fh.write(
            json.dumps({"type": "metrics", "values": metrics}, sort_keys=True) + "\n"
        )
    return path


def read_jsonl(
    path: Path,
) -> Tuple[List[SpanRecord], Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """Read a span log back as ``(spans, metrics, meta)``.

    Tolerates concatenated logs (multiple meta/metrics lines): spans
    accumulate and metrics snapshots merge, which is exactly what the
    sharded bench merge needs.
    """
    spans: List[SpanRecord] = []
    registry = MetricsRegistry()
    meta: Dict[str, Any] = {}
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.get("type")
            if kind == "span":
                spans.append(SpanRecord.from_dict(payload))
            elif kind == "metrics":
                registry.merge(payload.get("values") or {})
            elif kind == "meta" and not meta:
                meta = payload
    return spans, registry.snapshot(), meta


def spans_to_chrome_events(
    spans: Sequence[SpanRecord], *, process_labels: Optional[Dict[int, str]] = None
) -> List[dict]:
    """Convert spans to Chrome trace events (ts/dur in microseconds)."""
    if not spans:
        return []
    t0 = min(record.start_ns for record in spans)
    events: List[dict] = []
    labels = dict(process_labels or {})
    for record in sorted(spans, key=lambda r: (r.start_ns, r.span_id)):
        args = {k: v for k, v in record.attrs.items()}
        args["id"] = record.span_id
        if record.parent_id:
            args["parent"] = record.parent_id
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": (record.start_ns - t0) / 1e3,
                "dur": record.dur_ns / 1e3,
                "pid": record.pid,
                "tid": record.tid,
                "args": args,
            }
        )
        labels.setdefault(
            record.pid,
            "main" if record.pid == os.getpid() else f"worker-{record.pid}",
        )
    for pid, label in sorted(labels.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    return events


def write_chrome_trace(
    path: Path,
    spans: Sequence[SpanRecord],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    *,
    process_labels: Optional[Dict[int, str]] = None,
) -> Path:
    """Write a Perfetto-loadable Chrome trace-event file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document: Dict[str, Any] = {
        "traceEvents": spans_to_chrome_events(spans, process_labels=process_labels),
        "displayTimeUnit": "ms",
    }
    if metrics:
        document["otherData"] = {"metrics": metrics}
    path.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return path


def merge_jsonl_to_chrome(paths: Iterable[Path], out: Path) -> Path:
    """Merge per-shard span logs into one Chrome trace."""
    all_spans: List[SpanRecord] = []
    registry = MetricsRegistry()
    labels: Dict[int, str] = {}
    for path in sorted(Path(p) for p in paths):
        spans, metrics, meta = read_jsonl(path)
        all_spans.extend(spans)
        registry.merge(metrics)
        label = meta.get("label")
        if label:
            for record in spans:
                if record.parent_id is None:
                    labels.setdefault(record.pid, str(label))
    return write_chrome_trace(
        out, all_spans, registry.snapshot(), process_labels=labels
    )


def read_chrome_trace(
    path: Path,
) -> Tuple[List[SpanRecord], Dict[str, Dict[str, Any]]]:
    """Read a Chrome trace-event file back as ``(spans, metrics)``.

    Inverse of :func:`write_chrome_trace` up to the absolute epoch (``ts`` is
    written relative to the earliest span, so reconstructed ``start_ns``
    values are relative too -- durations and ordering are exact, which is all
    the profile summary needs).
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    spans: List[SpanRecord] = []
    for event in payload.get("traceEvents") or []:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = str(args.pop("id", "")) or f"chrome.{len(spans)}"
        parent = args.pop("parent", None)
        spans.append(
            SpanRecord(
                name=event.get("name", "?"),
                start_ns=int(round(float(event.get("ts", 0)) * 1e3)),
                dur_ns=int(round(float(event.get("dur", 0)) * 1e3)),
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                span_id=span_id,
                parent_id=str(parent) if parent is not None else None,
                attrs=args,
            )
        )
    metrics = (payload.get("otherData") or {}).get("metrics") or {}
    return spans, metrics


def write_session(
    session: ObsSession, path: Path, *, fmt: Optional[str] = None
) -> Path:
    """Write a finished session; format inferred from suffix unless given.

    ``.jsonl`` -> span log, anything else -> Chrome trace JSON.
    """
    path = Path(path)
    if fmt is None:
        fmt = "jsonl" if path.suffix == ".jsonl" else "chrome"
    if fmt == "jsonl":
        return write_jsonl(
            path,
            session.spans,
            session.metrics.snapshot(),
            trace_id=session.trace_id,
            label=session.label,
        )
    return write_chrome_trace(path, session.spans, session.metrics.snapshot())


def profile_summary(
    spans: Sequence[SpanRecord], metrics: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Aggregate spans/metrics into the ``repro profile`` summary payload.

    Returns ``{"spans": {name: {count,total_ms,mean_ms,max_ms}},
    "metrics": {key: value-or-histogram-dict}}`` with span rows sorted by
    total time descending.
    """
    rows: Dict[str, Dict[str, float]] = {}
    for record in spans:
        entry = rows.setdefault(
            record.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        dur_ms = record.dur_ns / 1e6
        entry["count"] += 1
        entry["total_ms"] += dur_ms
        entry["max_ms"] = max(entry["max_ms"], dur_ms)
    for entry in rows.values():
        entry["mean_ms"] = entry["total_ms"] / entry["count"] if entry["count"] else 0.0
    ordered = dict(
        sorted(rows.items(), key=lambda item: item[1]["total_ms"], reverse=True)
    )
    flat_metrics: Dict[str, Any] = {}
    for key in sorted(metrics):
        entry = metrics[key]
        if entry.get("type") in ("counter", "gauge"):
            flat_metrics[key] = entry["value"]
        else:
            flat_metrics[key] = {
                "count": entry["count"],
                "total": entry["total"],
                "min": entry["min"],
                "max": entry["max"],
                "mean": entry["total"] / entry["count"] if entry["count"] else 0.0,
            }
    return {"spans": ordered, "metrics": flat_metrics}
