"""Span-based tracing and a metrics registry for the evaluation pipeline.

The module keeps one process-wide *session* (:class:`ObsSession`).  When no
session is active -- the default -- every entry point degrades to a no-op
whose cost is one module-global load and a ``None`` comparison, so the hot
paths of the evaluation engine can stay instrumented permanently without
perturbing the benchmarks (<3% overhead is the repo's acceptance bar; in
practice the disabled path is unmeasurable next to a 2048-line encode).

Three primitives:

``span(name, **attrs)``
    A context manager timing one region.  Spans nest: each thread keeps a
    stack of open span ids, so a span opened inside another becomes its
    child and the exporters can rebuild the tree.
``count(name, value=1, **labels)`` / ``observe(name, value, **labels)``
    Counters and min/max/total histograms in the session's
    :class:`MetricsRegistry`, keyed by name plus sorted labels.
``gauge(name, value, **labels)``
    High-water-mark gauges: recording keeps the maximum value seen, and
    merging across workers keeps the maximum again, so a per-process peak
    (e.g. ``peak_rss_bytes``) aggregates to the fleet-wide peak.
``timer(name, **labels)``
    A context manager recording a region's duration into a histogram (used
    for the per-backend kernel timings, where one span per kernel call would
    drown the trace).

Cross-process stitching mirrors the engine's determinism contract: the
parent captures a picklable :class:`TaskContext` (trace id + parent span id)
into each dispatched shard, the worker wraps its evaluation in
:func:`collect` -- which records into the parent's session directly when the
worker shares the process (serial and thread backends) and into an ephemeral
buffer otherwise -- and the parent :func:`absorb`\\ s the returned
:class:`ObsPayload` in the same submission order the metric reduction
already uses.  Spans and metrics ride *alongside* the seeded RNG streams,
never inside them, so instrumented runs are bit-identical to uninstrumented
ones.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "ObsPayload",
    "ObsSession",
    "SpanRecord",
    "TaskContext",
    "absorb",
    "active_session",
    "collect",
    "count",
    "gauge",
    "is_active",
    "observation",
    "observe",
    "peak_rss_bytes",
    "span",
    "task_context",
    "timer",
]

#: Process-wide span-id counter; shared by every session of the process so a
#: worker that opens one ephemeral collection per shard still hands out
#: unique ids.
_IDS = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid()}.{next(_IDS)}"


@dataclass
class SpanRecord:
    """One completed span: a named, timed region of one thread."""

    name: str
    start_ns: int  # epoch nanoseconds (comparable across processes)
    dur_ns: int
    pid: int
    tid: int
    span_id: str
    parent_id: Optional[str]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.span_id,
            "parent": self.parent_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            start_ns=payload["start_ns"],
            dur_ns=payload["dur_ns"],
            pid=payload["pid"],
            tid=payload["tid"],
            span_id=payload["id"],
            parent_id=payload.get("parent"),
            attrs=dict(payload.get("attrs") or {}),
        )


class MetricsRegistry:
    """Counters and lightweight histograms, keyed by ``name{label=value,...}``.

    Histograms keep count/total/min/max -- enough for the profile summary --
    instead of buckets, so snapshots stay tiny and merging across processes
    is exact.  All mutation is lock-protected: the thread evaluation backend
    records from worker threads directly.
    """

    def __init__(self) -> None:
        self._values: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    @staticmethod
    def key(name: str, labels: Dict[str, Any]) -> str:
        if not labels:
            return name
        rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{rendered}}}"

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        key = self.key(name, labels)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                self._values[key] = {"type": "counter", "value": value}
            else:
                entry["value"] += value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = self.key(name, labels)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                self._values[key] = {
                    "type": "histogram",
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                }
            else:
                entry["count"] += 1
                entry["total"] += value
                entry["min"] = min(entry["min"], value)
                entry["max"] = max(entry["max"], value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Record a high-water-mark gauge (keeps the maximum value seen)."""
        key = self.key(name, labels)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                self._values[key] = {"type": "gauge", "value": value}
            else:
                entry["value"] = max(entry["value"], value)

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, histograms pool, gauges max-merge -- a worker's peak
        memory gauge therefore surfaces as the maximum across processes.
        """
        with self._lock:
            for key, other in snapshot.items():
                entry = self._values.get(key)
                if entry is None:
                    self._values[key] = dict(other)
                elif other.get("type") == "counter":
                    entry["value"] += other["value"]
                elif other.get("type") == "gauge":
                    entry["value"] = max(entry["value"], other["value"])
                else:
                    entry["count"] += other["count"]
                    entry["total"] += other["total"]
                    entry["min"] = min(entry["min"], other["min"])
                    entry["max"] = max(entry["max"], other["max"])

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {key: dict(entry) for key, entry in self._values.items()}


@dataclass(frozen=True)
class TaskContext:
    """Picklable trace context a dispatched task carries into its worker."""

    trace_id: str
    parent_id: Optional[str]


@dataclass
class ObsPayload:
    """Spans and metrics a worker process ships back with its result."""

    spans: List[dict]
    metrics: Dict[str, Dict[str, Any]]


class ObsSession:
    """One observation: a root span, collected spans, and a metrics registry."""

    def __init__(self, label: str = "run", trace_id: Optional[str] = None):
        self.label = label
        self.trace_id = trace_id or f"{os.getpid():x}-{time.time_ns():x}"
        # Owning process: a fork-started pool worker inherits the parent's
        # _SESSION as a dead copy, and collect() must not record into it.
        self.pid = os.getpid()
        self.root_id = _new_id()
        self.start_ns = time.time_ns()
        self.spans: List[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- per-thread open-span stack ------------------------------------- #
    @property
    def stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_parent(self) -> str:
        stack = self.stack
        return stack[-1] if stack else self.root_id

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def finish(self) -> None:
        """Close the session by recording its root span."""
        end = time.time_ns()
        self.record(
            SpanRecord(
                name=self.label,
                start_ns=self.start_ns,
                dur_ns=end - self.start_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self.root_id,
                parent_id=None,
                attrs={"trace_id": self.trace_id},
            )
        )

    def payload(self) -> ObsPayload:
        with self._lock:
            spans = [record.as_dict() for record in self.spans]
        return ObsPayload(spans=spans, metrics=self.metrics.snapshot())


#: The process-wide active session (None = observability disabled).
_SESSION: Optional[ObsSession] = None


def is_active() -> bool:
    """Whether an observation session is collecting in this process."""
    return _SESSION is not None


def active_session() -> Optional[ObsSession]:
    return _SESSION


class _NullContext:
    """Shared no-op stand-in for spans and timers when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullContext":
        return self


_NULL = _NullContext()


class _Span:
    __slots__ = ("_session", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, session: ObsSession, name: str, attrs: Dict[str, Any]):
        self._session = session
        self.name = name
        self.attrs = attrs
        self.span_id = _new_id()
        self.parent_id: Optional[str] = None
        self._start = 0

    def set(self, **attrs: Any) -> "_Span":
        """Attach (or update) attributes of an open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        session = self._session
        self.parent_id = session.current_parent()
        session.stack.append(self.span_id)
        self._start = time.time_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.time_ns()
        session = self._session
        stack = session.stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        session.record(
            SpanRecord(
                name=self.name,
                start_ns=self._start,
                dur_ns=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self.span_id,
                parent_id=self.parent_id,
                attrs=self.attrs,
            )
        )
        return False


class _Timer:
    __slots__ = ("_session", "_name", "_labels", "_start")

    def __init__(self, session: ObsSession, name: str, labels: Dict[str, Any]):
        self._session = session
        self._name = name
        self._labels = labels
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        elapsed_ms = (time.perf_counter_ns() - self._start) / 1e6
        self._session.metrics.observe(self._name, elapsed_ms, **self._labels)
        return False


def span(name: str, **attrs: Any):
    """Context manager timing one named region (no-op without a session)."""
    session = _SESSION
    if session is None:
        return _NULL
    return _Span(session, name, attrs)


def timer(name: str, **labels: Any):
    """Context manager recording a duration histogram (milliseconds)."""
    session = _SESSION
    if session is None:
        return _NULL
    return _Timer(session, name, labels)


def count(name: str, value: float = 1, **labels: Any) -> None:
    """Increment a counter of the active session (no-op without one)."""
    session = _SESSION
    if session is not None:
        session.metrics.count(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram observation (no-op without a session)."""
    session = _SESSION
    if session is not None:
        session.metrics.observe(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Record a high-water-mark gauge (no-op without a session).

    Gauges keep the maximum value seen and max-merge across processes, so
    recording a per-process peak from every worker yields the run's peak.
    """
    session = _SESSION
    if session is not None:
        session.metrics.gauge(name, value, **labels)


def peak_rss_bytes() -> Optional[float]:
    """This process's peak resident-set size in bytes (high-water mark).

    Reads ``VmHWM`` from ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux) and returns
    ``None`` on platforms where neither source exists.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) * 1024.0
    except OSError:
        pass
    try:
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except Exception:  # pragma: no cover - exotic platforms only
        return None


@contextmanager
def observation(label: str = "run") -> Iterator[ObsSession]:
    """Activate a session for the duration of the block.

    Nested use inside an already active session yields the existing session
    and leaves its lifetime alone, so library code can call this defensively.
    """
    global _SESSION
    if _SESSION is not None:
        yield _SESSION
        return
    session = ObsSession(label)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = None
        session.finish()


def task_context() -> Optional[TaskContext]:
    """The context a task dispatched *now* should carry (None when disabled)."""
    session = _SESSION
    if session is None:
        return None
    return TaskContext(trace_id=session.trace_id, parent_id=session.current_parent())


class _Collector:
    """Handle :func:`collect` yields; ``payload()`` is what ships back."""

    __slots__ = ("_session",)

    def __init__(self, session: Optional[ObsSession]):
        self._session = session

    def payload(self) -> Optional[ObsPayload]:
        if self._session is None:
            return None
        return self._session.payload()


_INERT_COLLECTOR = _Collector(None)


@contextmanager
def collect(ctx: Optional[TaskContext]) -> Iterator[_Collector]:
    """Record one dispatched task's spans/metrics under ``ctx``.

    * ``ctx is None``: observability was off at dispatch -- pure no-op.
    * Same process, matching session (serial path, thread backend): record
      straight into the active session; worker threads get ``ctx.parent_id``
      pushed as their base frame so their spans stitch under the dispatch
      site.  ``payload()`` returns ``None`` -- nothing to ship.
    * Fresh worker process: an ephemeral session buffers the task's spans
      and metrics; ``payload()`` returns the picklable :class:`ObsPayload`
      for the parent to :func:`absorb`.
    """
    global _SESSION
    if ctx is None:
        yield _INERT_COLLECTOR
        return
    active = _SESSION
    # A session inherited through fork belongs to the parent process: its
    # records would die with this worker, so treat it as absent and buffer
    # into an ephemeral session instead.
    if active is not None and active.pid != os.getpid():
        active = None
    if active is not None:
        pushed = False
        if active.trace_id == ctx.trace_id and not active.stack and ctx.parent_id:
            active.stack.append(ctx.parent_id)
            pushed = True
        try:
            yield _INERT_COLLECTOR
        finally:
            if pushed:
                active.stack.pop()
        return
    session = ObsSession(label="task", trace_id=ctx.trace_id)
    # Parent every task span under the dispatch-site span of the parent
    # process instead of a local root.
    session.root_id = ctx.parent_id or session.root_id
    _SESSION = session
    try:
        yield _Collector(session)
    finally:
        _SESSION = None


def absorb(payload: Optional[ObsPayload]) -> None:
    """Merge a worker's payload into the active session (submission order)."""
    session = _SESSION
    if session is None or payload is None:
        return
    records = [SpanRecord.from_dict(entry) for entry in payload.spans]
    with session._lock:
        session.spans.extend(records)
    session.metrics.merge(payload.metrics)
