"""Write-trace container and file format.

A *write trace* is the input the paper's trace-driven simulator consumes: a
sequence of memory write transactions, each carrying both the value to be
written and the value being overwritten (so that differential write can be
evaluated without replaying the whole history).  :class:`WriteTrace` stores
the two sides as :class:`~repro.core.line.LineBatch` objects plus optional
per-request addresses (used by the memory-controller / PCM-device path) and a
metadata dictionary.

Traces can be saved to and loaded from two formats, dispatched on the file
suffix: compressed ``.npz`` archives (the historical format) and the raw
``.wtrc`` corpus format of :mod:`repro.traces.store`, which loads through
:class:`numpy.memmap` so a corpus-backed trace never materialises in RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch


@dataclass
class WriteTrace:
    """A sequence of (old value, new value) memory-line write transactions."""

    old: LineBatch
    new: LineBatch
    addresses: Optional[np.ndarray] = None
    name: str = "trace"
    metadata: Dict[str, str] = field(default_factory=dict)
    #: Set by the corpus loader when the arrays are memory-mapped views of a
    #: ``.wtrc`` file; the parallel engine's transport uses it to hand workers
    #: an ``(path, offset, length)`` descriptor instead of the data.  Slicing
    #: drops it (a slice no longer matches the file layout).
    mmap_path: Optional[Path] = field(default=None, compare=False, repr=False)
    #: ``(st_mtime_ns, st_size)`` of the mapped file at load time.  The
    #: transport compares it against the file's current stat before building
    #: an mmap descriptor: if the path was overwritten since the load, the
    #: trace's views still read the old inode, so shipping the path to
    #: workers would silently evaluate different data.
    mmap_stat: Optional[tuple] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.old) != len(self.new):
            raise TraceError("old and new batches must have the same length")
        if self.addresses is not None:
            self.addresses = np.asarray(self.addresses, dtype=np.uint64)
            if self.addresses.shape != (len(self.new),):
                raise TraceError("addresses must be a 1-D array aligned with the trace")

    def __len__(self) -> int:
        return len(self.new)

    def __getitem__(self, index: Union[int, slice]) -> "WriteTrace":
        if isinstance(index, int):
            index = slice(index, index + 1)
        addresses = self.addresses[index] if self.addresses is not None else None
        return WriteTrace(
            old=self.old[index],
            new=self.new[index],
            addresses=addresses,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def chunks(self, chunk_size: int) -> Iterator["WriteTrace"]:
        """Iterate over the trace in chunks of at most ``chunk_size`` requests."""
        if chunk_size <= 0:
            raise TraceError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the trace and return the path actually written.

        ``.wtrc`` selects the raw corpus format (header + little-endian
        ``uint64`` arrays, memory-mappable; see :mod:`repro.traces.store`);
        anything else is saved as a compressed ``.npz`` archive -- numpy
        appends the ``.npz`` suffix when missing, and the returned path
        reflects that.
        """
        path = Path(path)
        if path.suffix == ".wtrc":
            from ..traces.store import save_trace

            return save_trace(self, path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        payload = {
            "old": self.old.words,
            "new": self.new.words,
            "name": np.array(self.name),
        }
        if self.addresses is not None:
            payload["addresses"] = self.addresses
        for key, value in self.metadata.items():
            payload[f"meta_{key}"] = np.array(str(value))
        np.savez_compressed(path, **payload)
        return path

    @classmethod
    def load(cls, path: Union[str, Path], mmap: bool = True) -> "WriteTrace":
        """Load a trace previously written by :meth:`save`.

        The format is sniffed from the file itself: raw ``.wtrc`` traces are
        memory-mapped (unless ``mmap=False``), ``.npz`` archives are
        decompressed into RAM as before.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        from ..traces.store import is_wtrc_file, load_trace

        if is_wtrc_file(path):
            return load_trace(path, mmap=mmap)
        try:
            archive = np.load(path, allow_pickle=False)
        except Exception as exc:  # zipfile/pickle/EOF errors for garbage input
            raise TraceError(f"{path} is not a write-trace file: {exc}") from exc
        if not isinstance(archive, np.lib.npyio.NpzFile):  # a bare .npy array
            raise TraceError(f"{path} is not a write-trace file (expected .npz or .wtrc)")
        with archive as data:
            if "old" not in data or "new" not in data:
                raise TraceError(f"{path} is not a write-trace file")
            metadata = {
                key[len("meta_"):]: str(data[key])
                for key in data.files
                if key.startswith("meta_")
            }
            addresses = data["addresses"] if "addresses" in data.files else None
            return cls(
                old=LineBatch(data["old"]),
                new=LineBatch(data["new"]),
                addresses=addresses,
                name=str(data["name"]) if "name" in data.files else path.stem,
                metadata=metadata,
            )

    # ------------------------------------------------------------------ #
    # Convenience statistics
    # ------------------------------------------------------------------ #
    def changed_bit_fraction(self) -> float:
        """Average fraction of line bits that differ between old and new values.

        Computed in bounded-size chunks so it stays cheap on memory-mapped
        corpus traces (unpackbits over a whole 200M-line trace would
        materialise hundreds of gigabytes).
        """
        if len(self) == 0:
            return 0.0
        changed_bits = 0
        block = 1 << 16
        for start in range(0, len(self), block):
            stop = start + block
            diff = self.old.words[start:stop] ^ self.new.words[start:stop]
            changed_bits += int(np.unpackbits(diff.view(np.uint8), axis=-1).sum())
        return float(changed_bits) / (len(self) * 512)

    def symbol_histogram(self) -> np.ndarray:
        """Histogram (length 4) of the 2-bit symbols of the new data values."""
        symbols = self.new.symbols()
        return np.bincount(symbols.reshape(-1), minlength=4).astype(np.int64)
