"""Write-trace container and file format.

A *write trace* is the input the paper's trace-driven simulator consumes: a
sequence of memory write transactions, each carrying both the value to be
written and the value being overwritten (so that differential write can be
evaluated without replaying the whole history).  :class:`WriteTrace` stores
the two sides as :class:`~repro.core.line.LineBatch` objects plus optional
per-request addresses (used by the memory-controller / PCM-device path) and a
metadata dictionary.

Traces can be saved to and loaded from ``.npz`` files for reuse across
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch


@dataclass
class WriteTrace:
    """A sequence of (old value, new value) memory-line write transactions."""

    old: LineBatch
    new: LineBatch
    addresses: Optional[np.ndarray] = None
    name: str = "trace"
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.old) != len(self.new):
            raise TraceError("old and new batches must have the same length")
        if self.addresses is not None:
            self.addresses = np.asarray(self.addresses, dtype=np.uint64)
            if self.addresses.shape != (len(self.new),):
                raise TraceError("addresses must be a 1-D array aligned with the trace")

    def __len__(self) -> int:
        return len(self.new)

    def __getitem__(self, index: Union[int, slice]) -> "WriteTrace":
        if isinstance(index, int):
            index = slice(index, index + 1)
        addresses = self.addresses[index] if self.addresses is not None else None
        return WriteTrace(
            old=self.old[index],
            new=self.new[index],
            addresses=addresses,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def chunks(self, chunk_size: int) -> Iterator["WriteTrace"]:
        """Iterate over the trace in chunks of at most ``chunk_size`` requests."""
        if chunk_size <= 0:
            raise TraceError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the trace to an ``.npz`` file and return the path."""
        path = Path(path)
        payload = {
            "old": self.old.words,
            "new": self.new.words,
            "name": np.array(self.name),
        }
        if self.addresses is not None:
            payload["addresses"] = self.addresses
        for key, value in self.metadata.items():
            payload[f"meta_{key}"] = np.array(str(value))
        np.savez_compressed(path, **payload)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WriteTrace":
        """Load a trace previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            if "old" not in data or "new" not in data:
                raise TraceError(f"{path} is not a write-trace file")
            metadata = {
                key[len("meta_"):]: str(data[key])
                for key in data.files
                if key.startswith("meta_")
            }
            addresses = data["addresses"] if "addresses" in data.files else None
            return cls(
                old=LineBatch(data["old"]),
                new=LineBatch(data["new"]),
                addresses=addresses,
                name=str(data["name"]) if "name" in data.files else path.stem,
                metadata=metadata,
            )

    # ------------------------------------------------------------------ #
    # Convenience statistics
    # ------------------------------------------------------------------ #
    def changed_bit_fraction(self) -> float:
        """Average fraction of line bits that differ between old and new values."""
        if len(self) == 0:
            return 0.0
        diff = self.old.words ^ self.new.words
        changed_bits = np.unpackbits(diff.view(np.uint8), axis=-1).sum()
        return float(changed_bits) / (len(self) * 512)

    def symbol_histogram(self) -> np.ndarray:
        """Histogram (length 4) of the 2-bit symbols of the new data values."""
        symbols = self.new.symbols()
        return np.bincount(symbols.reshape(-1), minlength=4).astype(np.int64)
