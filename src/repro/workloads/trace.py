"""Write-trace container, file format, and the chunk-source abstraction.

A *write trace* is the input the paper's trace-driven simulator consumes: a
sequence of memory write transactions, each carrying both the value to be
written and the value being overwritten (so that differential write can be
evaluated without replaying the whole history).  :class:`WriteTrace` stores
the two sides as :class:`~repro.core.line.LineBatch` objects plus optional
per-request addresses (used by the memory-controller / PCM-device path) and a
metadata dictionary.

Traces can be saved to and loaded from two formats, dispatched on the file
suffix: compressed ``.npz`` archives (the historical format) and the raw
``.wtrc`` corpus format of :mod:`repro.traces.store`, which loads through
:class:`numpy.memmap` so a corpus-backed trace never materialises in RAM.

The evaluation stack does not actually require a materialised trace -- only
an iterator of fixed-size chunks.  :class:`ChunkSource` names that contract:
anything with a ``name`` and a re-iterable ``chunks(chunk_size)`` method can
be evaluated (serially or on the parallel engine) with memory bounded by the
chunk size.  :class:`WriteTrace` itself satisfies it (slicing views), and
:class:`repro.traces.ingest.IngestChunkSource` streams chunks straight out of
an on-disk ASCII trace that never fits in RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..core.errors import TraceError
from ..core.line import LineBatch

try:  # Protocol is typing-only; keep a graceful path for very old 3.7 envs
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


@runtime_checkable
class ChunkSource(Protocol):
    """Anything the evaluation stack can consume chunk by chunk.

    The contract:

    * ``name`` labels the trace in results and reports;
    * ``chunks(chunk_size)`` yields consecutive :class:`WriteTrace` chunks of
      exactly ``chunk_size`` requests (the last may be shorter), and must be
      **re-iterable**: every call restarts from the first request, so several
      work units (e.g. different encoders) can evaluate one source.

    The chunk boundaries must not depend on who is iterating -- the parallel
    engine relies on chunk ``c`` of any iteration being identical to chunk
    ``c`` of the serial run to keep results bit-identical for any ``n_jobs``.
    """

    name: str

    def chunks(self, chunk_size: int) -> Iterator["WriteTrace"]: ...


@dataclass
class WriteTrace:
    """A sequence of (old value, new value) memory-line write transactions."""

    old: LineBatch
    new: LineBatch
    addresses: Optional[np.ndarray] = None
    name: str = "trace"
    metadata: Dict[str, str] = field(default_factory=dict)
    #: Set by the corpus loader when the arrays are memory-mapped views of a
    #: ``.wtrc`` file; the parallel engine's transport uses it to hand workers
    #: an ``(path, offset, length)`` descriptor instead of the data.  Slicing
    #: drops it (a slice no longer matches the file layout).
    mmap_path: Optional[Path] = field(default=None, compare=False, repr=False)
    #: ``(st_mtime_ns, st_size)`` of the mapped file at load time.  The
    #: transport compares it against the file's current stat before building
    #: an mmap descriptor: if the path was overwritten since the load, the
    #: trace's views still read the old inode, so shipping the path to
    #: workers would silently evaluate different data.
    mmap_stat: Optional[tuple] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.old) != len(self.new):
            raise TraceError("old and new batches must have the same length")
        if self.addresses is not None:
            self.addresses = np.asarray(self.addresses, dtype=np.uint64)
            if self.addresses.shape != (len(self.new),):
                raise TraceError("addresses must be a 1-D array aligned with the trace")

    def __len__(self) -> int:
        return len(self.new)

    def __getitem__(self, index: Union[int, slice]) -> "WriteTrace":
        if isinstance(index, int):
            index = slice(index, index + 1)
        addresses = self.addresses[index] if self.addresses is not None else None
        return WriteTrace(
            old=self.old[index],
            new=self.new[index],
            addresses=addresses,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def chunks(self, chunk_size: int) -> Iterator["WriteTrace"]:
        """Iterate over the trace in chunks of at most ``chunk_size`` requests."""
        if chunk_size <= 0:
            raise TraceError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]

    @classmethod
    def concat(
        cls,
        traces: Sequence["WriteTrace"],
        name: Optional[str] = None,
        metadata: Optional[Dict[str, str]] = None,
    ) -> "WriteTrace":
        """Concatenate consecutive traces/chunks into one trace.

        Addresses are kept only when every part carries them.  ``name`` and
        ``metadata`` default to the first part's.
        """
        traces = list(traces)
        if not traces:
            return cls(old=LineBatch.zeros(0), new=LineBatch.zeros(0), name=name or "trace")
        if len(traces) == 1:
            first = traces[0]
            return cls(
                old=first.old,
                new=first.new,
                addresses=first.addresses,
                name=name or first.name,
                metadata=dict(metadata if metadata is not None else first.metadata),
            )
        addresses = None
        if all(t.addresses is not None for t in traces):
            addresses = np.concatenate([t.addresses for t in traces])
        return cls(
            old=LineBatch(np.concatenate([t.old.words for t in traces])),
            new=LineBatch(np.concatenate([t.new.words for t in traces])),
            addresses=addresses,
            name=name or traces[0].name,
            metadata=dict(metadata if metadata is not None else traces[0].metadata),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the trace and return the path actually written.

        ``.wtrc`` selects the raw corpus format (header + little-endian
        ``uint64`` arrays, memory-mappable; see :mod:`repro.traces.store`);
        anything else is saved as a compressed ``.npz`` archive -- numpy
        appends the ``.npz`` suffix when missing, and the returned path
        reflects that.
        """
        path = Path(path)
        if path.suffix == ".wtrc":
            from ..traces.store import save_trace

            return save_trace(self, path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        payload = {
            "old": self.old.words,
            "new": self.new.words,
            "name": np.array(self.name),
        }
        if self.addresses is not None:
            payload["addresses"] = self.addresses
        for key, value in self.metadata.items():
            payload[f"meta_{key}"] = np.array(str(value))
        np.savez_compressed(path, **payload)
        return path

    @classmethod
    def load(cls, path: Union[str, Path], mmap: bool = True) -> "WriteTrace":
        """Load a trace previously written by :meth:`save`.

        The format is sniffed from the file itself: raw ``.wtrc`` traces are
        memory-mapped (unless ``mmap=False``), ``.npz`` archives are
        decompressed into RAM as before.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        from ..traces.store import is_wtrc_file, load_trace

        if is_wtrc_file(path):
            return load_trace(path, mmap=mmap)
        try:
            archive = np.load(path, allow_pickle=False)
        except Exception as exc:  # zipfile/pickle/EOF errors for garbage input
            raise TraceError(f"{path} is not a write-trace file: {exc}") from exc
        if not isinstance(archive, np.lib.npyio.NpzFile):  # a bare .npy array
            raise TraceError(f"{path} is not a write-trace file (expected .npz or .wtrc)")
        with archive as data:
            if "old" not in data or "new" not in data:
                raise TraceError(f"{path} is not a write-trace file")
            metadata = {
                key[len("meta_"):]: str(data[key])
                for key in data.files
                if key.startswith("meta_")
            }
            addresses = data["addresses"] if "addresses" in data.files else None
            return cls(
                old=LineBatch(data["old"]),
                new=LineBatch(data["new"]),
                addresses=addresses,
                name=str(data["name"]) if "name" in data.files else path.stem,
                metadata=metadata,
            )

    # ------------------------------------------------------------------ #
    # Convenience statistics
    # ------------------------------------------------------------------ #
    def changed_bit_fraction(self) -> float:
        """Average fraction of line bits that differ between old and new values.

        Computed in bounded-size chunks so it stays cheap on memory-mapped
        corpus traces (unpackbits over a whole 200M-line trace would
        materialise hundreds of gigabytes).
        """
        if len(self) == 0:
            return 0.0
        changed_bits = 0
        block = 1 << 16
        for start in range(0, len(self), block):
            stop = start + block
            diff = self.old.words[start:stop] ^ self.new.words[start:stop]
            changed_bits += int(np.unpackbits(diff.view(np.uint8), axis=-1).sum())
        return float(changed_bits) / (len(self) * 512)

    def symbol_histogram(self) -> np.ndarray:
        """Histogram (length 4) of the 2-bit symbols of the new data values."""
        symbols = self.new.symbols()
        return np.bincount(symbols.reshape(-1), minlength=4).astype(np.int64)


def rechunk_traces(
    pieces: Iterable[WriteTrace], chunk_size: int
) -> Iterator[WriteTrace]:
    """Re-slice a stream of trace pieces into exactly ``chunk_size``-line chunks.

    The pieces a producer emits (e.g. the synthesis quantum of the streaming
    ingest) rarely match the evaluation chunk size; this adapter restores the
    exact chunk boundaries the serial runner would use on the materialised
    trace, holding at most one producer piece plus one output chunk in memory.
    The final chunk may be shorter.
    """
    if chunk_size <= 0:
        raise TraceError("chunk_size must be positive")
    pending: List[WriteTrace] = []
    buffered = 0
    for piece in pieces:
        if len(piece) == 0:
            continue
        pending.append(piece)
        buffered += len(piece)
        while buffered >= chunk_size:
            merged = pending[0] if len(pending) == 1 else WriteTrace.concat(pending)
            yield merged[:chunk_size]
            rest = merged[chunk_size:]
            pending = [rest] if len(rest) else []
            buffered = len(rest)
    if pending:
        yield pending[0] if len(pending) == 1 else WriteTrace.concat(pending)
