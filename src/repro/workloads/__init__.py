"""Synthetic SPEC CPU2006 / PARSEC-like workloads and write-trace utilities."""

from .generator import (
    GENERATOR_VERSION,
    LineGenerator,
    MAGNITUDE_BANDS,
    POINTER_BASE,
    TraceGenerator,
    generate_benchmark_trace,
    generate_random_trace,
)
from .profiles import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    HMI_BENCHMARKS,
    LINE_TYPES,
    LMI_BENCHMARKS,
    PROFILES,
    get_profile,
)
from .trace import ChunkSource, WriteTrace, rechunk_traces

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "ChunkSource",
    "GENERATOR_VERSION",
    "HMI_BENCHMARKS",
    "LINE_TYPES",
    "LMI_BENCHMARKS",
    "LineGenerator",
    "MAGNITUDE_BANDS",
    "POINTER_BASE",
    "PROFILES",
    "TraceGenerator",
    "WriteTrace",
    "generate_benchmark_trace",
    "generate_random_trace",
    "get_profile",
    "rechunk_traces",
]
